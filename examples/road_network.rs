//! Dispatching over a road network instead of straight-line travel —
//! the paper's §2 formalism (`G = ⟨V, E⟩` with travel costs).
//!
//! Builds a Manhattan-style lattice with congestion jitter, wraps it in
//! [`RoadNetworkModel`], and runs IRG on a small workload. Shortest-path
//! queries replace the haversine oracle end to end.
//!
//! ```bash
//! cargo run --release --example road_network
//! ```

use mrvd::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A 24×24 lattice over the NYC box: ~576 intersections, ~2.2K street
    // segments, 20% congestion jitter.
    let network = RoadNetwork::manhattan_lattice(
        &mut rng,
        Point::new(-74.03, 40.58),
        Point::new(-73.77, 40.92),
        24,
        24,
        5.0,
        0.2,
    );
    println!(
        "road network: {} vertices, {} directed edges",
        network.num_vertices(),
        network.num_edges()
    );
    let travel = RoadNetworkModel::new(network, 5.0);

    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 4_000.0,
        seed: 8,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let drivers = sample_driver_positions(&trips, 60, &mut rng);
    let grid = Grid::nyc_16x16();
    let series = count_trips(&trips, &grid);
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);

    let mut policy = QueueingPolicy::irg(DispatchConfig::default(), DemandOracle::real(series, 0));
    let t0 = std::time::Instant::now();
    let res = sim.run(&trips, &drivers, &mut policy);
    println!(
        "{}: revenue {:.0}, served {}/{} ({:.1}%), wall {:.1}s",
        res.policy,
        res.total_revenue,
        res.served,
        res.total_riders,
        100.0 * res.service_rate(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "(road travel has no speed bound hint, so candidate search scans all \
         drivers — fine at this scale, see mrvd-core docs)"
    );
}
