//! The offline prediction pipeline (paper §3.1.1 and Appendix A):
//! generate a multi-week demand history, train all four predictors plus
//! the graph-conv variant, and print Table-6-style accuracy rows.
//!
//! ```bash
//! cargo run --release --example prediction_pipeline
//! ```

use mrvd::prelude::*;

fn main() {
    // A 6-week history at reduced volume keeps this example quick.
    let train_days = 35;
    let test_days = 7;
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 50_000.0,
        seed: 5,
        ..NycLikeConfig::default()
    });
    println!(
        "generating {} days of demand counts…",
        train_days + test_days
    );
    let series = gen.generate_counts(train_days + test_days);
    let grid = Grid::nyc_16x16();
    let peak = series.max_value();

    let mut models: Vec<Box<dyn Predictor>> = vec![
        Box::new(HistoricalAverage),
        Box::new(LinearRegression::new()),
        Box::new(Gbrt::new(GbrtConfig::default())),
        Box::new(DeepStNet::new(
            16,
            16,
            SLOTS_PER_DAY,
            DeepStConfig {
                epochs: 8,
                ..DeepStConfig::default()
            },
        )),
        Box::new(GraphConvNet::from_grid(
            &grid,
            SLOTS_PER_DAY,
            GraphConvConfig {
                epochs: 8,
                ..GraphConvConfig::default()
            },
        )),
    ];

    println!(
        "{:<10} {:>9} {:>10} {:>8} {:>9}",
        "model", "RMSE (%)", "RealRMSE", "MAE", "train (s)"
    );
    for model in models.iter_mut() {
        let t0 = std::time::Instant::now();
        let report = mrvd::prediction::evaluate(model.as_mut(), &series, train_days, 0);
        println!(
            "{:<10} {:>9.2} {:>10.2} {:>8.2} {:>9.1}",
            report.name,
            100.0 * report.rmse_real / peak,
            report.rmse_real,
            report.mae,
            t0.elapsed().as_secs_f64()
        );
    }
    println!("\n(RMSE % is relative to the peak cell count {peak:.0}, the paper's convention)");
}
