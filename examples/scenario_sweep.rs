//! Scenario sweep: run the paper's queueing policy and two baselines
//! across every built-in workload scenario — surge, airport pulse, rain,
//! driver shortage, weekend — and print the comparison. Also shows a
//! spec surviving a JSON round-trip, the way custom scenarios load.
//!
//! ```bash
//! cargo run --release --example scenario_sweep
//! ```

use mrvd::scenario::{builtins, sweep, ScenarioSpec, SweepPolicy};

fn main() {
    // Scenarios are plain data: serialize one, parse it back, sweep the
    // parsed copy — exactly what loading user-authored JSON files does.
    let specs: Vec<ScenarioSpec> = builtins()
        .iter()
        .map(|spec| {
            let text = serde_json::to_string_pretty(&spec.to_json()).expect("serializable");
            ScenarioSpec::from_json_str(&text).expect("round-trip")
        })
        .collect();

    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!(
        "sweeping {} scenarios × {} policies on {threads} threads…",
        specs.len(),
        SweepPolicy::default_set().len()
    );
    let cells = sweep(&specs, &SweepPolicy::default_set(), threads);

    println!(
        "\n{:<18} {:<7} {:>7} {:>7} {:>8} {:>7} {:>12}",
        "scenario", "policy", "riders", "served", "reneged", "rate", "revenue"
    );
    for c in &cells {
        println!(
            "{:<18} {:<7} {:>7} {:>7} {:>8} {:>6.1}% {:>12.0}",
            c.scenario,
            c.policy,
            c.total_riders,
            c.served,
            c.reneged,
            c.service_rate * 100.0,
            c.total_revenue
        );
    }

    // A one-line takeaway per scenario: which policy served the most.
    println!("\nbest served-rate per scenario:");
    for spec in &specs {
        let best = cells
            .iter()
            .filter(|c| c.scenario == spec.name)
            .max_by(|a, b| {
                // Ties prefer the lexicographically first policy name, so
                // the takeaway line never depends on sweep cell order.
                a.service_rate
                    .total_cmp(&b.service_rate)
                    .then_with(|| b.policy.cmp(a.policy))
            })
            .expect("cells cover every scenario");
        println!(
            "  {:<18} {} ({:.1}%)",
            best.scenario,
            best.policy,
            best.service_rate * 100.0
        );
    }
}
