//! Morning rush hour under driver scarcity — the paper's motivating
//! scenario (its Example 1): when taxis are scarce, prioritizing riders
//! whose destinations lack drivers lifts the whole platform.
//!
//! Simulates 7:00–10:00 A.M. with a deliberately undersized fleet and
//! compares the queueing policies against the classical nearest-first
//! dispatcher, reporting revenue, service rate and idle-time structure.
//!
//! ```bash
//! cargo run --release --example morning_rush
//! ```

use mrvd::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 70_000.0,
        seed: 11,
        ..NycLikeConfig::default()
    });
    // Restrict to the morning window.
    let start = 7 * 3_600_000u64;
    let end = 10 * 3_600_000u64;
    let all_trips = gen.generate_day_trips(0);
    let trips: Vec<TripRecord> = all_trips
        .iter()
        .filter(|t| t.request_ms >= start && t.request_ms < end)
        .map(|t| TripRecord {
            // Shift so the simulation starts at 0 (drivers are placed at 7:00).
            request_ms: t.request_ms - start,
            ..*t
        })
        .collect();
    println!(
        "morning rush: {} orders between 7:00 and 10:00",
        trips.len()
    );

    let mut rng = StdRng::seed_from_u64(2);
    let drivers = sample_driver_positions(&trips, 400, &mut rng);
    let grid = Grid::nyc_16x16();
    let travel = ConstantSpeedModel::default();
    let series = count_trips(
        &all_trips
            .iter()
            .filter(|t| t.request_ms < DAY_MS)
            .copied()
            .collect::<Vec<_>>(),
        &grid,
    );
    let sim = Simulator::new(
        SimConfig {
            horizon_ms: end - start,
            ..SimConfig::default()
        },
        &travel,
        &grid,
    );

    // The oracle sees the real day shifted: build a single-day series for
    // the morning window only (slot counts from the shifted trips).
    let morning_series = count_trips(&trips, &grid);
    let _ = series;

    let mut policies: Vec<Box<dyn DispatchPolicy>> = vec![
        Box::new(QueueingPolicy::ls(
            DispatchConfig::default(),
            DemandOracle::real(morning_series.clone(), 0),
        )),
        Box::new(QueueingPolicy::irg(
            DispatchConfig::default(),
            DemandOracle::real(morning_series.clone(), 0),
        )),
        Box::new(Near::default()),
        Box::new(Rand::new(3)),
    ];
    println!(
        "{:<8} {:>12} {:>8} {:>9} {:>12} {:>12}",
        "policy", "revenue", "served", "rate", "mean idle s", "mean ride s"
    );
    for p in policies.iter_mut() {
        let res = sim.run(&trips, &drivers, p.as_mut());
        let idle: f64 = res
            .assignments
            .iter()
            .map(|a| a.driver_idle_ms as f64 / 1000.0)
            .sum::<f64>()
            / res.served.max(1) as f64;
        let ride: f64 = res
            .assignments
            .iter()
            .map(|a| (a.dropoff_ms - a.pickup_ms) as f64 / 1000.0)
            .sum::<f64>()
            / res.served.max(1) as f64;
        println!(
            "{:<8} {:>12.0} {:>8} {:>8.1}% {:>12.0} {:>12.0}",
            res.policy,
            res.total_revenue,
            res.served,
            100.0 * res.service_rate(),
            idle,
            ride
        );
    }
}
