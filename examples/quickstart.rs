//! Quickstart: generate one NYC-like day, dispatch it with every policy,
//! and print the revenue/served comparison (a miniature Figure 7 column).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mrvd::prelude::*;
use rand::rngs::StdRng;

fn main() {
    // A scaled-down day: ~28K orders (1/10 of the paper's test day) and
    // 300 drivers (1/10 of its default fleet).
    let orders_per_day = 28_000.0;
    let n_drivers = 300;

    println!("generating workload ({orders_per_day} orders, {n_drivers} drivers)…");
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day,
        seed: 42,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let mut rng = StdRng::seed_from_u64(7);
    let drivers = sample_driver_positions(&trips, n_drivers, &mut rng);

    let grid = Grid::nyc_16x16();
    let travel = ConstantSpeedModel::default();
    let real_series = count_trips(&trips, &grid);
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);

    let oracle = || DemandOracle::real(real_series.clone(), 0);
    let mut policies: Vec<Box<dyn DispatchPolicy>> = vec![
        Box::new(QueueingPolicy::ls(DispatchConfig::default(), oracle())),
        Box::new(QueueingPolicy::irg(DispatchConfig::default(), oracle())),
        Box::new(QueueingPolicy::short(DispatchConfig::default(), oracle())),
        Box::new(Polar::new(
            PolarConfig::default(),
            &oracle(),
            &grid,
            n_drivers,
        )),
        Box::new(Ltg::default()),
        Box::new(Near::default()),
        Box::new(Rand::new(5)),
        Box::new(Upper),
    ];

    println!(
        "{:<10} {:>14} {:>9} {:>9} {:>12}",
        "policy", "revenue", "served", "reneged", "batch (ms)"
    );
    for p in policies.iter_mut() {
        let res = sim.run(&trips, &drivers, p.as_mut());
        println!(
            "{:<10} {:>14.0} {:>9} {:>9} {:>12.2}",
            res.policy,
            res.total_revenue,
            res.served,
            res.reneged,
            res.mean_batch_time_s() * 1000.0
        );
    }
}
