//! Implementing your own dispatch policy against the public API.
//!
//! The example builds a "revenue-per-total-time greedy" — a policy the
//! paper does not evaluate — and benchmarks it against IRG in the same
//! simulator, demonstrating the [`DispatchPolicy`] extension point.
//!
//! ```bash
//! cargo run --release --example custom_policy
//! ```

use mrvd::prelude::*;
use rand::rngs::StdRng;

/// Greedy on revenue per unit of committed driver time
/// (`ride / (pickup + ride)`): maximize the busy fraction of each
/// assignment without any queueing analysis.
struct EfficiencyGreedy;

impl DispatchPolicy for EfficiencyGreedy {
    fn name(&self) -> String {
        "EFF".into()
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        // Collect all valid pairs with their efficiency score.
        let mut edges: Vec<(f64, usize, usize)> = Vec::new();
        for (ri, rider) in ctx.riders.iter().enumerate() {
            let ride = ctx.travel.travel_time_s(rider.pickup, rider.dropoff);
            for (di, driver) in ctx.drivers.iter().enumerate() {
                if !ctx.is_valid_pair(rider, driver) {
                    continue;
                }
                let pickup = ctx.travel.travel_time_s(driver.pos, rider.pickup);
                edges.push((ride / (pickup + ride).max(1e-9), ri, di));
            }
        }
        // Equal scores break on stable (rider id, driver id) — without
        // the tie-break the greedy sweep would depend on the order the
        // engine happens to hand out riders and drivers.
        edges.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("scores are finite")
                .then_with(|| {
                    (ctx.riders[a.1].id, ctx.drivers[a.2].id)
                        .cmp(&(ctx.riders[b.1].id, ctx.drivers[b.2].id))
                })
        });
        let mut rider_taken = vec![false; ctx.riders.len()];
        let mut driver_taken = vec![false; ctx.drivers.len()];
        let mut out = Vec::new();
        for (_, ri, di) in edges {
            if rider_taken[ri] || driver_taken[di] {
                continue;
            }
            rider_taken[ri] = true;
            driver_taken[di] = true;
            out.push(Assignment {
                rider: ctx.riders[ri].id,
                driver: ctx.drivers[di].id,
                estimated_idle_s: None,
            });
        }
        out
    }
}

fn main() {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 20_000.0,
        seed: 21,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let mut rng = StdRng::seed_from_u64(4);
    let drivers = sample_driver_positions(&trips, 220, &mut rng);
    let grid = Grid::nyc_16x16();
    let travel = ConstantSpeedModel::default();
    let series = count_trips(&trips, &grid);
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);

    for (name, mut policy) in [
        (
            "IRG-R",
            Box::new(QueueingPolicy::irg(
                DispatchConfig::default(),
                DemandOracle::real(series.clone(), 0),
            )) as Box<dyn DispatchPolicy>,
        ),
        ("EFF", Box::new(EfficiencyGreedy)),
    ] {
        let res = sim.run(&trips, &drivers, policy.as_mut());
        println!(
            "{name:<6} revenue {:>12.0}  served {:>6}  service rate {:>5.1}%",
            res.total_revenue,
            res.served,
            100.0 * res.service_rate()
        );
    }
}
