//! The queueing-based dispatching algorithms of §5 and Appendix C.
//!
//! One implementation hosts all three published variants:
//!
//! * **IRG** — idle-ratio-oriented greedy (Algorithm 2): sort all valid
//!   pairs by `IR = ET/(cost + ET)` (Eq. 17), repeatedly take the
//!   smallest, and after each selection bump the rejoin rate μ of the
//!   rider's destination region (line 11) so later selections see the
//!   updated expected idle time.
//! * **LS** — local search (Algorithm 3): start from the IRG result and
//!   keep replacing a driver's rider with an unassigned valid rider of
//!   strictly smaller idle ratio until a fixed point (convergence proven
//!   in the paper's Lemma 5.1; a sweep cap guards against floating-point
//!   livelock).
//! * **SHORT** — the Appendix C variant for maximizing the number of
//!   served orders: identical machinery with priority `cost + ET`
//!   instead of the ratio.
//!
//! The "current smallest" selection uses a lazy heap with per-region
//! version stamps: entries whose destination region changed since they
//! were pushed are re-keyed instead of trusted, which reproduces the
//! paper's re-sorting semantics in `O(P log P)` per batch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mrvd_sim::{Assignment, BatchContext, DispatchPolicy};

use crate::candidates::{valid_candidates_with, CandidateScratch};
use crate::config::DispatchConfig;
use crate::oracle::{DemandOracle, SparseUpcoming};
use crate::rate_tracker::{RateTracker, RateTrackerStats};
use crate::rates::{estimate_rates, idle_ratio};

/// Whether to refine the greedy result with local search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Algorithm 2 only.
    Greedy,
    /// Algorithm 3 on top, with a sweep cap.
    LocalSearch {
        /// Maximum full sweeps over the assignment set.
        max_sweeps: usize,
    },
}

/// The pair-priority rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityRule {
    /// `IR = ET / (cost + ET)` (Eq. 17) — revenue objective.
    IdleRatio,
    /// `cost + ET` (Appendix C) — served-orders objective.
    TotalTime,
}

/// The queueing-theoretic dispatch policy (IRG / LS / SHORT).
pub struct QueueingPolicy {
    cfg: DispatchConfig,
    oracle: DemandOracle,
    mode: SearchMode,
    rule: PriorityRule,
    scratch: CandidateScratch,
    /// Incremental rate state, reused across batches (the per-batch
    /// λ/μ/K/ET buffers live here — nothing is cloned per batch).
    tracker: RateTracker,
    /// Reused buffer for the oracle's `|R̂_k|` window counts — only the
    /// reference-rates path fills it densely; the hot path goes through
    /// `sparse_upcoming`.
    upcoming: Vec<f64>,
    /// Sparse evaluation of the oracle window for the hot path: touches
    /// O(active regions) per batch instead of O(num_regions),
    /// bit-identical to the dense buffer.
    sparse_upcoming: SparseUpcoming,
    /// Reused per-region version stamps for the lazy greedy heap.
    /// Invariant between batches: all zero — `version_touched` undoes
    /// every bump at the end of a batch, so no per-batch
    /// O(num_regions) clear is needed.
    version: Vec<u32>,
    /// Destination regions whose version stamp the current batch bumped.
    version_touched: Vec<u32>,
}

impl QueueingPolicy {
    /// General constructor.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(
        cfg: DispatchConfig,
        oracle: DemandOracle,
        mode: SearchMode,
        rule: PriorityRule,
    ) -> Self {
        cfg.validate();
        Self {
            cfg,
            oracle,
            mode,
            rule,
            scratch: CandidateScratch::new(),
            tracker: RateTracker::new(),
            upcoming: Vec::new(),
            sparse_upcoming: SparseUpcoming::default(),
            version: Vec::new(),
            version_touched: Vec::new(),
        }
    }

    /// IRG (Algorithm 2).
    pub fn irg(cfg: DispatchConfig, oracle: DemandOracle) -> Self {
        Self::new(cfg, oracle, SearchMode::Greedy, PriorityRule::IdleRatio)
    }

    /// LS (Algorithm 3, seeded by IRG) with the default sweep cap of 16.
    pub fn ls(cfg: DispatchConfig, oracle: DemandOracle) -> Self {
        Self::new(
            cfg,
            oracle,
            SearchMode::LocalSearch { max_sweeps: 16 },
            PriorityRule::IdleRatio,
        )
    }

    /// SHORT (Appendix C): greedy on `cost + ET`.
    pub fn short(cfg: DispatchConfig, oracle: DemandOracle) -> Self {
        Self::new(cfg, oracle, SearchMode::Greedy, PriorityRule::TotalTime)
    }

    fn key(&self, cost_s: f64, et_s: f64) -> f64 {
        match self.rule {
            PriorityRule::IdleRatio => idle_ratio(cost_s, et_s),
            PriorityRule::TotalTime => cost_s + et_s,
        }
    }

    /// The rate tracker's lifetime counters — how many batches ran off
    /// the engine's live counts and how many idle-time solves the lazy
    /// path actually performed (vs. one per region per batch eagerly).
    pub fn rate_stats(&self) -> RateTrackerStats {
        self.tracker.stats()
    }
}

/// Total order for finite keys in the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("keys are never NaN")
    }
}

impl DispatchPolicy for QueueingPolicy {
    fn name(&self) -> String {
        let algo = match (self.mode, self.rule) {
            (SearchMode::Greedy, PriorityRule::IdleRatio) => "IRG",
            (SearchMode::LocalSearch { .. }, PriorityRule::IdleRatio) => "LS",
            (SearchMode::Greedy, PriorityRule::TotalTime) => "SHORT",
            (SearchMode::LocalSearch { .. }, PriorityRule::TotalTime) => "SHORT-LS",
        };
        let ablation = if self.cfg.uniform_et {
            " (uniform ET)"
        } else {
            ""
        };
        format!("{algo}-{}{ablation}", self.oracle.label())
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let n_riders = ctx.riders.len();
        let n_drivers = ctx.drivers.len();
        if n_riders == 0 || n_drivers == 0 {
            return Vec::new();
        }
        // Algorithm 1, lines 3–6: region state and rates — incremental
        // counts, sparse per-batch buffers and lazy idle times by
        // default, the verbatim eager estimator over a dense oracle
        // buffer under `reference_rates` (byte-identical outputs; the
        // equivalence batteries pin it). Either way the per-batch state
        // lives in policy/tracker-owned buffers reused across batches.
        if self.cfg.reference_rates {
            self.oracle
                .upcoming_riders_into(ctx.now_ms, self.cfg.tc_ms, &mut self.upcoming);
            let est = estimate_rates(ctx, &self.upcoming, &self.cfg);
            let ets = est.expected_idle_times(&self.cfg);
            self.tracker.load_reference(&est, &ets);
        } else {
            self.sparse_upcoming
                .compute(&self.oracle, ctx.now_ms, self.cfg.tc_ms);
            self.tracker.begin_batch_sparse(
                ctx,
                self.sparse_upcoming.values(),
                self.sparse_upcoming.active(),
                &self.cfg,
            );
        }

        // Valid pairs (Algorithm 2, lines 3–5).
        let cands = valid_candidates_with(ctx, self.cfg.max_candidates, &mut self.scratch);
        let rider_cost: Vec<f64> = ctx
            .riders
            .iter()
            .map(|r| ctx.travel.travel_time_s(r.pickup, r.dropoff))
            .collect();
        let rider_dest: Vec<usize> = ctx
            .riders
            .iter()
            .map(|r| ctx.grid.region_of(r.dropoff).idx())
            .collect();

        // Greedy selection with a lazy re-keyed heap (lines 7–12).
        // Entry: (key, pickup travel ms, rider id, driver id, rider slot,
        // driver slot, dest version). Ties break on the stable *ids*, not
        // the view slots, so the selection order — and with it every
        // downstream μ-bump — is invariant to the live views' slot order.
        // (At most one live entry exists per (rider, driver) pair: each is
        // pushed once up front, and a stale entry is popped before its
        // re-keyed copy is pushed, so the id tie-break is a total order.)
        if self.version.len() != ctx.grid.num_regions() {
            self.version.clear();
            self.version.resize(ctx.grid.num_regions(), 0);
        }
        debug_assert!(
            self.version.iter().all(|&v| v == 0),
            "version stamps must be zero between batches"
        );
        type Entry = Reverse<(OrdF64, u64, u32, u32, usize, usize, u32)>;
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        for (r, cand) in cands.pairs.iter().enumerate() {
            if cand.is_empty() {
                // No pair to key — and no reason to solve this
                // destination's idle time.
                continue;
            }
            let dest = rider_dest[r];
            let et = self.tracker.et(dest, &self.cfg);
            let k = self.key(rider_cost[r], et);
            for &(d, pickup_ms) in cand {
                heap.push(Reverse((
                    OrdF64(k),
                    pickup_ms,
                    ctx.riders[r].id.0,
                    ctx.drivers[d].id.0,
                    r,
                    d,
                    self.version[dest],
                )));
            }
        }
        let mut rider_taken = vec![false; n_riders];
        let mut driver_of_rider = vec![usize::MAX; n_riders];
        let mut driver_taken = vec![false; n_drivers];
        let mut rider_of_driver = vec![usize::MAX; n_drivers];
        while let Some(Reverse((_, pickup_ms, rid, did, r, d, ver))) = heap.pop() {
            if rider_taken[r] || driver_taken[d] {
                continue;
            }
            let dest = rider_dest[r];
            if ver != self.version[dest] {
                // Stale: re-key against the current expected idle time.
                let et = self.tracker.et(dest, &self.cfg);
                let k = self.key(rider_cost[r], et);
                heap.push(Reverse((
                    OrdF64(k),
                    pickup_ms,
                    rid,
                    did,
                    r,
                    d,
                    self.version[dest],
                )));
                continue;
            }
            rider_taken[r] = true;
            driver_taken[d] = true;
            driver_of_rider[r] = d;
            rider_of_driver[d] = r;
            // Line 11: the driver will rejoin at the destination — bump μ.
            self.tracker.bump_mu(dest, &self.cfg);
            self.version[dest] = self.version[dest].wrapping_add(1);
            self.version_touched.push(dest as u32);
        }
        // Restore the all-zero invariant without an O(num_regions)
        // clear: only bumped destinations moved off zero.
        for k in self.version_touched.drain(..) {
            self.version[k as usize] = 0;
        }

        // Local search refinement (Algorithm 3). The sweep visits drivers
        // in id order and picks each replacement by an explicit
        // (key, rider id) minimum, so the refinement path — like the
        // greedy phase — does not depend on the views' slot order.
        if let SearchMode::LocalSearch { max_sweeps } = self.mode {
            let by_driver = cands.by_driver(n_drivers);
            let mut dorder: Vec<usize> = (0..n_drivers).collect();
            dorder.sort_by_key(|&d| ctx.drivers[d].id);
            for _sweep in 0..max_sweeps {
                let mut changed = false;
                for &d in &dorder {
                    let cur = rider_of_driver[d];
                    if cur == usize::MAX {
                        continue;
                    }
                    let cur_et = self.tracker.et(rider_dest[cur], &self.cfg);
                    let cur_key = self.key(rider_cost[cur], cur_et);
                    // Best strict improvement among unassigned valid riders.
                    let mut best: Option<(usize, f64)> = None;
                    for &(r2, _) in &by_driver[d] {
                        if rider_taken[r2] {
                            continue;
                        }
                        let et2 = self.tracker.et(rider_dest[r2], &self.cfg);
                        let k2 = self.key(rider_cost[r2], et2);
                        let better = match best {
                            None => k2 < cur_key - 1e-12,
                            Some((br, bk)) => {
                                k2 < cur_key - 1e-12
                                    && (k2, ctx.riders[r2].id) < (bk, ctx.riders[br].id)
                            }
                        };
                        if better {
                            best = Some((r2, k2));
                        }
                    }
                    if let Some((r2, _)) = best {
                        // Swap: free `cur`, take `r2`; move one future
                        // rejoin from dest(cur) to dest(r2).
                        rider_taken[cur] = false;
                        driver_of_rider[cur] = usize::MAX;
                        rider_taken[r2] = true;
                        driver_of_rider[r2] = d;
                        rider_of_driver[d] = r2;
                        let (from, to) = (rider_dest[cur], rider_dest[r2]);
                        self.tracker.unbump_mu(from, &self.cfg);
                        self.tracker.bump_mu(to, &self.cfg);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // Emit assignments with the final idle-time estimates (Table 3),
        // in rider-id order — canonical whatever order the views hold.
        let mut out: Vec<Assignment> = (0..n_riders)
            .filter(|&r| driver_of_rider[r] != usize::MAX)
            .map(|r| Assignment {
                rider: ctx.riders[r].id,
                driver: ctx.drivers[driver_of_rider[r]].id,
                estimated_idle_s: Some(self.tracker.et(rider_dest[r], &self.cfg)),
            })
            .collect();
        out.sort_by_key(|a| a.rider);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::et_for;
    use mrvd_demand::DemandSeries;
    use mrvd_sim::{AvailableDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point, TravelModel};

    /// Two probe regions with controllable upcoming demand.
    const HOT: Point = Point::new(-73.985, 40.755);
    const COLD: Point = Point::new(-73.80, 40.90);

    /// A single-day series with `hot_count` upcoming riders in the HOT
    /// region and zero elsewhere, for every slot.
    fn oracle_with_hot(grid: &Grid, hot_count: f64) -> DemandOracle {
        let hot_idx = grid.region_of(HOT).idx();
        let series = DemandSeries::from_fn(1, 48, grid.num_regions(), |_, _, r| {
            if r == hot_idx {
                hot_count
            } else {
                0.0
            }
        });
        DemandOracle::real(series, 0)
    }

    fn rider(id: u32, pickup: Point, dropoff: Point) -> WaitingRider {
        WaitingRider {
            id: RiderId(id),
            pickup,
            dropoff,
            request_ms: 0,
            deadline_ms: 300_000,
        }
    }

    fn driver(id: u32, pos: Point) -> AvailableDriver {
        AvailableDriver {
            id: DriverId(id),
            pos,
            available_since_ms: 0,
        }
    }

    fn ctx<'a>(
        grid: &'a Grid,
        travel: &'a ConstantSpeedModel,
        riders: &'a [WaitingRider],
        drivers: &'a [AvailableDriver],
    ) -> BatchContext<'a> {
        BatchContext {
            now_ms: 0,
            riders,
            drivers,
            busy: &[],
            travel,
            grid,
            avail_index: None,
            region_counts: None,
            views: None,
        }
    }

    #[test]
    fn prefers_the_hot_destination_at_equal_cost() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let base = Point::new(-73.92, 40.80);
        // Two riders with (almost) equal travel cost; one ends HOT, one
        // ends COLD. One driver.
        let to_hot = rider(0, base, HOT);
        let to_cold = rider(1, base, COLD);
        let riders = [to_hot, to_cold];
        let drivers = [driver(0, base)];
        let mut policy =
            QueueingPolicy::irg(DispatchConfig::default(), oracle_with_hot(&grid, 50.0));
        let out = policy.assign(&ctx(&grid, &travel, &riders, &drivers));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].rider,
            RiderId(0),
            "should pick the hot-destination rider"
        );
        assert!(out[0].estimated_idle_s.is_some());
    }

    #[test]
    fn prefers_longer_trips_to_the_same_destination() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let near_base = Point::new(-73.99, 40.76);
        let far_base = Point::new(-74.02, 40.60);
        // Both riders end HOT; the far one has a much higher travel cost.
        // Deadlines are generous so one driver can reach either pickup.
        let mut short_trip = rider(0, near_base, HOT);
        let mut long_trip = rider(1, far_base, HOT);
        short_trip.deadline_ms = 1_500_000;
        long_trip.deadline_ms = 1_500_000;
        let riders = [short_trip, long_trip];
        let drivers = [driver(0, Point::new(-74.0, 40.7))];
        let mut policy =
            QueueingPolicy::irg(DispatchConfig::default(), oracle_with_hot(&grid, 5.0));
        let out = policy.assign(&ctx(&grid, &travel, &riders, &drivers));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].rider,
            RiderId(1),
            "should pick the long trip (rule a)"
        );
    }

    #[test]
    fn short_rule_prefers_cheap_trips_instead() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let near_base = Point::new(-73.99, 40.76);
        let far_base = Point::new(-74.02, 40.60);
        let mut short_trip = rider(0, near_base, HOT);
        let mut long_trip = rider(1, far_base, HOT);
        short_trip.deadline_ms = 1_500_000;
        long_trip.deadline_ms = 1_500_000;
        let riders = [short_trip, long_trip];
        let drivers = [driver(0, Point::new(-74.0, 40.7))];
        let mut policy =
            QueueingPolicy::short(DispatchConfig::default(), oracle_with_hot(&grid, 5.0));
        let out = policy.assign(&ctx(&grid, &travel, &riders, &drivers));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].rider,
            RiderId(0),
            "SHORT minimizes cost + ET, so the short trip wins"
        );
    }

    #[test]
    fn uniform_et_ablation_ignores_destination_hotness() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let base = Point::new(-73.92, 40.80);
        // Hot-destination rider is (slightly) farther from the driver, so
        // with hotness silenced the tie must break toward… both riders
        // have equal cost and equal (uniform) ET; the heap then orders by
        // pickup time, favouring the rider whose pickup is nearer.
        let to_hot = rider(0, Point::new(-73.921, 40.801), HOT);
        let to_cold = rider(1, base, COLD);
        // Costs differ slightly; make them effectively equal by putting
        // both pickups at the same place and dropoffs symmetric: instead
        // simply check the *estimates* are flat.
        let riders = [to_hot, to_cold];
        let drivers = [driver(0, base)];
        let cfg = DispatchConfig {
            uniform_et: true,
            ..DispatchConfig::default()
        };
        let mut policy = QueueingPolicy::irg(cfg.clone(), oracle_with_hot(&grid, 500.0));
        let out = policy.assign(&ctx(&grid, &travel, &riders, &drivers));
        assert_eq!(out.len(), 1);
        // Uniform-ET estimate is the constant t_c / 2.
        assert_eq!(out[0].estimated_idle_s, Some(cfg.tc_s() / 2.0));
    }

    #[test]
    fn ls_reaches_a_local_optimum() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        // A crowd of riders and a few drivers around Midtown.
        let mut riders = Vec::new();
        for i in 0..12u32 {
            let pickup = Point::new(
                -73.98 + 0.002 * (i % 4) as f64,
                40.75 + 0.002 * (i / 4) as f64,
            );
            let dropoff = if i % 3 == 0 { HOT } else { COLD };
            riders.push(rider(i, pickup, dropoff));
        }
        let drivers: Vec<AvailableDriver> = (0..4u32)
            .map(|i| driver(i, Point::new(-73.979 + 0.001 * i as f64, 40.751)))
            .collect();
        let cfg = DispatchConfig::default();
        let oracle = oracle_with_hot(&grid, 30.0);
        let mut policy = QueueingPolicy::ls(cfg.clone(), oracle);
        let c = ctx(&grid, &travel, &riders, &drivers);
        let out = policy.assign(&c);
        assert!(!out.is_empty());
        // Recompute the final region state exactly as the policy would,
        // then verify no unassigned valid rider strictly improves any
        // driver's idle ratio — the fixed-point property of Algorithm 3.
        let oracle = oracle_with_hot(&grid, 30.0);
        let upcoming = oracle.upcoming_riders(0, cfg.tc_ms);
        let est = estimate_rates(&c, &upcoming, &cfg);
        let tc_s = cfg.tc_s();
        let mut mu = est.mu.clone();
        let mut cap = est.capacity_k.clone();
        let assigned: std::collections::HashMap<u32, u32> =
            out.iter().map(|a| (a.driver.0, a.rider.0)).collect();
        let taken: std::collections::HashSet<u32> = out.iter().map(|a| a.rider.0).collect();
        let dest = |r: &WaitingRider| grid.region_of(r.dropoff).idx();
        for a in &out {
            let r = &riders[a.rider.0 as usize];
            let k = dest(r);
            mu[k] += 1.0 / tc_s;
            cap[k] += 1;
        }
        let et: Vec<f64> = (0..grid.num_regions())
            .map(|k| et_for(est.lambda[k], mu[k], cap[k], cfg.beta, tc_s))
            .collect();
        let cost = |r: &WaitingRider| travel.travel_time_s(r.pickup, r.dropoff);
        for (&d, &r_cur) in &assigned {
            let cur = &riders[r_cur as usize];
            let cur_ir = idle_ratio(cost(cur), et[dest(cur)]);
            for r2 in &riders {
                if taken.contains(&r2.id.0) {
                    continue;
                }
                if !c.is_valid_pair(r2, &drivers[d as usize]) {
                    continue;
                }
                let ir2 = idle_ratio(cost(r2), et[dest(r2)]);
                assert!(
                    ir2 >= cur_ir - 1e-9,
                    "driver {d}: unassigned rider {} has IR {ir2} < current {cur_ir}",
                    r2.id
                );
            }
        }
    }

    #[test]
    fn respects_candidate_validity() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        // Rider with a tight deadline; only the near driver qualifies.
        let mut r = rider(0, Point::new(-73.98, 40.75), HOT);
        r.deadline_ms = 30_000;
        let riders = [r];
        let drivers = [
            driver(0, Point::new(-74.02, 40.60)),   // far
            driver(1, Point::new(-73.981, 40.751)), // near
        ];
        let mut policy =
            QueueingPolicy::irg(DispatchConfig::default(), oracle_with_hot(&grid, 5.0));
        let out = policy.assign(&ctx(&grid, &travel, &riders, &drivers));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].driver, DriverId(1));
    }

    #[test]
    fn empty_batches_return_empty() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let mut policy =
            QueueingPolicy::irg(DispatchConfig::default(), oracle_with_hot(&grid, 5.0));
        assert!(policy.assign(&ctx(&grid, &travel, &[], &[])).is_empty());
        let drivers = [driver(0, HOT)];
        assert!(policy
            .assign(&ctx(&grid, &travel, &[], &drivers))
            .is_empty());
    }

    #[test]
    fn names_encode_variant_and_oracle() {
        let grid = Grid::nyc_16x16();
        let mk = |mode, rule| {
            QueueingPolicy::new(
                DispatchConfig::default(),
                oracle_with_hot(&grid, 1.0),
                mode,
                rule,
            )
        };
        assert_eq!(
            mk(SearchMode::Greedy, PriorityRule::IdleRatio).name(),
            "IRG-R"
        );
        assert_eq!(
            mk(
                SearchMode::LocalSearch { max_sweeps: 4 },
                PriorityRule::IdleRatio
            )
            .name(),
            "LS-R"
        );
        assert_eq!(
            mk(SearchMode::Greedy, PriorityRule::TotalTime).name(),
            "SHORT-R"
        );
    }
}
