//! The demand oracle: how many riders will appear in each region during
//! the scheduling window `[t̄, t̄ + t_c]` (the `|R̂_k|` of Algorithm 1).
//!
//! Two variants, matching the paper's `-P` (predicted) and `-R` (real)
//! policy flavours. The predicted variant consults a fitted
//! [`Predictor`]; windows extending past the current slot are forecast
//! *recursively* — each future slot is predicted from a scratch series in
//! which the preceding future slots hold their own predictions, never the
//! realized future (the honest-online property the prediction tests
//! enforce).

use std::cell::RefCell;

use mrvd_demand::{DemandSeries, SLOT_MS};
use mrvd_prediction::Predictor;

/// Demand source for the dispatching policies.
pub enum DemandOracle {
    /// Ground-truth counts of the simulated day (IRG-R / LS-R / POLAR-R).
    Real {
        /// Full series: training days followed by the simulated day.
        series: DemandSeries,
        /// Index of the simulated day within `series`.
        day: usize,
    },
    /// A fitted predictor consulted online (IRG-P / LS-P / POLAR-P).
    Predicted {
        /// The fitted model (fit must already have happened).
        predictor: Box<dyn Predictor + Send>,
        /// Full series: training days followed by the simulated day,
        /// whose realized counts the predictor may read only up to the
        /// current slot.
        series: DemandSeries,
        /// Index of the simulated day within `series`.
        day: usize,
        /// Per-slot forecast cache: `cache[s]` holds the chain forecast
        /// for slot `s` computed when the current slot first reached the
        /// window containing it.
        cache: RefCell<ForecastCache>,
    },
}

/// Cache of chained forecasts keyed by the base slot they were computed
/// from (forecasts are recomputed whenever the base slot advances, i.e.
/// every 30 simulated minutes).
#[derive(Default)]
pub struct ForecastCache {
    base_slot: Option<usize>,
    /// `frames[i]` = per-region forecast for slot `base_slot + i`.
    frames: Vec<Vec<f64>>,
    scratch: Option<DemandSeries>,
}

impl DemandOracle {
    /// Builds the real-demand oracle.
    pub fn real(series: DemandSeries, day: usize) -> Self {
        assert!(day < series.days(), "DemandOracle: day out of range");
        DemandOracle::Real { series, day }
    }

    /// Builds the predicted-demand oracle from an already-fitted model.
    pub fn predicted(
        predictor: Box<dyn Predictor + Send>,
        series: DemandSeries,
        day: usize,
    ) -> Self {
        assert!(day < series.days(), "DemandOracle: day out of range");
        DemandOracle::Predicted {
            predictor,
            series,
            day,
            cache: RefCell::new(ForecastCache::default()),
        }
    }

    /// A short label for policy names ("P" or "R").
    pub fn label(&self) -> &'static str {
        match self {
            DemandOracle::Real { .. } => "R",
            DemandOracle::Predicted { .. } => "P",
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        match self {
            DemandOracle::Real { series, .. } | DemandOracle::Predicted { series, .. } => {
                series.regions()
            }
        }
    }

    /// Expected new riders per region during `[now_ms, now_ms + tc_ms)` of
    /// the simulated day — slot counts (real or forecast) scaled by each
    /// slot's overlap with the window. Windows are truncated at the end of
    /// the day. Allocates the output; the dispatch hot path uses
    /// [`DemandOracle::upcoming_riders_into`] with a reused buffer.
    pub fn upcoming_riders(&self, now_ms: u64, tc_ms: u64) -> Vec<f64> {
        let mut out = Vec::new();
        self.upcoming_riders_into(now_ms, tc_ms, &mut out);
        out
    }

    /// Like [`DemandOracle::upcoming_riders`], filling a caller-owned
    /// buffer (cleared and resized to the region count) so the per-batch
    /// call allocates nothing: slot frames are accumulated in place with
    /// the scalar overlap weights — no per-slot frame copies.
    pub fn upcoming_riders_into(&self, now_ms: u64, tc_ms: u64, out: &mut Vec<f64>) {
        let regions = self.regions();
        out.clear();
        out.resize(regions, 0.0);
        let spd = match self {
            DemandOracle::Real { series, .. } | DemandOracle::Predicted { series, .. } => {
                series.slots_per_day()
            }
        };
        let end_ms = (now_ms + tc_ms).min(spd as u64 * SLOT_MS);
        if now_ms >= end_ms {
            return;
        }
        let s0 = (now_ms / SLOT_MS) as usize;
        let s_last = ((end_ms - 1) / SLOT_MS) as usize;
        for s in s0..=s_last.min(spd - 1) {
            let slot_start = s as u64 * SLOT_MS;
            let slot_end = slot_start + SLOT_MS;
            let overlap = (end_ms.min(slot_end) - now_ms.max(slot_start)) as f64 / SLOT_MS as f64;
            self.with_slot_counts(s0, s, |frame| {
                for (o, &v) in out.iter_mut().zip(frame) {
                    *o += overlap * v;
                }
            });
        }
    }

    /// Per-region counts for `slot`, given the current slot is
    /// `base_slot`: realized values for the real oracle, chained forecasts
    /// for the predicted one. The frame is *borrowed* — straight from the
    /// series for the real oracle, from the forecast cache for the
    /// predicted one — so no per-slot `Vec` is cloned on this path.
    fn with_slot_counts<R>(&self, base_slot: usize, slot: usize, f: impl FnOnce(&[f64]) -> R) -> R {
        match self {
            DemandOracle::Real { series, day } => f(series.frame(*day, slot)),
            DemandOracle::Predicted {
                predictor,
                series,
                day,
                cache,
            } => {
                let mut cache = cache.borrow_mut();
                cache.ensure(predictor.as_ref(), series, *day, base_slot, slot);
                f(&cache.frames[slot - base_slot])
            }
        }
    }

    /// Chain-forecasts the whole simulated day from its first slot —
    /// the offline view POLAR builds its blueprint from. For the real
    /// oracle this returns the realized counts (POLAR-R).
    pub fn full_day_forecast(&self) -> Vec<Vec<f64>> {
        let spd = match self {
            DemandOracle::Real { series, .. } | DemandOracle::Predicted { series, .. } => {
                series.slots_per_day()
            }
        };
        (0..spd)
            .map(|s| self.with_slot_counts(0, s, |frame| frame.to_vec()))
            .collect()
    }
}

/// Reusable sparse evaluation of [`DemandOracle::upcoming_riders_into`].
///
/// At city scale the dense per-batch `clear + resize` over
/// `num_regions` entries becomes the hot path even though demand is
/// concentrated in a small set of regions. `SparseUpcoming` keeps the
/// same dense `values` buffer policies already consume, but only
/// re-zeroes the entries the *previous* batch set (`active`) and only
/// accumulates over the union of regions whose slot frames carry a
/// nonzero bit pattern anywhere in the window. The union is cached per
/// `(base slot, last slot)` window — between 30-simulated-minute slot
/// boundaries a batch pays O(active ∪ union), not O(num_regions).
///
/// Bit-identity with the dense path is unconditional: membership uses
/// the bit pattern (`v.to_bits() != 0`, so a `-0.0` frame entry counts
/// as demand), every excluded region therefore sees only exact `+0.0`
/// frame values — which leave the dense accumulator at `+0.0`, the very
/// value the sparse path leaves untouched — and included regions
/// accumulate the same `overlap × frame` products in the same slot
/// order as the dense loop.
#[derive(Default)]
pub struct SparseUpcoming {
    values: Vec<f64>,
    /// Regions written by the last [`SparseUpcoming::compute`] — the
    /// entries to re-zero on the next call.
    active: Vec<u32>,
    /// Cache key of `union`: the `(base slot, last slot)` window it was
    /// built for.
    window: Option<(usize, usize)>,
    /// Sorted regions whose frame value has a nonzero bit pattern in
    /// any slot of the cached window.
    union: Vec<u32>,
}

impl SparseUpcoming {
    /// Fills [`SparseUpcoming::values`] exactly as
    /// [`DemandOracle::upcoming_riders_into`] would, touching only the
    /// previously-active and currently-demanded regions.
    pub fn compute(&mut self, oracle: &DemandOracle, now_ms: u64, tc_ms: u64) {
        let regions = oracle.regions();
        if self.values.len() != regions {
            self.values.clear();
            self.values.resize(regions, 0.0);
            self.active.clear();
            self.window = None;
        }
        for &r in &self.active {
            self.values[r as usize] = 0.0;
        }
        self.active.clear();
        let spd = match oracle {
            DemandOracle::Real { series, .. } | DemandOracle::Predicted { series, .. } => {
                series.slots_per_day()
            }
        };
        let end_ms = (now_ms + tc_ms).min(spd as u64 * SLOT_MS);
        if now_ms >= end_ms {
            return;
        }
        let s0 = (now_ms / SLOT_MS) as usize;
        let s_last = (((end_ms - 1) / SLOT_MS) as usize).min(spd - 1);
        if self.window != Some((s0, s_last)) {
            self.union.clear();
            for s in s0..=s_last {
                let union = &mut self.union;
                oracle.with_slot_counts(s0, s, |frame| {
                    for (r, &v) in frame.iter().enumerate() {
                        if v.to_bits() != 0 {
                            union.push(r as u32);
                        }
                    }
                });
            }
            self.union.sort_unstable();
            self.union.dedup();
            self.window = Some((s0, s_last));
        }
        for s in s0..=s_last {
            let slot_start = s as u64 * SLOT_MS;
            let slot_end = slot_start + SLOT_MS;
            let overlap = (end_ms.min(slot_end) - now_ms.max(slot_start)) as f64 / SLOT_MS as f64;
            let (values, union) = (&mut self.values, &self.union);
            oracle.with_slot_counts(s0, s, |frame| {
                for &r in union {
                    values[r as usize] += overlap * frame[r as usize];
                }
            });
        }
        self.active.extend_from_slice(&self.union);
    }

    /// The dense per-region expected-rider buffer (length = region
    /// count); identical bit-for-bit to what the dense path fills.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Regions the last [`SparseUpcoming::compute`] wrote — a superset
    /// of the regions with nonzero [`SparseUpcoming::values`], sorted
    /// ascending.
    pub fn active(&self) -> &[u32] {
        &self.active
    }
}

impl ForecastCache {
    /// Makes `frames[slot - base_slot]` available: on a base-slot change
    /// the scratch series is re-synchronized with the realized series and
    /// the chain restarted, then the chain is extended up to `slot`.
    ///
    /// Re-synchronizing only rewrites the slots the *previous* chain
    /// overwrote with its own predictions — `[prev_base, prev_base +
    /// frames.len())` — instead of the whole day: every other slot of the
    /// scratch still holds its realized value, so an O(chain length ×
    /// regions) restore replaces the old O(slots × regions) full-day
    /// rewrite on every 30-simulated-minute base advance.
    fn ensure(
        &mut self,
        predictor: &(dyn Predictor + Send),
        series: &DemandSeries,
        day: usize,
        base_slot: usize,
        slot: usize,
    ) {
        if self.base_slot != Some(base_slot) {
            let scratch = self.scratch.get_or_insert_with(|| series.clone());
            if let Some(prev_base) = self.base_slot {
                let dirtied =
                    prev_base..(prev_base + self.frames.len()).min(series.slots_per_day());
                for s in dirtied {
                    for r in 0..series.regions() {
                        scratch.set(day, s, r, series.get(day, s, r));
                    }
                }
            }
            self.base_slot = Some(base_slot);
            self.frames.clear();
        }
        let offset = slot - base_slot;
        while self.frames.len() <= offset {
            let s = base_slot + self.frames.len();
            // Split borrow: take scratch out, predict, put back.
            let mut scratch = self.scratch.take().expect("scratch initialized");
            let frame = predictor.predict(&scratch, day, s);
            for (r, &v) in frame.iter().enumerate() {
                scratch.set(day, s, r, v);
            }
            self.scratch = Some(scratch);
            self.frames.push(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_prediction::HistoricalAverage;

    fn series() -> DemandSeries {
        // 3 days × 4 slots × 2 regions; slot value = day*4 + slot.
        DemandSeries::from_fn(3, 4, 2, |d, t, r| (d * 4 + t) as f64 + r as f64 * 0.1)
    }

    // SLOT_MS is 30 min; our test series pretends 4 slots/day, which the
    // oracle supports (it uses series.slots_per_day()).

    #[test]
    fn real_oracle_scales_partial_slots() {
        let o = DemandOracle::real(series(), 2);
        // Window = exactly slot 1 of day 2 (value 9.0 / 9.1).
        let w = o.upcoming_riders(SLOT_MS, SLOT_MS);
        assert!((w[0] - 9.0).abs() < 1e-9);
        assert!((w[1] - 9.1).abs() < 1e-9);
        // Half a slot starting mid-slot 1: 0.5×9.0 + ... window ends mid
        // slot 1 → only slot 1, overlap 0.5.
        let w = o.upcoming_riders(SLOT_MS + SLOT_MS / 4, SLOT_MS / 2);
        assert!((w[0] - 4.5).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn real_oracle_spans_slots() {
        let o = DemandOracle::real(series(), 2);
        // Window covering last half of slot 0 and first half of slot 1:
        // 0.5×8 + 0.5×9 = 8.5.
        let w = o.upcoming_riders(SLOT_MS / 2, SLOT_MS);
        assert!((w[0] - 8.5).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn window_truncates_at_day_end() {
        let o = DemandOracle::real(series(), 2);
        // Start in the last slot, window runs past the day: only the
        // remaining part of slot 3 counts (value 11).
        let w = o.upcoming_riders(3 * SLOT_MS + SLOT_MS / 2, 10 * SLOT_MS);
        assert!((w[0] - 5.5).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn predicted_oracle_uses_the_model() {
        let s = series();
        let mut ha = HistoricalAverage;
        use mrvd_prediction::Predictor as _;
        ha.fit(&s, 2);
        let o = DemandOracle::predicted(Box::new(ha), s.clone(), 2);
        let w = o.upcoming_riders(SLOT_MS, SLOT_MS);
        // HA averages the previous 15 global slots of the scratch series;
        // prediction must be finite, non-negative and *not* equal to the
        // realized value 9.0 (HA lags a ramp).
        assert!(w[0].is_finite() && w[0] >= 0.0);
        assert!(w[0] < 9.0);
    }

    #[test]
    fn chained_forecast_does_not_read_realized_future() {
        let s = series();
        let mut ha = HistoricalAverage;
        use mrvd_prediction::Predictor as _;
        ha.fit(&s, 2);
        // Two oracles whose series differ ONLY in future slots (≥ slot 1
        // of day 2).
        let mut s_mut = s.clone();
        for t in 1..4 {
            for r in 0..2 {
                s_mut.set(2, t, r, 999.0);
            }
        }
        let o1 = DemandOracle::predicted(Box::new(HistoricalAverage), s, 2);
        let o2 = DemandOracle::predicted(Box::new(HistoricalAverage), s_mut, 2);
        // Window starting at slot 1 covering slots 1–3 (forecast chain).
        let w1 = o1.upcoming_riders(SLOT_MS, 3 * SLOT_MS);
        let w2 = o2.upcoming_riders(SLOT_MS, 3 * SLOT_MS);
        assert_eq!(w1, w2, "forecast leaked realized future values");
    }

    #[test]
    fn partial_scratch_restore_matches_a_fresh_oracle() {
        // The forecast cache only restores the slots the previous chain
        // dirtied when its base slot moves. Walking the day forward —
        // and jumping back to slot 0 as POLAR's full-day view does —
        // must therefore produce exactly what a freshly built oracle
        // produces at every base.
        let s = series();
        let mut ha = HistoricalAverage;
        use mrvd_prediction::Predictor as _;
        ha.fit(&s, 2);
        let walked = DemandOracle::predicted(Box::new(HistoricalAverage), s.clone(), 2);
        let windows = [
            (0, 2 * SLOT_MS),            // base 0, chain of 2
            (SLOT_MS, 3 * SLOT_MS),      // base 1, chain to the day end
            (0, 4 * SLOT_MS),            // back to base 0, full chain
            (2 * SLOT_MS, SLOT_MS),      // base 2
            (3 * SLOT_MS, 10 * SLOT_MS), // base 3, truncated window
        ];
        for (now, tc) in windows {
            let fresh = DemandOracle::predicted(Box::new(HistoricalAverage), s.clone(), 2);
            assert_eq!(
                walked.upcoming_riders(now, tc),
                fresh.upcoming_riders(now, tc),
                "stale scratch at now={now}"
            );
        }
        // The full-day view (base 0) after a mid-day base is also clean.
        let fresh = DemandOracle::predicted(Box::new(HistoricalAverage), s.clone(), 2);
        assert_eq!(walked.full_day_forecast(), fresh.full_day_forecast());
    }

    #[test]
    fn upcoming_riders_into_reuses_the_buffer() {
        let o = DemandOracle::real(series(), 2);
        let mut buf = vec![99.0; 7]; // stale content and wrong size
        o.upcoming_riders_into(SLOT_MS, SLOT_MS, &mut buf);
        assert_eq!(buf, o.upcoming_riders(SLOT_MS, SLOT_MS));
        // An empty window yields zeros, not stale values.
        o.upcoming_riders_into(SLOT_MS, 0, &mut buf);
        assert_eq!(buf, vec![0.0, 0.0]);
    }

    #[test]
    fn sparse_upcoming_matches_dense_bitwise() {
        // 6 regions: 0–2 carry demand, 3 is always +0.0, 4 holds a
        // -0.0 (nonzero bit pattern — must stay in the union), 5 is
        // +0.0 except one slot.
        let s = DemandSeries::from_fn(3, 4, 6, |d, t, r| match r {
            3 => 0.0,
            4 => -0.0,
            5 => {
                if t == 2 {
                    7.5
                } else {
                    0.0
                }
            }
            _ => (d * 4 + t) as f64 + r as f64 * 0.1,
        });
        let o = DemandOracle::real(s, 2);
        let mut sparse = SparseUpcoming::default();
        let mut dense = Vec::new();
        let windows = [
            (0, SLOT_MS),                // slot 0 only
            (SLOT_MS / 2, SLOT_MS),      // spans slots 0–1, same union? no: new window
            (SLOT_MS / 2 + 1, SLOT_MS),  // same (s0, s_last) → cached union
            (2 * SLOT_MS, SLOT_MS / 3),  // slot 2 (region 5 active)
            (3 * SLOT_MS, 10 * SLOT_MS), // truncated at day end
            (4 * SLOT_MS, SLOT_MS),      // empty window
            (SLOT_MS, 0),                // empty window
            (SLOT_MS, 2 * SLOT_MS),      // back to a live window
        ];
        for (now, tc) in windows {
            sparse.compute(&o, now, tc);
            o.upcoming_riders_into(now, tc, &mut dense);
            assert_eq!(sparse.values().len(), dense.len());
            for (k, (a, b)) in sparse.values().iter().zip(&dense).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "region {k} diverged at now={now} tc={tc}: sparse {a} dense {b}"
                );
            }
            // Every nonzero value is covered by the active list.
            for (k, v) in sparse.values().iter().enumerate() {
                if v.to_bits() != 0 {
                    assert!(sparse.active().contains(&(k as u32)));
                }
            }
        }
    }

    #[test]
    fn sparse_upcoming_matches_dense_for_the_predicted_oracle() {
        let s = series();
        let mut ha = HistoricalAverage;
        use mrvd_prediction::Predictor as _;
        ha.fit(&s, 2);
        let o = DemandOracle::predicted(Box::new(HistoricalAverage), s.clone(), 2);
        let reference = DemandOracle::predicted(Box::new(HistoricalAverage), s, 2);
        let mut sparse = SparseUpcoming::default();
        let mut dense = Vec::new();
        // Walk the day forward across base advances — both oracles see
        // the same call sequence so their forecast caches stay in step.
        for (now, tc) in [
            (0, 2 * SLOT_MS),
            (SLOT_MS / 2, 2 * SLOT_MS),
            (SLOT_MS, 3 * SLOT_MS),
            (2 * SLOT_MS, SLOT_MS),
            (3 * SLOT_MS, 10 * SLOT_MS),
        ] {
            sparse.compute(&o, now, tc);
            reference.upcoming_riders_into(now, tc, &mut dense);
            let bits: Vec<u64> = sparse.values().iter().map(|v| v.to_bits()).collect();
            let dense_bits: Vec<u64> = dense.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, dense_bits, "diverged at now={now}");
        }
    }

    #[test]
    fn full_day_forecast_has_all_slots() {
        let o = DemandOracle::real(series(), 1);
        let f = o.full_day_forecast();
        assert_eq!(f.len(), 4);
        assert!((f[2][0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero() {
        let o = DemandOracle::real(series(), 2);
        let w = o.upcoming_riders(SLOT_MS, 0);
        assert_eq!(w, vec![0.0, 0.0]);
    }
}
