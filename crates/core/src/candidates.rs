//! Valid rider–driver pair generation (Definition 3).
//!
//! For every waiting rider, finds available drivers that can reach the
//! pickup before the deadline. When the travel model exposes a speed
//! bound, the search expands over grid rings only as far as the deadline
//! allows (the radius-bounded search described in DESIGN.md); otherwise
//! it scans all drivers (small instances, road networks).
//!
//! Policies call this every batch. When the engine supplies its live,
//! incrementally maintained availability index
//! ([`BatchContext::avail_index`] — kept in sync at true event times:
//! assignment, dropoff, shift on/off), candidate generation is a thin
//! view over that index and no per-batch rebuild happens at all. Without
//! one (hand-built contexts, the legacy reference loop), a
//! [`CandidateScratch`] owned by the caller keeps a private index whose
//! bucket allocations (and the ring query's hit buffers) survive across
//! batches, so steady state pays only driver re-insertion — no `Grid`
//! clone, no fresh `Vec` per region per batch.
//!
//! Both paths produce *identical* [`CandidateSet`]s: candidates are
//! sorted by `(pickup travel time, driver id)` — a total order on the
//! drivers themselves, not their batch slots — so neither bucket
//! insertion order (which differs between a live index and a rebuild)
//! nor the driver view's slot order (the engine's live views are not
//! id-sorted) can leak into the output. The engine-equivalence
//! batteries pin this end to end.

use mrvd_sim::{BatchContext, DriverId};
use mrvd_spatial::{Point, RegionIndex};

/// Valid pairs per rider: `pairs[i]` lists `(driver_index, pickup_travel_ms)`
/// for rider `ctx.riders[i]`, sorted by pickup travel time and truncated
/// to the configured candidate budget. Indices refer to positions in
/// `ctx.riders` / `ctx.drivers`.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidate drivers per rider (see type-level docs).
    pub pairs: Vec<Vec<(usize, u64)>>,
}

impl CandidateSet {
    /// Total number of valid pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.iter().map(Vec::len).sum()
    }

    /// Inverts the mapping: for each driver, the riders it is a candidate
    /// for (with pickup travel time).
    pub fn by_driver(&self, num_drivers: usize) -> Vec<Vec<(usize, u64)>> {
        let mut out = vec![Vec::new(); num_drivers];
        for (rider_idx, cands) in self.pairs.iter().enumerate() {
            for &(driver_idx, t) in cands {
                out[driver_idx].push((rider_idx, t));
            }
        }
        out
    }
}

/// Reusable state for [`valid_candidates_with`], owned by the policy and
/// carried across batches: the fallback per-region driver index (buckets
/// are cleared, never reallocated, while the grid stays the same) used
/// when no live engine index is available, and the ring queries' hit
/// buffers. With a live index the scratch is a thin view: only the hit
/// buffer is touched.
#[derive(Debug, Default)]
pub struct CandidateScratch {
    index: Option<RegionIndex<usize>>,
    hits: Vec<(usize, Point)>,
    id_hits: Vec<(DriverId, Point)>,
    /// Driver id → batch slot, rebuilt per live-index batch when the
    /// context carries no live views (one `u32` write per available
    /// driver — far cheaper than re-bucketing them). With live views the
    /// engine's own id→slot map answers directly and this table is not
    /// touched. Grow-only; stale entries are never read because the live
    /// index only yields ids present in the current batch.
    slot_of_id: Vec<u32>,
}

impl CandidateScratch {
    /// An empty scratch; the first batch sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generates the valid candidate set for one batch.
///
/// Convenience wrapper over [`valid_candidates_with`] paying a fresh
/// scratch (grid clone + per-region buckets) on every call; policies
/// that run once per batch should hold a [`CandidateScratch`] instead.
pub fn valid_candidates(ctx: &BatchContext<'_>, max_candidates: usize) -> CandidateSet {
    valid_candidates_with(ctx, max_candidates, &mut CandidateScratch::new())
}

/// Generates the valid candidate set for one batch, reusing
/// caller-held scratch across batches.
///
/// Prefers the engine's live availability index
/// ([`BatchContext::avail_index`]) when one is present, built over the
/// batch's grid and consistent in size with the driver view — zero
/// per-batch index maintenance for the policy. Otherwise rebuilds the
/// scratch-held index in place (or, without a travel-speed bound, scans
/// all drivers). All paths return identical candidate sets.
pub fn valid_candidates_with(
    ctx: &BatchContext<'_>,
    max_candidates: usize,
    scratch: &mut CandidateScratch,
) -> CandidateSet {
    let speed_bound = ctx.travel.speed_bound_mps();
    if let (Some(ix), Some(v)) = (ctx.avail_index, speed_bound) {
        // The live path requires an index consistent with the batch's
        // driver view; a mismatched grid or length (possible only for
        // hand-built contexts — the engine maintains both invariants)
        // falls through to the rebuild, never to a wrong answer.
        if ix.grid() == ctx.grid && ix.len() == ctx.drivers.len() {
            return candidates_from_live_index(ctx, max_candidates, ix, v, scratch);
        }
    }
    let mut pairs = Vec::with_capacity(ctx.riders.len());
    // Fallback: spatial index of available drivers (by driver *slot*),
    // rebuilt in place — positions change every batch, allocations do
    // not. This is the reference rebuild the live path is differentially
    // tested against.
    let CandidateScratch { index, hits, .. } = scratch;
    let index = speed_bound.map(|_| {
        let ix = match index {
            Some(ix) => {
                ix.retarget(ctx.grid);
                ix
            }
            None => index.insert(RegionIndex::new(ctx.grid.clone())),
        };
        for (i, d) in ctx.drivers.iter().enumerate() {
            ix.insert(i, d.pos);
        }
        ix
    });
    for rider in ctx.riders {
        let budget_ms = rider.deadline_ms.saturating_sub(ctx.now_ms);
        let mut cands: Vec<(usize, u64)> = match (&index, speed_bound) {
            (Some(ix), Some(v)) => {
                let radius_m = v * budget_ms as f64 / 1000.0;
                ix.within_radius_into(rider.pickup, radius_m, usize::MAX, hits);
                hits.iter()
                    .filter_map(|&(i, pos)| {
                        let t = ctx.travel.travel_time_ms(pos, rider.pickup);
                        (ctx.now_ms + t <= rider.deadline_ms).then_some((i, t))
                    })
                    .collect()
            }
            _ => ctx
                .drivers
                .iter()
                .enumerate()
                .filter_map(|(i, d)| {
                    let t = ctx.travel.travel_time_ms(d.pos, rider.pickup);
                    (ctx.now_ms + t <= rider.deadline_ms).then_some((i, t))
                })
                .collect(),
        };
        cands.sort_by_key(|&(i, t)| (t, ctx.drivers[i].id));
        cands.truncate(max_candidates);
        pairs.push(cands);
    }
    CandidateSet { pairs }
}

/// The live-index path: ring queries against the engine-maintained
/// availability index, with hits translated from [`DriverId`]s back to
/// batch slots — through the live views' own id→slot map when the
/// context carries one (zero per-batch table work), else through a
/// scratch-held direct-lookup table. The `(travel time, driver id)`
/// sort makes the output independent of bucket order and view order, so
/// this is byte-identical to the rebuild path.
fn candidates_from_live_index(
    ctx: &BatchContext<'_>,
    max_candidates: usize,
    ix: &RegionIndex<DriverId>,
    speed_bound_mps: f64,
    scratch: &mut CandidateScratch,
) -> CandidateSet {
    let CandidateScratch {
        id_hits,
        slot_of_id,
        ..
    } = scratch;
    // Refresh the id → slot table for this batch's driver view — only
    // when no live views are present (the engine's map already answers
    // in O(1)). Stale entries from earlier batches are harmless: the
    // live index is consistent with `ctx.drivers`, so only ids written
    // here are read.
    if ctx.views.is_none() {
        if let Some(max_id) = ctx.drivers.iter().map(|d| d.id.idx()).max() {
            if slot_of_id.len() <= max_id {
                slot_of_id.resize(max_id + 1, u32::MAX);
            }
            for (slot, d) in ctx.drivers.iter().enumerate() {
                slot_of_id[d.id.idx()] = slot as u32;
            }
        }
    }
    let slot_of = |id: DriverId| -> usize {
        match ctx.views {
            Some(v) => v
                .avail_slot(id)
                .expect("live index hit missing from the live views"),
            None => slot_of_id[id.idx()] as usize,
        }
    };
    let mut pairs = Vec::with_capacity(ctx.riders.len());
    for rider in ctx.riders {
        let budget_ms = rider.deadline_ms.saturating_sub(ctx.now_ms);
        let radius_m = speed_bound_mps * budget_ms as f64 / 1000.0;
        ix.within_radius_into(rider.pickup, radius_m, usize::MAX, id_hits);
        let mut cands: Vec<(usize, u64)> = id_hits
            .iter()
            .filter_map(|&(id, pos)| {
                let t = ctx.travel.travel_time_ms(pos, rider.pickup);
                (ctx.now_ms + t <= rider.deadline_ms).then(|| (slot_of(id), t))
            })
            .collect();
        cands.sort_by_key(|&(i, t)| (t, ctx.drivers[i].id));
        cands.truncate(max_candidates);
        pairs.push(cands);
    }
    CandidateSet { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_sim::{AvailableDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point, TravelModel};

    struct NoBoundModel(ConstantSpeedModel);

    impl TravelModel for NoBoundModel {
        fn travel_time_ms(&self, a: Point, b: Point) -> u64 {
            self.0.travel_time_ms(a, b)
        }
        // speed_bound_mps stays None → forces the scan path.
    }

    fn rider(p: Point, deadline_ms: u64) -> WaitingRider {
        WaitingRider {
            id: RiderId(0),
            pickup: p,
            dropoff: Point::new(p.lon + 0.01, p.lat),
            request_ms: 0,
            deadline_ms,
        }
    }

    fn drivers_line(n: usize) -> Vec<AvailableDriver> {
        // Drivers spaced ~170 m apart eastward from the rider.
        (0..n)
            .map(|i| AvailableDriver {
                id: DriverId(i as u32),
                pos: Point::new(-73.98 + 0.002 * i as f64, 40.75),
                available_since_ms: 0,
            })
            .collect()
    }

    #[test]
    fn ring_search_matches_full_scan() {
        let grid = Grid::nyc_16x16();
        let fast = ConstantSpeedModel::new(8.0);
        let slow = NoBoundModel(ConstantSpeedModel::new(8.0));
        let riders = [rider(Point::new(-73.98, 40.75), 240_000)];
        let drivers = drivers_line(40);
        let ctx_fast = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &fast,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let ctx_slow = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &slow,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let a = valid_candidates(&ctx_fast, usize::MAX);
        let b = valid_candidates(&ctx_slow, usize::MAX);
        assert_eq!(a.pairs, b.pairs);
        assert!(!a.pairs[0].is_empty());
    }

    #[test]
    fn deadline_excludes_far_drivers() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        // 30 s budget at 8 m/s = 240 m: only the first two drivers
        // (0 m, ~169 m) qualify.
        let riders = [rider(Point::new(-73.98, 40.75), 30_000)];
        let drivers = drivers_line(10);
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let c = valid_candidates(&ctx, usize::MAX);
        assert_eq!(c.pairs[0].len(), 2, "{:?}", c.pairs[0]);
        // Sorted nearest-first.
        assert!(c.pairs[0][0].1 <= c.pairs[0][1].1);
    }

    #[test]
    fn candidate_budget_truncates() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [rider(Point::new(-73.98, 40.75), 600_000)];
        let drivers = drivers_line(30);
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let c = valid_candidates(&ctx, 5);
        assert_eq!(c.pairs[0].len(), 5);
        // The 5 kept are the 5 nearest.
        for w in c.pairs[0].windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(c.pairs[0][0].1, 0);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_across_changing_batches() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let mut scratch = CandidateScratch::new();
        // Three "batches" with different driver sets, rider sets and
        // timestamps; the reused scratch must never leak state between
        // them.
        for (now_ms, n_drivers, deadline) in [
            (0u64, 40usize, 240_000u64),
            (3_000, 7, 30_000),
            (6_000, 25, 120_000),
        ] {
            let riders = [
                rider(Point::new(-73.98, 40.75), deadline),
                rider(Point::new(-73.92, 40.80), deadline),
            ];
            let drivers = drivers_line(n_drivers);
            let ctx = BatchContext {
                now_ms,
                riders: &riders,
                drivers: &drivers,
                busy: &[],
                travel: &travel,
                grid: &grid,
                avail_index: None,
                region_counts: None,
                views: None,
            };
            let reused = valid_candidates_with(&ctx, 8, &mut scratch);
            let fresh = valid_candidates(&ctx, 8);
            assert_eq!(reused.pairs, fresh.pairs, "diverged at now={now_ms}");
        }
    }

    #[test]
    fn live_index_path_matches_rebuild_path_bit_for_bit() {
        use mrvd_spatial::RegionIndex;
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [
            rider(Point::new(-73.98, 40.75), 240_000),
            rider(Point::new(-73.92, 40.80), 90_000),
            rider(Point::new(-74.00, 40.70), 600_000),
        ];
        let drivers = drivers_line(25);
        // A live index over the same drivers, inserted in scrambled order
        // so bucket order differs from the rebuild path's slot order —
        // the (travel time, slot) sort must hide that.
        let mut live: RegionIndex<DriverId> = RegionIndex::new(grid.clone());
        let mut order: Vec<usize> = (0..drivers.len()).collect();
        order.reverse();
        order.swap(0, 10);
        for i in order {
            live.insert(drivers[i].id, drivers[i].pos);
        }
        let mk_ctx = |avail_index| BatchContext {
            now_ms: 3_000,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index,
            region_counts: None,
            views: None,
        };
        let with_live = valid_candidates(&mk_ctx(Some(&live)), 8);
        let rebuilt = valid_candidates(&mk_ctx(None), 8);
        assert_eq!(with_live.pairs, rebuilt.pairs);
        assert!(with_live.num_pairs() > 0);
        // Unbudgeted variant too.
        let a = valid_candidates(&mk_ctx(Some(&live)), usize::MAX);
        let b = valid_candidates(&mk_ctx(None), usize::MAX);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn inconsistent_live_index_falls_back_to_rebuild() {
        use mrvd_spatial::RegionIndex;
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [rider(Point::new(-73.98, 40.75), 240_000)];
        let drivers = drivers_line(10);
        // An index missing one driver (length mismatch): the live path
        // must not be trusted — the rebuild still sees all 10.
        let mut live: RegionIndex<DriverId> = RegionIndex::new(grid.clone());
        for d in &drivers[..9] {
            live.insert(d.id, d.pos);
        }
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: Some(&live),
            region_counts: None,
            views: None,
        };
        let got = valid_candidates(&ctx, usize::MAX);
        assert_eq!(got.pairs[0].len(), 10);
    }

    #[test]
    fn live_index_over_a_different_grid_falls_back_to_rebuild() {
        use mrvd_spatial::RegionIndex;
        let grid = Grid::nyc_16x16();
        let other = Grid::new(Point::new(-74.03, 40.58), Point::new(-73.77, 40.92), 4, 4);
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [rider(Point::new(-73.98, 40.75), 240_000)];
        let drivers = drivers_line(10);
        let mut live: RegionIndex<DriverId> = RegionIndex::new(other);
        for d in &drivers {
            live.insert(d.id, d.pos);
        }
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: Some(&live),
            region_counts: None,
            views: None,
        };
        let got = valid_candidates(&ctx, usize::MAX);
        let expect = valid_candidates(
            &BatchContext {
                avail_index: None,
                region_counts: None,
                ..ctx
            },
            usize::MAX,
        );
        assert_eq!(got.pairs, expect.pairs);
    }

    #[test]
    fn by_driver_inverts_the_mapping() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [
            rider(Point::new(-73.98, 40.75), 240_000),
            rider(Point::new(-73.979, 40.751), 240_000),
        ];
        let drivers = drivers_line(3);
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let c = valid_candidates(&ctx, usize::MAX);
        let inv = c.by_driver(3);
        for (rider_idx, cands) in c.pairs.iter().enumerate() {
            for &(driver_idx, t) in cands {
                assert!(inv[driver_idx].contains(&(rider_idx, t)));
            }
        }
    }
}
