//! Valid rider–driver pair generation (Definition 3).
//!
//! For every waiting rider, finds available drivers that can reach the
//! pickup before the deadline. When the travel model exposes a speed
//! bound, the search expands over grid rings only as far as the deadline
//! allows (the radius-bounded search described in DESIGN.md); otherwise
//! it scans all drivers (small instances, road networks).
//!
//! Policies call this every batch; a [`CandidateScratch`] owned by the
//! caller keeps the spatial index's bucket allocations (and the ring
//! query's hit buffer) alive across batches, so steady state pays only
//! driver re-insertion — no `Grid` clone, no fresh `Vec` per region per
//! batch. This is the first step toward the fully incremental candidate
//! index on the roadmap (drivers move only at dropoffs).

use mrvd_sim::BatchContext;
use mrvd_spatial::{Point, RegionIndex};

/// Valid pairs per rider: `pairs[i]` lists `(driver_index, pickup_travel_ms)`
/// for rider `ctx.riders[i]`, sorted by pickup travel time and truncated
/// to the configured candidate budget. Indices refer to positions in
/// `ctx.riders` / `ctx.drivers`.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidate drivers per rider (see type-level docs).
    pub pairs: Vec<Vec<(usize, u64)>>,
}

impl CandidateSet {
    /// Total number of valid pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.iter().map(Vec::len).sum()
    }

    /// Inverts the mapping: for each driver, the riders it is a candidate
    /// for (with pickup travel time).
    pub fn by_driver(&self, num_drivers: usize) -> Vec<Vec<(usize, u64)>> {
        let mut out = vec![Vec::new(); num_drivers];
        for (rider_idx, cands) in self.pairs.iter().enumerate() {
            for &(driver_idx, t) in cands {
                out[driver_idx].push((rider_idx, t));
            }
        }
        out
    }
}

/// Reusable state for [`valid_candidates_with`], owned by the policy and
/// carried across batches: the per-region driver index (buckets are
/// cleared, never reallocated, while the grid stays the same) and the
/// ring query's hit buffer.
#[derive(Debug, Default)]
pub struct CandidateScratch {
    index: Option<RegionIndex<usize>>,
    hits: Vec<(usize, Point)>,
}

impl CandidateScratch {
    /// An empty scratch; the first batch sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generates the valid candidate set for one batch.
///
/// Convenience wrapper over [`valid_candidates_with`] paying a fresh
/// scratch (grid clone + per-region buckets) on every call; policies
/// that run once per batch should hold a [`CandidateScratch`] instead.
pub fn valid_candidates(ctx: &BatchContext<'_>, max_candidates: usize) -> CandidateSet {
    valid_candidates_with(ctx, max_candidates, &mut CandidateScratch::new())
}

/// Generates the valid candidate set for one batch, reusing
/// caller-held scratch across batches.
pub fn valid_candidates_with(
    ctx: &BatchContext<'_>,
    max_candidates: usize,
    scratch: &mut CandidateScratch,
) -> CandidateSet {
    let mut pairs = Vec::with_capacity(ctx.riders.len());
    // Spatial index of available drivers (by driver *index*), rebuilt in
    // place: positions change every batch, allocations do not.
    let speed_bound = ctx.travel.speed_bound_mps();
    let CandidateScratch { index, hits } = scratch;
    let index = speed_bound.map(|_| {
        let ix = match index {
            Some(ix) => {
                ix.retarget(ctx.grid);
                ix
            }
            None => index.insert(RegionIndex::new(ctx.grid.clone())),
        };
        for (i, d) in ctx.drivers.iter().enumerate() {
            ix.insert(i, d.pos);
        }
        ix
    });
    for rider in ctx.riders {
        let budget_ms = rider.deadline_ms.saturating_sub(ctx.now_ms);
        let mut cands: Vec<(usize, u64)> = match (&index, speed_bound) {
            (Some(ix), Some(v)) => {
                let radius_m = v * budget_ms as f64 / 1000.0;
                ix.within_radius_into(rider.pickup, radius_m, usize::MAX, hits);
                hits.iter()
                    .filter_map(|&(i, pos)| {
                        let t = ctx.travel.travel_time_ms(pos, rider.pickup);
                        (ctx.now_ms + t <= rider.deadline_ms).then_some((i, t))
                    })
                    .collect()
            }
            _ => ctx
                .drivers
                .iter()
                .enumerate()
                .filter_map(|(i, d)| {
                    let t = ctx.travel.travel_time_ms(d.pos, rider.pickup);
                    (ctx.now_ms + t <= rider.deadline_ms).then_some((i, t))
                })
                .collect(),
        };
        cands.sort_by_key(|&(i, t)| (t, i));
        cands.truncate(max_candidates);
        pairs.push(cands);
    }
    CandidateSet { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_sim::{AvailableDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point, TravelModel};

    struct NoBoundModel(ConstantSpeedModel);

    impl TravelModel for NoBoundModel {
        fn travel_time_ms(&self, a: Point, b: Point) -> u64 {
            self.0.travel_time_ms(a, b)
        }
        // speed_bound_mps stays None → forces the scan path.
    }

    fn rider(p: Point, deadline_ms: u64) -> WaitingRider {
        WaitingRider {
            id: RiderId(0),
            pickup: p,
            dropoff: Point::new(p.lon + 0.01, p.lat),
            request_ms: 0,
            deadline_ms,
        }
    }

    fn drivers_line(n: usize) -> Vec<AvailableDriver> {
        // Drivers spaced ~170 m apart eastward from the rider.
        (0..n)
            .map(|i| AvailableDriver {
                id: DriverId(i as u32),
                pos: Point::new(-73.98 + 0.002 * i as f64, 40.75),
                available_since_ms: 0,
            })
            .collect()
    }

    #[test]
    fn ring_search_matches_full_scan() {
        let grid = Grid::nyc_16x16();
        let fast = ConstantSpeedModel::new(8.0);
        let slow = NoBoundModel(ConstantSpeedModel::new(8.0));
        let riders = [rider(Point::new(-73.98, 40.75), 240_000)];
        let drivers = drivers_line(40);
        let ctx_fast = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &fast,
            grid: &grid,
        };
        let ctx_slow = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &slow,
            grid: &grid,
        };
        let a = valid_candidates(&ctx_fast, usize::MAX);
        let b = valid_candidates(&ctx_slow, usize::MAX);
        assert_eq!(a.pairs, b.pairs);
        assert!(!a.pairs[0].is_empty());
    }

    #[test]
    fn deadline_excludes_far_drivers() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        // 30 s budget at 8 m/s = 240 m: only the first two drivers
        // (0 m, ~169 m) qualify.
        let riders = [rider(Point::new(-73.98, 40.75), 30_000)];
        let drivers = drivers_line(10);
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
        };
        let c = valid_candidates(&ctx, usize::MAX);
        assert_eq!(c.pairs[0].len(), 2, "{:?}", c.pairs[0]);
        // Sorted nearest-first.
        assert!(c.pairs[0][0].1 <= c.pairs[0][1].1);
    }

    #[test]
    fn candidate_budget_truncates() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [rider(Point::new(-73.98, 40.75), 600_000)];
        let drivers = drivers_line(30);
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
        };
        let c = valid_candidates(&ctx, 5);
        assert_eq!(c.pairs[0].len(), 5);
        // The 5 kept are the 5 nearest.
        for w in c.pairs[0].windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(c.pairs[0][0].1, 0);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_across_changing_batches() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let mut scratch = CandidateScratch::new();
        // Three "batches" with different driver sets, rider sets and
        // timestamps; the reused scratch must never leak state between
        // them.
        for (now_ms, n_drivers, deadline) in [
            (0u64, 40usize, 240_000u64),
            (3_000, 7, 30_000),
            (6_000, 25, 120_000),
        ] {
            let riders = [
                rider(Point::new(-73.98, 40.75), deadline),
                rider(Point::new(-73.92, 40.80), deadline),
            ];
            let drivers = drivers_line(n_drivers);
            let ctx = BatchContext {
                now_ms,
                riders: &riders,
                drivers: &drivers,
                busy: &[],
                travel: &travel,
                grid: &grid,
            };
            let reused = valid_candidates_with(&ctx, 8, &mut scratch);
            let fresh = valid_candidates(&ctx, 8);
            assert_eq!(reused.pairs, fresh.pairs, "diverged at now={now_ms}");
        }
    }

    #[test]
    fn by_driver_inverts_the_mapping() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = [
            rider(Point::new(-73.98, 40.75), 240_000),
            rider(Point::new(-73.979, 40.751), 240_000),
        ];
        let drivers = drivers_line(3);
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
        };
        let c = valid_candidates(&ctx, usize::MAX);
        let inv = c.by_driver(3);
        for (rider_idx, cands) in c.pairs.iter().enumerate() {
            for &(driver_idx, t) in cands {
                assert!(inv[driver_idx].contains(&(rider_idx, t)));
            }
        }
    }
}
