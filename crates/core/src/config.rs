//! Configuration of the queueing-theoretic dispatcher.

/// Parameters of the queueing policies (defaults follow the paper's
/// Table 2 defaults where stated, DESIGN.md otherwise).
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Scheduling window `t_c` in ms over which arrival rates are
    /// estimated (paper default ~15 minutes; swept in Figure 9).
    pub tc_ms: u64,
    /// Reneging exponent β of `π(n) = e^{βn}/μ` (Eq. 4). The paper fits
    /// it from reneging records; 0.05 reproduces mild impatience at our
    /// default 180 s patience.
    pub beta: f64,
    /// Maximum candidate drivers considered per rider. Bounds per-batch
    /// cost at paper scale; `usize::MAX` disables the cap.
    pub max_candidates: usize,
    /// Ablation switch: when true, every region gets the same constant
    /// expected idle time, silencing the destination-side queueing term
    /// of the idle ratio (experiment E13 in DESIGN.md).
    pub uniform_et: bool,
    /// Differential-testing switch: when true, the queueing policies
    /// estimate rates through the verbatim eager reference path
    /// ([`crate::estimate_rates`] + a full expected-idle-time table)
    /// instead of the incremental lazy [`crate::RateTracker`]. Both paths
    /// must produce byte-identical assignments; the equivalence batteries
    /// pin it.
    pub reference_rates: bool,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            tc_ms: 15 * 60 * 1000,
            beta: 0.05,
            max_candidates: 32,
            uniform_et: false,
            reference_rates: false,
        }
    }
}

impl DispatchConfig {
    /// The scheduling window in seconds.
    pub fn tc_s(&self) -> f64 {
        self.tc_ms as f64 / 1000.0
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on non-positive `t_c`, β, or zero candidate budget.
    pub fn validate(&self) {
        assert!(self.tc_ms > 0, "DispatchConfig: t_c must be positive");
        assert!(
            self.beta > 0.0 && self.beta.is_finite(),
            "DispatchConfig: beta must be positive"
        );
        assert!(
            self.max_candidates > 0,
            "DispatchConfig: max_candidates must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = DispatchConfig::default();
        c.validate();
        assert_eq!(c.tc_s(), 900.0);
    }

    #[test]
    #[should_panic(expected = "t_c must be positive")]
    fn zero_tc_panics() {
        DispatchConfig {
            tc_ms: 0,
            ..DispatchConfig::default()
        }
        .validate();
    }
}
