//! The paper's contribution: queueing-theoretic batch vehicle dispatching
//! for the Maximum Revenue Vehicle Dispatching (MRVD) problem — plus every
//! baseline its evaluation compares against.
//!
//! * [`queueing_policy`] — the batch algorithms of §5:
//!   **IRG** (idle-ratio-oriented greedy, Algorithm 2), **LS** (local
//!   search refinement, Algorithm 3) and **SHORT** (the Appendix C variant
//!   minimizing `cost + ET` to maximize served orders). One implementation
//!   parameterized by [`SearchMode`] and [`PriorityRule`].
//! * [`rates`] — the per-region arrival-rate estimators of Eqs. 18–19 and
//!   the expected-idle-time table driving the idle ratio (Eq. 17), kept
//!   verbatim as the differential-testing reference.
//! * [`rate_tracker`] — the incremental hot-path replacement: counts from
//!   the engine's live [`mrvd_sim::RegionCounts`], expected idle times
//!   solved lazily only for regions the policy touches.
//! * [`oracle`] — the demand oracle: ground-truth counts (`-R` variants)
//!   or a fitted [`mrvd_prediction::Predictor`] consulted online with
//!   recursive multi-slot forecasting (`-P` variants).
//! * [`candidates`] — deadline-valid rider–driver pair generation
//!   (Definition 3) via ring-bounded spatial search.
//! * [`baselines`] — **LTG** (long-trip greedy), **NEAR** (nearest-trip
//!   greedy) and **RAND** (random valid assignment) from §6.3.
//! * [`polar`] — the state-of-the-art comparator **POLAR** (Tong et al.,
//!   VLDB'17), reconstructed from its published description: an offline
//!   prediction-based blueprint guiding online matching.
//! * [`upper`] — the **UPPER** revenue bound (most expensive orders,
//!   pickup distances ignored).
//!
//! All policies implement [`mrvd_sim::DispatchPolicy`] and run unmodified
//! inside [`mrvd_sim::Simulator`].

#![forbid(unsafe_code)]

pub mod baselines;
pub mod candidates;
pub mod config;
pub mod oracle;
pub mod polar;
pub mod queueing_policy;
pub mod rate_tracker;
pub mod rates;
pub mod upper;

pub use baselines::{Ltg, Near, Rand};
pub use candidates::{valid_candidates, valid_candidates_with, CandidateScratch, CandidateSet};
pub use config::DispatchConfig;
pub use oracle::{DemandOracle, SparseUpcoming};
pub use polar::{Polar, PolarConfig};
pub use queueing_policy::{PriorityRule, QueueingPolicy, SearchMode};
pub use rate_tracker::{RateTracker, RateTrackerStats};
pub use rates::{estimate_rates, region_rates, RegionEstimates};
pub use upper::Upper;
