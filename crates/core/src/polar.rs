//! POLAR — the state-of-the-art comparator (Tong et al., "Flexible online
//! task assignment in real-time spatial data", VLDB 2017; the paper's
//! citation \[28\]).
//!
//! The original system is closed-source; this reconstruction follows the
//! published two-phase description the paper summarizes: *"utilizes the
//! predicted number of orders and drivers to conduct an offline bipartite
//! matching first, then uses the offline result as a blueprint to guide
//! the online task matching"*.
//!
//! * **Offline**: for every 30-minute slot, predicted per-region demand is
//!   matched against a per-region supply estimate (drivers follow the
//!   previous slot's demand — the stationary-flow approximation) by a
//!   greedy proximity transport, yielding a flow plan
//!   `F[slot][supply region → demand region]`.
//! * **Online**: each batch scores every valid pair by its revenue,
//!   boosted when the pair consumes remaining blueprint flow between the
//!   driver's and the rider's regions, and matches greedily by score.
//!
//! What this faithfully preserves for the paper's comparison: POLAR is
//! prediction-aware and matching-based but ignores the *destination-side
//! queueing* of drivers — exactly the axis the queueing framework adds.

use std::collections::BTreeMap;

use mrvd_demand::SLOT_MS;
use mrvd_sim::{Assignment, BatchContext, DispatchPolicy};
use mrvd_spatial::{Grid, RegionId};

use crate::candidates::{valid_candidates_with, CandidateScratch};
use crate::oracle::DemandOracle;

/// POLAR parameters.
#[derive(Debug, Clone)]
pub struct PolarConfig {
    /// Candidate budget per rider.
    pub max_candidates: usize,
    /// Multiplicative score boost for blueprint-aligned pairs.
    pub blueprint_bonus: f64,
}

impl Default for PolarConfig {
    fn default() -> Self {
        Self {
            max_candidates: 32,
            blueprint_bonus: 0.5,
        }
    }
}

/// The POLAR policy.
pub struct Polar {
    cfg: PolarConfig,
    oracle_label: &'static str,
    /// Flow plan per slot: `(supply region, demand region) → planned flow`.
    /// Ordered map so every traversal (tests, debugging, future
    /// rebalancing passes) sees region pairs in key order, never hash
    /// order; the policy itself only ever does keyed lookups, so the
    /// switch from `HashMap` is bit-identical by construction.
    blueprint: Vec<BTreeMap<(u32, u32), f64>>,
    /// Remaining flow of the slot currently being executed.
    remaining: BTreeMap<(u32, u32), f64>,
    current_slot: Option<usize>,
    scratch: CandidateScratch,
}

impl Polar {
    /// Builds POLAR: chain-forecasts the whole day through `oracle` and
    /// computes the per-slot blueprint for a fleet of `n_drivers`.
    pub fn new(cfg: PolarConfig, oracle: &DemandOracle, grid: &Grid, n_drivers: usize) -> Self {
        let demand = oracle.full_day_forecast();
        let n = grid.num_regions();
        // Pairwise region proximity order, precomputed once: all (k, j)
        // sorted by center distance.
        let mut by_distance: Vec<(u32, u32)> = Vec::with_capacity(n * n);
        for k in 0..n as u32 {
            for j in 0..n as u32 {
                by_distance.push((k, j));
            }
        }
        let dist = |k: u32, j: u32| {
            grid.center(RegionId(k))
                .distance_m(&grid.center(RegionId(j)))
        };
        by_distance.sort_by(|&(a, b), &(c, d)| {
            dist(a, b)
                .partial_cmp(&dist(c, d))
                .expect("distances are finite")
                .then((a, b).cmp(&(c, d)))
        });

        let mut blueprint = Vec::with_capacity(demand.len());
        for slot in 0..demand.len() {
            // Supply: the fleet distributed like the previous slot's
            // demand (slot 0 uses its own demand — the fleet is seeded
            // from historical pickups).
            let supply_src = if slot == 0 {
                &demand[0]
            } else {
                &demand[slot - 1]
            };
            let total: f64 = supply_src.iter().sum();
            let mut supply: Vec<f64> = if total > 0.0 {
                supply_src
                    .iter()
                    .map(|&x| x / total * n_drivers as f64)
                    .collect()
            } else {
                vec![n_drivers as f64 / n as f64; n]
            };
            let mut need: Vec<f64> = demand[slot].clone();
            // Greedy proximity transport.
            let mut flows = BTreeMap::new();
            for &(k, j) in &by_distance {
                let f = supply[k as usize].min(need[j as usize]);
                if f > 1e-9 {
                    supply[k as usize] -= f;
                    need[j as usize] -= f;
                    flows.insert((k, j), f);
                }
            }
            blueprint.push(flows);
        }
        Self {
            cfg,
            oracle_label: oracle.label(),
            blueprint,
            remaining: BTreeMap::new(),
            current_slot: None,
            scratch: CandidateScratch::new(),
        }
    }

    fn roll_slot(&mut self, now_ms: u64) {
        let slot = ((now_ms / SLOT_MS) as usize).min(self.blueprint.len().saturating_sub(1));
        if self.current_slot != Some(slot) {
            self.current_slot = Some(slot);
            self.remaining = self.blueprint[slot].clone();
        }
    }
}

impl DispatchPolicy for Polar {
    fn name(&self) -> String {
        format!("POLAR-{}", self.oracle_label)
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        self.roll_slot(ctx.now_ms);
        let cands = valid_candidates_with(ctx, self.cfg.max_candidates, &mut self.scratch);
        // Score every valid pair.
        struct Scored {
            score: f64,
            rider: usize,
            driver: usize,
            key: (u32, u32),
        }
        let mut edges: Vec<Scored> = Vec::with_capacity(cands.num_pairs());
        for (r, list) in cands.pairs.iter().enumerate() {
            let rider = &ctx.riders[r];
            let revenue = ctx.travel.travel_time_s(rider.pickup, rider.dropoff);
            let rider_region = ctx.grid.region_of(rider.pickup).0;
            for &(d, _) in list {
                let driver_region = ctx.grid.region_of(ctx.drivers[d].pos).0;
                let key = (driver_region, rider_region);
                let aligned = self.remaining.get(&key).copied().unwrap_or(0.0) > 0.0;
                let score = revenue
                    * (1.0
                        + if aligned {
                            self.cfg.blueprint_bonus
                        } else {
                            0.0
                        });
                edges.push(Scored {
                    score,
                    rider: r,
                    driver: d,
                    key,
                });
            }
        }
        // Ties break on stable (rider id, driver id), not view slots, so
        // the greedy sweep is invariant to the live views' slot order.
        let edge_id = |e: &Scored| (ctx.riders[e.rider].id, ctx.drivers[e.driver].id);
        edges.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(edge_id(a).cmp(&edge_id(b)))
        });
        let mut rider_taken = vec![false; ctx.riders.len()];
        let mut driver_taken = vec![false; ctx.drivers.len()];
        let mut out = Vec::new();
        for e in edges {
            if rider_taken[e.rider] || driver_taken[e.driver] {
                continue;
            }
            rider_taken[e.rider] = true;
            driver_taken[e.driver] = true;
            if let Some(f) = self.remaining.get_mut(&e.key) {
                *f = (*f - 1.0).max(0.0);
            }
            out.push(Assignment {
                rider: ctx.riders[e.rider].id,
                driver: ctx.drivers[e.driver].id,
                estimated_idle_s: None,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_demand::DemandSeries;
    use mrvd_sim::{AvailableDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Point};

    fn oracle(grid: &Grid) -> DemandOracle {
        let hot = grid.region_of(Point::new(-73.985, 40.755)).idx();
        let series =
            DemandSeries::from_fn(
                1,
                48,
                grid.num_regions(),
                |_, _, r| {
                    if r == hot {
                        20.0
                    } else {
                        0.5
                    }
                },
            );
        DemandOracle::real(series, 0)
    }

    #[test]
    fn blueprint_flow_conserves_supply() {
        let grid = Grid::nyc_16x16();
        let polar = Polar::new(PolarConfig::default(), &oracle(&grid), &grid, 100);
        for (slot, flows) in polar.blueprint.iter().enumerate() {
            let total: f64 = flows.values().sum();
            assert!(
                total <= 100.0 + 1e-6,
                "slot {slot}: blueprint flow {total} exceeds the fleet"
            );
            assert!(flows.values().all(|&f| f > 0.0));
        }
    }

    #[test]
    fn assigns_valid_pairs_and_prefers_revenue() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = vec![
            WaitingRider {
                id: RiderId(0),
                pickup: Point::new(-73.985, 40.752),
                dropoff: Point::new(-73.80, 40.90), // long
                request_ms: 0,
                deadline_ms: 300_000,
            },
            WaitingRider {
                id: RiderId(1),
                pickup: Point::new(-73.985, 40.752),
                dropoff: Point::new(-73.983, 40.754), // short
                request_ms: 0,
                deadline_ms: 300_000,
            },
        ];
        let drivers = vec![AvailableDriver {
            id: DriverId(0),
            pos: Point::new(-73.985, 40.752),
            available_since_ms: 0,
        }];
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let mut polar = Polar::new(PolarConfig::default(), &oracle(&grid), &grid, 1);
        let out = polar.assign(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rider, RiderId(0), "revenue-dominant pair wins");
    }

    #[test]
    fn blueprint_flow_is_consumed() {
        let grid = Grid::nyc_16x16();
        let mut polar = Polar::new(PolarConfig::default(), &oracle(&grid), &grid, 50);
        polar.roll_slot(0);
        let before: f64 = polar.remaining.values().sum();
        // Simulate consuming one aligned pair manually.
        let key = *polar.remaining.keys().next().expect("non-empty blueprint");
        if let Some(f) = polar.remaining.get_mut(&key) {
            *f = (*f - 1.0).max(0.0);
        }
        let after: f64 = polar.remaining.values().sum();
        assert!(after < before);
        // Rolling to a new slot refreshes the budget.
        polar.roll_slot(SLOT_MS);
        assert_eq!(polar.current_slot, Some(1));
    }

    /// Transcription of the pre-BTreeMap blueprint construction, kept
    /// verbatim on `std::collections::HashMap`: the greedy transport
    /// iterates `by_distance` (a Vec), so insertion order — not map
    /// order — drives the arithmetic, and the switch of map type must
    /// be bit-identical per key.
    fn hashmap_reference_blueprint(
        oracle: &DemandOracle,
        grid: &Grid,
        n_drivers: usize,
    ) -> Vec<std::collections::HashMap<(u32, u32), f64>> {
        let demand = oracle.full_day_forecast();
        let n = grid.num_regions();
        let mut by_distance: Vec<(u32, u32)> = Vec::with_capacity(n * n);
        for k in 0..n as u32 {
            for j in 0..n as u32 {
                by_distance.push((k, j));
            }
        }
        let dist = |k: u32, j: u32| {
            grid.center(RegionId(k))
                .distance_m(&grid.center(RegionId(j)))
        };
        by_distance.sort_by(|&(a, b), &(c, d)| {
            dist(a, b)
                .partial_cmp(&dist(c, d))
                .expect("distances are finite")
                .then((a, b).cmp(&(c, d)))
        });
        let mut blueprint = Vec::with_capacity(demand.len());
        for slot in 0..demand.len() {
            let supply_src = if slot == 0 {
                &demand[0]
            } else {
                &demand[slot - 1]
            };
            let total: f64 = supply_src.iter().sum();
            let mut supply: Vec<f64> = if total > 0.0 {
                supply_src
                    .iter()
                    .map(|&x| x / total * n_drivers as f64)
                    .collect()
            } else {
                vec![n_drivers as f64 / n as f64; n]
            };
            let mut need: Vec<f64> = demand[slot].clone();
            let mut flows = std::collections::HashMap::new();
            for &(k, j) in &by_distance {
                let f = supply[k as usize].min(need[j as usize]);
                if f > 1e-9 {
                    supply[k as usize] -= f;
                    need[j as usize] -= f;
                    flows.insert((k, j), f);
                }
            }
            blueprint.push(flows);
        }
        blueprint
    }

    #[test]
    fn btreemap_blueprint_is_bit_identical_to_hashmap_reference() {
        let grid = Grid::nyc_16x16();
        let oracle = oracle(&grid);
        let polar = Polar::new(PolarConfig::default(), &oracle, &grid, 100);
        let reference = hashmap_reference_blueprint(&oracle, &grid, 100);
        assert_eq!(polar.blueprint.len(), reference.len());
        for (slot, (live, refr)) in polar.blueprint.iter().zip(&reference).enumerate() {
            assert_eq!(live.len(), refr.len(), "slot {slot}: key count differs");
            for (key, &flow) in live {
                let expected = refr
                    .get(key)
                    .unwrap_or_else(|| panic!("slot {slot}: key {key:?} missing in reference"));
                assert_eq!(
                    flow.to_bits(),
                    expected.to_bits(),
                    "slot {slot}: flow for {key:?} differs"
                );
            }
        }
    }

    #[test]
    fn name_reflects_oracle() {
        let grid = Grid::nyc_16x16();
        let polar = Polar::new(PolarConfig::default(), &oracle(&grid), &grid, 10);
        assert_eq!(polar.name(), "POLAR-R");
    }
}
