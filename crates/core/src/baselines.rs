//! The paper's §6.3 baselines: LTG, NEAR and RAND.

use mrvd_sim::{Assignment, BatchContext, DispatchPolicy};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::candidates::{valid_candidates_with, CandidateScratch};

/// Long-trip greedy: assigns the highest-revenue waiting orders first,
/// each to its nearest valid driver.
pub struct Ltg {
    /// Candidate budget per rider (as in the queueing policies).
    pub max_candidates: usize,
    scratch: CandidateScratch,
}

impl Default for Ltg {
    fn default() -> Self {
        Self {
            max_candidates: 32,
            scratch: CandidateScratch::new(),
        }
    }
}

impl DispatchPolicy for Ltg {
    fn name(&self) -> String {
        "LTG".into()
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let cands = valid_candidates_with(ctx, self.max_candidates, &mut self.scratch);
        // Riders by descending revenue (travel cost), ties broken by
        // rider id — a view-order-invariant total order.
        let mut order: Vec<usize> = (0..ctx.riders.len()).collect();
        let revenue: Vec<f64> = ctx
            .riders
            .iter()
            .map(|r| ctx.travel.travel_time_s(r.pickup, r.dropoff))
            .collect();
        order.sort_by(|&a, &b| {
            revenue[b]
                .partial_cmp(&revenue[a])
                .expect("revenue is finite")
                .then(ctx.riders[a].id.cmp(&ctx.riders[b].id))
        });
        let mut taken = vec![false; ctx.drivers.len()];
        let mut out = Vec::new();
        for r in order {
            // Candidates are sorted nearest-first.
            if let Some(&(d, _)) = cands.pairs[r].iter().find(|&&(d, _)| !taken[d]) {
                taken[d] = true;
                out.push(Assignment {
                    rider: ctx.riders[r].id,
                    driver: ctx.drivers[d].id,
                    estimated_idle_s: None,
                });
            }
        }
        out
    }
}

/// Nearest-trip greedy: repeatedly matches the globally closest valid
/// (rider, driver) pair — the classical travel-cost-minimizing dispatcher
/// the paper contrasts against (its citations \[24, 27\]).
pub struct Near {
    /// Candidate budget per rider.
    pub max_candidates: usize,
    scratch: CandidateScratch,
}

impl Default for Near {
    fn default() -> Self {
        Self {
            max_candidates: 32,
            scratch: CandidateScratch::new(),
        }
    }
}

impl DispatchPolicy for Near {
    fn name(&self) -> String {
        "NEAR".into()
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let cands = valid_candidates_with(ctx, self.max_candidates, &mut self.scratch);
        let mut edges: Vec<(u64, usize, usize)> = Vec::with_capacity(cands.num_pairs());
        for (r, list) in cands.pairs.iter().enumerate() {
            for &(d, t) in list {
                edges.push((t, r, d));
            }
        }
        // Ties break on (rider id, driver id), not batch slots, so the
        // greedy sweep is invariant to the live views' slot order.
        edges.sort_unstable_by_key(|&(t, r, d)| (t, ctx.riders[r].id, ctx.drivers[d].id));
        let mut rider_taken = vec![false; ctx.riders.len()];
        let mut driver_taken = vec![false; ctx.drivers.len()];
        let mut out = Vec::new();
        for (_, r, d) in edges {
            if rider_taken[r] || driver_taken[d] {
                continue;
            }
            rider_taken[r] = true;
            driver_taken[d] = true;
            out.push(Assignment {
                rider: ctx.riders[r].id,
                driver: ctx.drivers[d].id,
                estimated_idle_s: None,
            });
        }
        out
    }
}

/// Random valid assignment.
pub struct Rand {
    rng: StdRng,
    /// Candidate budget per rider.
    pub max_candidates: usize,
    scratch: CandidateScratch,
}

impl Rand {
    /// A seeded random dispatcher.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            max_candidates: 32,
            scratch: CandidateScratch::new(),
        }
    }
}

impl DispatchPolicy for Rand {
    fn name(&self) -> String {
        "RAND".into()
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let cands = valid_candidates_with(ctx, self.max_candidates, &mut self.scratch);
        // Shuffle rider *identities*, not view slots: starting from the
        // id-sorted slot order, the same RNG stream permutes the same
        // rider sequence whatever order the live views hold them in.
        let mut order: Vec<usize> = (0..ctx.riders.len()).collect();
        order.sort_by_key(|&r| ctx.riders[r].id);
        order.shuffle(&mut self.rng);
        let mut taken = vec![false; ctx.drivers.len()];
        let mut out = Vec::new();
        for r in order {
            let free: Vec<usize> = cands.pairs[r]
                .iter()
                .filter(|&&(d, _)| !taken[d])
                .map(|&(d, _)| d)
                .collect();
            if free.is_empty() {
                continue;
            }
            let d = free[self.rng.gen_range(0..free.len())];
            taken[d] = true;
            out.push(Assignment {
                rider: ctx.riders[r].id,
                driver: ctx.drivers[d].id,
                estimated_idle_s: None,
            });
        }
        out
    }

    /// RAND's per-rider shuffle and draw advance the RNG even on batches
    /// that assign nobody, so its output stream depends on the call
    /// count: the engine must keep invoking it every batch while riders
    /// wait, exactly like the paper's literal loop.
    fn invoke_every_batch(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_sim::{AvailableDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point};

    fn rider(id: u32, pickup: Point, dropoff: Point) -> WaitingRider {
        WaitingRider {
            id: RiderId(id),
            pickup,
            dropoff,
            request_ms: 0,
            deadline_ms: 300_000,
        }
    }

    fn driver(id: u32, pos: Point) -> AvailableDriver {
        AvailableDriver {
            id: DriverId(id),
            pos,
            available_since_ms: 0,
        }
    }

    fn fixture() -> (
        Grid,
        ConstantSpeedModel,
        Vec<WaitingRider>,
        Vec<AvailableDriver>,
    ) {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders = vec![
            // Long trip, pickup slightly farther from the drivers.
            rider(0, Point::new(-73.985, 40.752), Point::new(-73.80, 40.90)),
            // Short trip, pickup right on top of driver 0.
            rider(1, Point::new(-73.98, 40.75), Point::new(-73.975, 40.755)),
        ];
        let drivers = vec![driver(0, Point::new(-73.98, 40.75))];
        (grid, travel, riders, drivers)
    }

    #[test]
    fn ltg_takes_the_expensive_order() {
        let (grid, travel, riders, drivers) = fixture();
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let out = Ltg::default().assign(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rider, RiderId(0));
    }

    #[test]
    fn near_takes_the_closest_order() {
        let (grid, travel, riders, drivers) = fixture();
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let out = Near::default().assign(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rider, RiderId(1));
    }

    #[test]
    fn rand_is_valid_and_seed_deterministic() {
        let (grid, travel, riders, drivers) = fixture();
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let a = Rand::new(7).assign(&ctx);
        let b = Rand::new(7).assign(&ctx);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rider, b[0].rider);
        // The assignment must be one of the valid pairs.
        assert!(ctx.is_valid_pair(
            &riders[a[0].rider.0 as usize],
            &drivers[a[0].driver.0 as usize]
        ));
    }

    #[test]
    fn all_baselines_respect_one_driver_one_rider() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let riders: Vec<WaitingRider> = (0..6)
            .map(|i| {
                rider(
                    i,
                    Point::new(-73.98 + 0.001 * i as f64, 40.75),
                    Point::new(-73.90, 40.80),
                )
            })
            .collect();
        let drivers: Vec<AvailableDriver> = (0..3)
            .map(|i| driver(i, Point::new(-73.979, 40.751)))
            .collect();
        let ctx = BatchContext {
            now_ms: 0,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        for out in [
            Ltg::default().assign(&ctx),
            Near::default().assign(&ctx),
            Rand::new(3).assign(&ctx),
        ] {
            assert_eq!(out.len(), 3, "all drivers should be used");
            let mut riders_used: Vec<u32> = out.iter().map(|a| a.rider.0).collect();
            let mut drivers_used: Vec<u32> = out.iter().map(|a| a.driver.0).collect();
            riders_used.sort_unstable();
            riders_used.dedup();
            drivers_used.sort_unstable();
            drivers_used.dedup();
            assert_eq!(riders_used.len(), 3);
            assert_eq!(drivers_used.len(), 3);
        }
    }
}
