//! Incremental, lazy per-region rate estimation for the dispatch hot
//! path.
//!
//! [`estimate_rates`](crate::rates::estimate_rates) rebuilds every
//! per-region count from full rider/driver/busy scans and then solves the
//! reneging queue for *every* region, every executed batch — even when one
//! rider is waiting and a single destination region matters. The
//! [`RateTracker`] replaces that on the hot path:
//!
//! * **Counts** come from the engine's live
//!   [`mrvd_sim::RegionCounts`] ([`mrvd_sim::BatchContext::region_counts`])
//!   when present — no scans; the rejoining-in-window count is two binary
//!   searches per region over the engine's rejoin-time multisets. Without
//!   live counts (hand-built contexts, the legacy reference loop) the
//!   tracker falls back to the same scans as the reference estimator,
//!   into buffers reused across batches.
//! * **λ/μ/K** are derived through the shared [`region_rates`] formula,
//!   so both paths are bit-identical to the reference by construction.
//! * **Expected idle times** (the per-region queueing solve, Eqs.
//!   10/13/16) are computed *lazily*: only for regions a policy actually
//!   asks about — destinations of current candidate pairs plus regions
//!   touched by the greedy/local-search μ-bumps — with an epoch stamp
//!   invalidating the cache between batches.
//!
//! `estimate_rates` itself is kept verbatim as the reference path for
//! differential testing (the same pattern as
//! `RegionIndex::rebuild_reference` / `Simulator::run_scheduled_reference`);
//! [`RateTracker::load_reference`] lets a policy run the reference
//! estimator end-to-end while sharing the greedy machinery.

use mrvd_sim::{BatchContext, RegionCounts};
use mrvd_spatial::RegionId;

use crate::config::DispatchConfig;
use crate::rates::{et_for, region_rates, RegionEstimates};

/// Lifetime counters of a [`RateTracker`], for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateTrackerStats {
    /// Batches prepared ([`RateTracker::begin_batch`] +
    /// [`RateTracker::load_reference`] calls).
    pub batches: u64,
    /// Batches whose counts came from the engine's live
    /// [`mrvd_sim::RegionCounts`] instead of view scans.
    pub live_batches: u64,
    /// Expected-idle-time solves performed (lazy evaluations plus
    /// μ-bump recomputations; eager reference loads count one solve per
    /// region).
    pub ets_computed: u64,
}

/// Incremental per-region rate state, owned by a policy and reused
/// across batches (no per-batch allocations). See the module docs.
#[derive(Debug, Default)]
pub struct RateTracker {
    waiting: Vec<u32>,
    available: Vec<u32>,
    rejoining: Vec<u32>,
    lambda: Vec<f64>,
    mu: Vec<f64>,
    capacity_k: Vec<u64>,
    et: Vec<f64>,
    /// `et[k]` is valid for the current batch iff `et_epoch[k] == epoch`.
    et_epoch: Vec<u64>,
    epoch: u64,
    /// Regions the last *sparse* batch set away from the all-zero
    /// baseline — exactly the entries the next sparse batch re-zeroes.
    touched: Vec<u32>,
    /// Set when a dense fill (reference load, scan fallback, resize)
    /// left entries outside `touched` non-baseline; the next sparse
    /// batch then does one full reset before going incremental.
    dense_dirty: bool,
    batches: u64,
    live_batches: u64,
    ets_computed: u64,
}

impl RateTracker {
    /// An empty tracker; the first batch sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    fn resize(&mut self, n: usize) {
        if self.waiting.len() != n {
            self.waiting.resize(n, 0);
            self.available.resize(n, 0);
            self.rejoining.resize(n, 0);
            self.lambda.resize(n, 0.0);
            self.mu.resize(n, 0.0);
            self.capacity_k.resize(n, 0);
            self.et.resize(n, 0.0);
            self.et_epoch.resize(n, 0);
            // Surviving entries of the old size may be non-baseline.
            self.dense_dirty = true;
        }
        // A new epoch lazily invalidates every cached idle time.
        self.epoch += 1;
        self.batches += 1;
    }

    /// Prepares the tracker for one batch: per-region counts (live or
    /// scanned) and λ/μ/K for every region; expected idle times stay
    /// unevaluated until [`RateTracker::et`] asks for them.
    ///
    /// `upcoming[k]` is the oracle's `|R̂_k|` for `[now, now + t_c)`.
    ///
    /// # Panics
    /// Panics if `upcoming` does not cover the grid's regions.
    pub fn begin_batch(&mut self, ctx: &BatchContext<'_>, upcoming: &[f64], cfg: &DispatchConfig) {
        let n = ctx.grid.num_regions();
        assert_eq!(
            upcoming.len(),
            n,
            "RateTracker::begin_batch: oracle regions != grid regions"
        );
        self.resize(n);
        let window_end = ctx.now_ms + cfg.tc_ms;
        // The live path requires counts consistent with the batch views —
        // the contract `BatchContext::region_counts` documents and the
        // engine maintains. The cheap totals check below catches grossly
        // stale hand-built counts and falls back to the scans; per-region
        // *placement* is not re-validated (that would reintroduce the
        // very scans this path removes), so counts with matching totals
        // but wrong regions are the provider's bug, like a misplaced
        // `avail_index`.
        let live = ctx.region_counts.filter(|rc| {
            rc.num_regions() == n
                && rc.totals() == (ctx.riders.len(), ctx.drivers.len(), ctx.busy.len())
        });
        if let Some(rc) = live {
            self.live_batches += 1;
            self.waiting.copy_from_slice(rc.waiting());
            self.available.copy_from_slice(rc.available());
            for (k, r) in self.rejoining.iter_mut().enumerate() {
                *r = rc.rejoining_between(RegionId(k as u32), ctx.now_ms, window_end);
            }
        } else {
            self.waiting.fill(0);
            self.available.fill(0);
            self.rejoining.fill(0);
            for r in ctx.riders {
                self.waiting[ctx.grid.region_of(r.pickup).idx()] += 1;
            }
            for d in ctx.drivers {
                self.available[ctx.grid.region_of(d.pos).idx()] += 1;
            }
            for b in ctx.busy {
                if b.dropoff_ms > ctx.now_ms && b.dropoff_ms < window_end {
                    self.rejoining[ctx.grid.region_of(b.dropoff_pos).idx()] += 1;
                }
            }
        }
        let tc_s = cfg.tc_s();
        for (k, &up) in upcoming.iter().enumerate() {
            let (l, m, c) = region_rates(
                self.waiting[k],
                self.available[k],
                self.rejoining[k],
                up,
                tc_s,
            );
            self.lambda[k] = l;
            self.mu[k] = m;
            self.capacity_k[k] = c;
        }
        // Every region was written — the next sparse batch must reset
        // densely rather than trust its touched list.
        self.dense_dirty = true;
    }

    /// The sparse counterpart of [`RateTracker::begin_batch`] for the
    /// city-scale hot path: instead of writing all `num_regions` entries
    /// it resets only the regions the previous sparse batch touched and
    /// fills only the union of the engine's
    /// [`RegionCounts::occupied_regions`] (a superset of every region
    /// with a waiting rider, available driver or pending rejoin) and
    /// `upcoming_active` (the oracle regions with nonzero window
    /// demand, e.g. [`crate::oracle::SparseUpcoming::active`]). Every
    /// other region keeps the exact `(0, 0, 0, +0.0, +0.0, K=0)`
    /// baseline — bit-identical to what the dense loop computes for it,
    /// since [`region_rates`] of all-zero inputs is the baseline.
    ///
    /// Without consistent live counts this falls back to the dense scan
    /// path (there is no occupied list to go sparse with).
    ///
    /// # Panics
    /// Panics if `upcoming` does not cover the grid's regions.
    pub fn begin_batch_sparse(
        &mut self,
        ctx: &BatchContext<'_>,
        upcoming: &[f64],
        upcoming_active: &[u32],
        cfg: &DispatchConfig,
    ) {
        let n = ctx.grid.num_regions();
        let live_ok = ctx.region_counts.is_some_and(|rc| {
            rc.num_regions() == n
                && rc.totals() == (ctx.riders.len(), ctx.drivers.len(), ctx.busy.len())
        });
        if !live_ok {
            self.begin_batch(ctx, upcoming, cfg);
            return;
        }
        assert_eq!(
            upcoming.len(),
            n,
            "RateTracker::begin_batch_sparse: oracle regions != grid regions"
        );
        self.resize(n);
        self.live_batches += 1;
        let rc = ctx.region_counts.expect("live_ok checked above");
        if self.dense_dirty {
            self.waiting.fill(0);
            self.available.fill(0);
            self.rejoining.fill(0);
            self.lambda.fill(0.0);
            self.mu.fill(0.0);
            self.capacity_k.fill(0);
            self.touched.clear();
            self.dense_dirty = false;
        } else {
            let mut touched = std::mem::take(&mut self.touched);
            for &k in &touched {
                let k = k as usize;
                self.waiting[k] = 0;
                self.available[k] = 0;
                self.rejoining[k] = 0;
                self.lambda[k] = 0.0;
                self.mu[k] = 0.0;
                self.capacity_k[k] = 0;
            }
            touched.clear();
            self.touched = touched;
        }
        let window_end = ctx.now_ms + cfg.tc_ms;
        let tc_s = cfg.tc_s();
        // Duplicates between the two lists (and inside the occupied
        // superset) are harmless: every write is an idempotent set.
        for &r in rc.occupied_regions() {
            let k = r.idx();
            self.fill_region(rc, k, ctx.now_ms, window_end, upcoming[k], tc_s);
        }
        for &r in upcoming_active {
            let k = r as usize;
            self.fill_region(rc, k, ctx.now_ms, window_end, upcoming[k], tc_s);
        }
    }

    /// One region of the sparse fill: live counts → λ/μ/K via the shared
    /// formula, and a `touched` entry so the next sparse batch resets it.
    fn fill_region(
        &mut self,
        rc: &RegionCounts,
        k: usize,
        now_ms: u64,
        window_end: u64,
        upcoming_k: f64,
        tc_s: f64,
    ) {
        self.waiting[k] = rc.waiting()[k];
        self.available[k] = rc.available()[k];
        self.rejoining[k] = rc.rejoining_between(RegionId(k as u32), now_ms, window_end);
        let (l, m, c) = region_rates(
            self.waiting[k],
            self.available[k],
            self.rejoining[k],
            upcoming_k,
            tc_s,
        );
        self.lambda[k] = l;
        self.mu[k] = m;
        self.capacity_k[k] = c;
        self.touched.push(k as u32);
    }

    /// Loads the *eager reference* estimates for one batch — the output
    /// of the verbatim [`estimate_rates`](crate::rates::estimate_rates) /
    /// [`RegionEstimates::expected_idle_times`] pair — so a policy can
    /// run the reference rate path through the same greedy machinery
    /// (differential testing; `DispatchConfig::reference_rates`).
    pub fn load_reference(&mut self, est: &RegionEstimates, ets: &[f64]) {
        let n = est.lambda.len();
        assert_eq!(ets.len(), n, "RateTracker::load_reference: length mismatch");
        self.resize(n);
        self.waiting.copy_from_slice(&est.waiting);
        self.available.copy_from_slice(&est.available);
        self.rejoining.copy_from_slice(&est.rejoining);
        self.lambda.copy_from_slice(&est.lambda);
        self.mu.copy_from_slice(&est.mu);
        self.capacity_k.copy_from_slice(&est.capacity_k);
        self.et.copy_from_slice(ets);
        self.et_epoch.fill(self.epoch);
        self.ets_computed += n as u64;
        self.dense_dirty = true;
    }

    /// The expected idle time of region `k` for the current batch,
    /// computed (and cached) on first access — Eqs. 10/13/16, with the
    /// infinite case clamped to `t_c` and the uniform-ET ablation mapped
    /// to the constant `t_c / 2`, exactly as
    /// [`RegionEstimates::expected_idle_times`].
    pub fn et(&mut self, k: usize, cfg: &DispatchConfig) -> f64 {
        let tc_s = cfg.tc_s();
        if cfg.uniform_et {
            return tc_s / 2.0;
        }
        if self.et_epoch[k] != self.epoch {
            self.et[k] = et_for(
                self.lambda[k],
                self.mu[k],
                self.capacity_k[k],
                cfg.beta,
                tc_s,
            );
            self.et_epoch[k] = self.epoch;
            self.ets_computed += 1;
        }
        self.et[k]
    }

    /// Algorithm 2, line 11: one future rejoin moves into region `k` —
    /// bump μ and the cap, and refresh the idle time the next selection
    /// will read (unless the ablation silences it).
    pub fn bump_mu(&mut self, k: usize, cfg: &DispatchConfig) {
        let tc_s = cfg.tc_s();
        self.mu[k] += 1.0 / tc_s;
        self.capacity_k[k] += 1;
        if !cfg.uniform_et {
            self.et[k] = et_for(
                self.lambda[k],
                self.mu[k],
                self.capacity_k[k],
                cfg.beta,
                tc_s,
            );
            self.et_epoch[k] = self.epoch;
            self.ets_computed += 1;
        }
    }

    /// Reverts one [`RateTracker::bump_mu`] on region `k` (a local-search
    /// swap moving the rejoin elsewhere).
    pub fn unbump_mu(&mut self, k: usize, cfg: &DispatchConfig) {
        let tc_s = cfg.tc_s();
        self.mu[k] -= 1.0 / tc_s;
        self.capacity_k[k] = self.capacity_k[k].saturating_sub(1);
        if !cfg.uniform_et {
            self.et[k] = et_for(
                self.lambda[k],
                self.mu[k],
                self.capacity_k[k],
                cfg.beta,
                tc_s,
            );
            self.et_epoch[k] = self.epoch;
            self.ets_computed += 1;
        }
    }

    /// Waiting riders `|R_k|` of the current batch.
    pub fn waiting(&self) -> &[u32] {
        &self.waiting
    }

    /// Available drivers `|D_k|` of the current batch.
    pub fn available(&self) -> &[u32] {
        &self.available
    }

    /// Rejoining-in-window drivers `|D̂_k|` of the current batch.
    pub fn rejoining(&self) -> &[u32] {
        &self.rejoining
    }

    /// λ(k) of the current batch (Eq. 18).
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// μ(k) of the current batch (Eq. 19), including any bumps applied.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// The congestion cap `K` per region, including any bumps applied.
    pub fn capacity_k(&self) -> &[u64] {
        &self.capacity_k
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RateTrackerStats {
        RateTrackerStats {
            batches: self.batches,
            live_batches: self.live_batches,
            ets_computed: self.ets_computed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::estimate_rates;
    use mrvd_sim::{AvailableDriver, BusyDriver, DriverId, RegionCounts, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point};

    const P: Point = Point::new(-73.985, 40.755);
    const Q: Point = Point::new(-73.80, 40.90);

    fn rider(p: Point) -> WaitingRider {
        WaitingRider {
            id: RiderId(0),
            pickup: p,
            dropoff: p,
            request_ms: 0,
            deadline_ms: 600_000,
        }
    }

    fn driver(p: Point) -> AvailableDriver {
        AvailableDriver {
            id: DriverId(0),
            pos: p,
            available_since_ms: 0,
        }
    }

    fn busy(dropoff_ms: u64, p: Point) -> BusyDriver {
        BusyDriver {
            id: DriverId(9),
            dropoff_ms,
            dropoff_pos: p,
        }
    }

    /// Live counts mirroring the given views, as the engine would hold.
    fn counts_for(
        grid: &Grid,
        riders: &[WaitingRider],
        drivers: &[AvailableDriver],
        busys: &[BusyDriver],
    ) -> RegionCounts {
        let mut c = RegionCounts::new(grid.num_regions());
        for r in riders {
            c.add_waiting(grid.region_of(r.pickup));
        }
        for d in drivers {
            c.add_available(grid.region_of(d.pos));
        }
        for b in busys {
            c.add_rejoining(grid.region_of(b.dropoff_pos), b.dropoff_ms);
        }
        c
    }

    fn ctx<'a>(
        grid: &'a Grid,
        travel: &'a ConstantSpeedModel,
        riders: &'a [WaitingRider],
        drivers: &'a [AvailableDriver],
        busys: &'a [BusyDriver],
        counts: Option<&'a RegionCounts>,
    ) -> BatchContext<'a> {
        BatchContext {
            now_ms: 0,
            riders,
            drivers,
            busy: busys,
            travel,
            grid,
            avail_index: None,
            region_counts: counts,
            views: None,
        }
    }

    #[test]
    fn live_and_scan_paths_match_the_reference_estimator() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P), rider(P), rider(Q)];
        let drivers = [driver(P), driver(Q), driver(Q)];
        let busys = [busy(100_000, P), busy(2_000_000, Q), busy(5_000, Q)];
        let counts = counts_for(&grid, &riders, &drivers, &busys);
        let mut upcoming = vec![0.0; grid.num_regions()];
        upcoming[grid.region_of(P).idx()] = 12.0;

        let live_ctx = ctx(&grid, &travel, &riders, &drivers, &busys, Some(&counts));
        let scan_ctx = ctx(&grid, &travel, &riders, &drivers, &busys, None);
        let est = estimate_rates(&scan_ctx, &upcoming, &cfg);
        let ets = est.expected_idle_times(&cfg);

        for c in [&live_ctx, &scan_ctx] {
            let mut t = RateTracker::new();
            t.begin_batch(c, &upcoming, &cfg);
            assert_eq!(t.waiting(), &est.waiting[..]);
            assert_eq!(t.available(), &est.available[..]);
            assert_eq!(t.rejoining(), &est.rejoining[..]);
            for (k, et_eager) in ets.iter().enumerate() {
                assert_eq!(t.lambda()[k].to_bits(), est.lambda[k].to_bits());
                assert_eq!(t.mu()[k].to_bits(), est.mu[k].to_bits());
                assert_eq!(t.capacity_k()[k], est.capacity_k[k]);
                assert_eq!(t.et(k, &cfg).to_bits(), et_eager.to_bits(), "region {k}");
            }
        }
        let mut t = RateTracker::new();
        t.begin_batch(&live_ctx, &upcoming, &cfg);
        assert_eq!(t.stats().live_batches, 1);
        let mut t = RateTracker::new();
        t.begin_batch(&scan_ctx, &upcoming, &cfg);
        assert_eq!(t.stats().live_batches, 0);
    }

    #[test]
    fn et_is_lazy_and_cached_within_a_batch() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P)];
        let upcoming = vec![3.0; grid.num_regions()];
        let c = ctx(&grid, &travel, &riders, &[], &[], None);
        let mut t = RateTracker::new();
        t.begin_batch(&c, &upcoming, &cfg);
        assert_eq!(t.stats().ets_computed, 0, "nothing evaluated yet");
        let k = grid.region_of(P).idx();
        let a = t.et(k, &cfg);
        assert_eq!(t.stats().ets_computed, 1);
        let b = t.et(k, &cfg);
        assert_eq!(t.stats().ets_computed, 1, "second read hits the cache");
        assert_eq!(a.to_bits(), b.to_bits());
        // A new batch invalidates the cache lazily.
        t.begin_batch(&c, &upcoming, &cfg);
        t.et(k, &cfg);
        assert_eq!(t.stats().ets_computed, 2);
    }

    #[test]
    fn bump_and_unbump_round_trip_matches_fresh_solve() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P), rider(P)];
        let drivers = [driver(P)];
        let mut upcoming = vec![0.0; grid.num_regions()];
        let k = grid.region_of(P).idx();
        upcoming[k] = 6.0;
        let c = ctx(&grid, &travel, &riders, &drivers, &[], None);
        let mut t = RateTracker::new();
        t.begin_batch(&c, &upcoming, &cfg);
        let tc_s = cfg.tc_s();
        t.bump_mu(k, &cfg);
        let bumped = t.et(k, &cfg);
        let expect = et_for(t.lambda()[k], t.mu()[k], t.capacity_k()[k], cfg.beta, tc_s);
        assert_eq!(bumped.to_bits(), expect.to_bits());
        t.unbump_mu(k, &cfg);
        assert_eq!(t.capacity_k()[k], 1);
    }

    /// The active list of a dense upcoming buffer: every region whose
    /// value carries a nonzero bit pattern (what `SparseUpcoming` hands
    /// the policy on the hot path).
    fn active_of(upcoming: &[f64]) -> Vec<u32> {
        upcoming
            .iter()
            .enumerate()
            .filter(|(_, v)| v.to_bits() != 0)
            .map(|(k, _)| k as u32)
            .collect()
    }

    fn assert_tracker_matches(t: &mut RateTracker, est: &RegionEstimates, cfg: &DispatchConfig) {
        let ets = est.expected_idle_times(cfg);
        assert_eq!(t.waiting(), &est.waiting[..]);
        assert_eq!(t.available(), &est.available[..]);
        assert_eq!(t.rejoining(), &est.rejoining[..]);
        for (k, et) in ets.iter().enumerate() {
            assert_eq!(t.lambda()[k].to_bits(), est.lambda[k].to_bits(), "λ[{k}]");
            assert_eq!(t.mu()[k].to_bits(), est.mu[k].to_bits(), "μ[{k}]");
            assert_eq!(t.capacity_k()[k], est.capacity_k[k], "K[{k}]");
            assert_eq!(t.et(k, cfg).to_bits(), et.to_bits(), "ET[{k}]");
        }
    }

    #[test]
    fn sparse_live_path_matches_the_dense_reference() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P), rider(P), rider(Q)];
        let drivers = [driver(P), driver(Q), driver(Q)];
        let busys = [busy(100_000, P), busy(2_000_000, Q), busy(5_000, Q)];
        let counts = counts_for(&grid, &riders, &drivers, &busys);
        let mut upcoming = vec![0.0; grid.num_regions()];
        upcoming[grid.region_of(P).idx()] = 12.0;
        // A region with demand but no riders/drivers: only the active
        // list can reach it.
        upcoming[7] = 3.5;

        let live_ctx = ctx(&grid, &travel, &riders, &drivers, &busys, Some(&counts));
        let scan_ctx = ctx(&grid, &travel, &riders, &drivers, &busys, None);
        let est = estimate_rates(&scan_ctx, &upcoming, &cfg);

        let mut t = RateTracker::new();
        t.begin_batch_sparse(&live_ctx, &upcoming, &active_of(&upcoming), &cfg);
        assert_tracker_matches(&mut t, &est, &cfg);
        assert_eq!(t.stats().live_batches, 1);

        // A second sparse batch over the same world exercises the
        // touched-list reset instead of the first batch's dense reset.
        t.begin_batch_sparse(&live_ctx, &upcoming, &active_of(&upcoming), &cfg);
        assert_tracker_matches(&mut t, &est, &cfg);
        assert_eq!(t.stats().live_batches, 2);
    }

    #[test]
    fn sparse_batches_reset_regions_that_empty_out() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        // World A occupies P and Q; world B empties Q entirely and has
        // zero demand — every world-A region must fall back to baseline.
        let riders_a = [rider(P), rider(Q)];
        let drivers_a = [driver(Q)];
        let busys_a = [busy(100_000, Q)];
        let counts_a = counts_for(&grid, &riders_a, &drivers_a, &busys_a);
        let mut upcoming_a = vec![0.0; grid.num_regions()];
        upcoming_a[grid.region_of(Q).idx()] = 9.0;
        let ctx_a = ctx(
            &grid,
            &travel,
            &riders_a,
            &drivers_a,
            &busys_a,
            Some(&counts_a),
        );

        let riders_b = [rider(P)];
        let counts_b = counts_for(&grid, &riders_b, &[], &[]);
        let upcoming_b = vec![0.0; grid.num_regions()];
        let ctx_b = ctx(&grid, &travel, &riders_b, &[], &[], Some(&counts_b));

        let mut t = RateTracker::new();
        t.begin_batch_sparse(&ctx_a, &upcoming_a, &active_of(&upcoming_a), &cfg);
        t.begin_batch_sparse(&ctx_b, &upcoming_b, &active_of(&upcoming_b), &cfg);
        let est_b = estimate_rates(&ctx_b, &upcoming_b, &cfg);
        assert_tracker_matches(&mut t, &est_b, &cfg);
        let q = grid.region_of(Q).idx();
        assert_eq!(t.lambda()[q].to_bits(), 0.0f64.to_bits(), "Q is baseline");
    }

    #[test]
    fn sparse_recovers_from_dense_fills() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P)];
        let drivers = [driver(Q)];
        let counts = counts_for(&grid, &riders, &drivers, &[]);
        // Dense demand everywhere, then sparse demand: the dense fill
        // leaves non-baseline entries in every region, which the next
        // sparse batch must wipe before going incremental.
        let dense_up = vec![2.0; grid.num_regions()];
        let sparse_up = vec![0.0; grid.num_regions()];
        let live = ctx(&grid, &travel, &riders, &drivers, &[], Some(&counts));

        let mut t = RateTracker::new();
        t.begin_batch(&live, &dense_up, &cfg);
        t.begin_batch_sparse(&live, &sparse_up, &active_of(&sparse_up), &cfg);
        let est = estimate_rates(&live, &sparse_up, &cfg);
        assert_tracker_matches(&mut t, &est, &cfg);

        // Same story after a reference load.
        let est_dense = estimate_rates(&live, &dense_up, &cfg);
        let ets_dense = est_dense.expected_idle_times(&cfg);
        t.load_reference(&est_dense, &ets_dense);
        t.begin_batch_sparse(&live, &sparse_up, &active_of(&sparse_up), &cfg);
        let est = estimate_rates(&live, &sparse_up, &cfg);
        assert_tracker_matches(&mut t, &est, &cfg);
    }

    #[test]
    fn sparse_without_live_counts_falls_back_to_scans() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P)];
        let drivers = [driver(Q)];
        let upcoming = vec![0.0; grid.num_regions()];
        let c = ctx(&grid, &travel, &riders, &drivers, &[], None);
        let mut t = RateTracker::new();
        t.begin_batch_sparse(&c, &upcoming, &active_of(&upcoming), &cfg);
        assert_eq!(t.stats().live_batches, 0);
        let est = estimate_rates(&c, &upcoming, &cfg);
        assert_tracker_matches(&mut t, &est, &cfg);
    }

    #[test]
    fn inconsistent_live_counts_fall_back_to_scans() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig::default();
        let riders = [rider(P)];
        let drivers = [driver(P), driver(Q)];
        // Counts describing a different world (one driver missing).
        let stale = counts_for(&grid, &riders, &drivers[..1], &[]);
        let upcoming = vec![0.0; grid.num_regions()];
        let c = ctx(&grid, &travel, &riders, &drivers, &[], Some(&stale));
        let mut t = RateTracker::new();
        t.begin_batch(&c, &upcoming, &cfg);
        assert_eq!(t.stats().live_batches, 0, "stale counts must be ignored");
        assert_eq!(t.available()[grid.region_of(Q).idx()], 1);
    }

    #[test]
    fn uniform_et_ablation_is_flat_and_free() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let cfg = DispatchConfig {
            uniform_et: true,
            ..DispatchConfig::default()
        };
        let riders = [rider(P)];
        let upcoming = vec![40.0; grid.num_regions()];
        let c = ctx(&grid, &travel, &riders, &[], &[], None);
        let mut t = RateTracker::new();
        t.begin_batch(&c, &upcoming, &cfg);
        assert_eq!(t.et(3, &cfg), cfg.tc_s() / 2.0);
        t.bump_mu(3, &cfg);
        assert_eq!(t.et(3, &cfg), cfg.tc_s() / 2.0);
        assert_eq!(t.stats().ets_computed, 0, "the ablation never solves");
    }
}
