//! UPPER — the revenue upper bound of §6.3: per batch, serve the most
//! expensive waiting orders with idle drivers, *ignoring pickup
//! distances*. The simulator grants this policy teleporting pickups
//! ([`DispatchPolicy::teleports_pickup`]), so the bound dominates every
//! real policy's revenue.

use mrvd_sim::{Assignment, BatchContext, DispatchPolicy};

/// The UPPER bound pseudo-policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Upper;

impl DispatchPolicy for Upper {
    fn name(&self) -> String {
        "UPPER".into()
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let k = ctx.riders.len().min(ctx.drivers.len());
        if k == 0 {
            return Vec::new();
        }
        // Top-k riders by revenue; drivers are interchangeable here. Both
        // ranks break ties by stable id, so the pairing is invariant to
        // the live views' slot order.
        let mut order: Vec<usize> = (0..ctx.riders.len()).collect();
        let revenue: Vec<f64> = ctx
            .riders
            .iter()
            .map(|r| ctx.travel.travel_time_s(r.pickup, r.dropoff))
            .collect();
        order.sort_by(|&a, &b| {
            revenue[b]
                .partial_cmp(&revenue[a])
                .expect("revenue is finite")
                .then(ctx.riders[a].id.cmp(&ctx.riders[b].id))
        });
        let mut dorder: Vec<usize> = (0..ctx.drivers.len()).collect();
        dorder.sort_by_key(|&d| ctx.drivers[d].id);
        order
            .into_iter()
            .take(k)
            .zip(dorder)
            .map(|(r, d)| Assignment {
                rider: ctx.riders[r].id,
                driver: ctx.drivers[d].id,
                estimated_idle_s: None,
            })
            .collect()
    }

    fn teleports_pickup(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_sim::{AvailableDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point};

    #[test]
    fn takes_the_most_expensive_orders() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let mk = |id: u32, lon_off: f64| WaitingRider {
            id: RiderId(id),
            pickup: Point::new(-73.98, 40.75),
            dropoff: Point::new(-73.98 + lon_off, 40.75),
            request_ms: 0,
            deadline_ms: 10_000,
        };
        // Rider 1 has the longest trip, rider 2 the second longest.
        let riders = [mk(0, 0.01), mk(1, 0.20), mk(2, 0.05)];
        let drivers = [
            // Far away — irrelevant for UPPER.
            AvailableDriver {
                id: DriverId(0),
                pos: Point::new(-74.03, 40.58),
                available_since_ms: 0,
            },
            AvailableDriver {
                id: DriverId(1),
                pos: Point::new(-74.03, 40.92),
                available_since_ms: 0,
            },
        ];
        let ctx = BatchContext {
            now_ms: 9_000,
            riders: &riders,
            drivers: &drivers,
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        let out = Upper.assign(&ctx);
        assert_eq!(out.len(), 2);
        let chosen: Vec<u32> = out.iter().map(|a| a.rider.0).collect();
        assert!(chosen.contains(&1) && chosen.contains(&2));
        assert!(Upper.teleports_pickup());
    }
}
