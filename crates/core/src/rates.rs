//! Per-region arrival-rate estimation (Eqs. 18–19) and the expected-idle-
//! time table that drives the idle ratio (Eq. 17).

use mrvd_queueing::{expected_idle_time, QueueParams, Reneging};
use mrvd_sim::BatchContext;

use crate::config::DispatchConfig;

/// Per-region state estimated at the top of a batch (Algorithm 1,
/// lines 3–6, and Algorithm 2, line 6).
#[derive(Debug, Clone)]
pub struct RegionEstimates {
    /// Waiting riders `|R_k|` in each region.
    pub waiting: Vec<u32>,
    /// Available drivers `|D_k|`.
    pub available: Vec<u32>,
    /// Busy drivers rejoining in the window `|D̂_k|`.
    pub rejoining: Vec<u32>,
    /// Rider arrival rate λ(k), per second (Eq. 18).
    pub lambda: Vec<f64>,
    /// Driver rejoin rate μ(k), per second (Eq. 19).
    pub mu: Vec<f64>,
    /// Driver-side congestion cap `K` per region (available + rejoining).
    pub capacity_k: Vec<u64>,
}

/// Estimates all per-region rates for the current batch.
///
/// `upcoming_riders[k]` is the oracle's `|R̂_k|` for the window
/// `[now, now + t_c)`; waiting/available/rejoining are counted from the
/// batch context.
pub fn estimate_rates(
    ctx: &BatchContext<'_>,
    upcoming_riders: &[f64],
    cfg: &DispatchConfig,
) -> RegionEstimates {
    let n = ctx.grid.num_regions();
    assert_eq!(
        upcoming_riders.len(),
        n,
        "estimate_rates: oracle regions != grid regions"
    );
    let tc_s = cfg.tc_s();
    let mut waiting = vec![0u32; n];
    let mut available = vec![0u32; n];
    let mut rejoining = vec![0u32; n];
    for r in ctx.riders {
        waiting[ctx.grid.region_of(r.pickup).idx()] += 1;
    }
    for d in ctx.drivers {
        available[ctx.grid.region_of(d.pos).idx()] += 1;
    }
    let window_end = ctx.now_ms + cfg.tc_ms;
    for b in ctx.busy {
        // Strictly inside the open window (now, now + t_c): a driver
        // dropping off exactly at `now` has already been moved to the
        // available set by the engine and must not be counted twice in
        // `capacity_k`/μ, and one dropping off exactly at the window end
        // rejoins only once the window has closed.
        if b.dropoff_ms > ctx.now_ms && b.dropoff_ms < window_end {
            rejoining[ctx.grid.region_of(b.dropoff_pos).idx()] += 1;
        }
    }
    let mut lambda = vec![0.0; n];
    let mut mu = vec![0.0; n];
    let mut capacity_k = vec![0u64; n];
    for k in 0..n {
        let (l, m, c) = region_rates(
            waiting[k],
            available[k],
            rejoining[k],
            upcoming_riders[k],
            tc_s,
        );
        lambda[k] = l;
        mu[k] = m;
        capacity_k[k] = c;
    }
    RegionEstimates {
        waiting,
        available,
        rejoining,
        lambda,
        mu,
        capacity_k,
    }
}

impl RegionEstimates {
    /// Computes the expected idle time (seconds) for every region from
    /// the current rate estimates (Eqs. 10/13/16). Infinite values (a
    /// region where no riders are expected) are clamped to `t_c` — the
    /// driver will be re-evaluated next window. With `cfg.uniform_et`
    /// every region gets the constant `t_c / 2` (the E13 ablation).
    pub fn expected_idle_times(&self, cfg: &DispatchConfig) -> Vec<f64> {
        let tc_s = cfg.tc_s();
        if cfg.uniform_et {
            return vec![tc_s / 2.0; self.lambda.len()];
        }
        self.lambda
            .iter()
            .zip(&self.mu)
            .zip(&self.capacity_k)
            .map(|((&l, &m), &k)| et_for(l, m, k, cfg.beta, tc_s))
            .collect()
    }
}

/// λ(k), μ(k) and the congestion cap `K` for one region from its counts
/// (Eqs. 18–19) — one shared implementation, so the eager reference
/// estimator above and the incremental [`crate::RateTracker`] are
/// bit-identical by construction.
#[inline]
pub fn region_rates(
    waiting: u32,
    available: u32,
    rejoining: u32,
    upcoming: f64,
    tc_s: f64,
) -> (f64, f64, u64) {
    let (r_k, d_k) = (waiting as f64, available as f64);
    let r_hat = upcoming.max(0.0);
    let d_hat = rejoining as f64;
    // Eq. 18: the backlog joins the arrival stream when riders exceed
    // drivers; Eq. 19: the driver surplus joins the rejoin stream
    // otherwise.
    let (lambda, mu) = if r_k <= d_k {
        (r_hat / tc_s, (d_hat + d_k - r_k) / tc_s)
    } else {
        ((r_hat + r_k - d_k) / tc_s, d_hat / tc_s)
    };
    (lambda, mu, (available + rejoining) as u64)
}

/// Expected idle time for one region; shared by the batch-level table and
/// the incremental updates inside the greedy/local-search loops.
pub fn et_for(lambda: f64, mu: f64, capacity_k: u64, beta: f64, tc_s: f64) -> f64 {
    let params = QueueParams::new(lambda, mu, capacity_k, Reneging::Exp { beta });
    let et = expected_idle_time(&params).expect("reneging queues always converge");
    if et.is_finite() {
        et
    } else {
        tc_s
    }
}

/// The idle ratio of Eq. 17: `IR = ET / (cost + ET)`, with the `ET = ∞`
/// limit mapped to 1. Smaller is better.
pub fn idle_ratio(cost_s: f64, et_s: f64) -> f64 {
    assert!(cost_s >= 0.0, "idle_ratio: negative cost");
    if et_s.is_infinite() {
        return 1.0;
    }
    if cost_s + et_s == 0.0 {
        // Zero-cost, zero-idle: define as 0 (best possible).
        return 0.0;
    }
    et_s / (cost_s + et_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_sim::{AvailableDriver, BusyDriver, DriverId, RiderId, WaitingRider};
    use mrvd_spatial::{ConstantSpeedModel, Grid, Point};

    fn ctx_fixture<'a>(
        grid: &'a Grid,
        travel: &'a ConstantSpeedModel,
        riders: &'a [WaitingRider],
        drivers: &'a [AvailableDriver],
        busy: &'a [BusyDriver],
    ) -> BatchContext<'a> {
        BatchContext {
            now_ms: 0,
            riders,
            drivers,
            busy,
            travel,
            grid,
            avail_index: None,
            region_counts: None,
            views: None,
        }
    }

    fn rider(p: Point) -> WaitingRider {
        WaitingRider {
            id: RiderId(0),
            pickup: p,
            dropoff: p,
            request_ms: 0,
            deadline_ms: 60_000,
        }
    }

    fn driver(p: Point) -> AvailableDriver {
        AvailableDriver {
            id: DriverId(0),
            pos: p,
            available_since_ms: 0,
        }
    }

    #[test]
    fn eq18_19_balance_backlog_and_surplus() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let p = Point::new(-73.985, 40.755);
        let k = grid.region_of(p).idx();
        let cfg = DispatchConfig {
            tc_ms: 600_000, // 10 min
            ..DispatchConfig::default()
        };
        // 3 waiting riders, 1 driver, 0 rejoining, 5 predicted riders.
        let riders = [rider(p), rider(p), rider(p)];
        let drivers = [driver(p)];
        let mut upcoming = vec![0.0; grid.num_regions()];
        upcoming[k] = 5.0;
        let ctx = ctx_fixture(&grid, &travel, &riders, &drivers, &[]);
        let est = estimate_rates(&ctx, &upcoming, &cfg);
        // |R_k| > |D_k|: λ = (5 + 3 − 1)/600 s, μ = 0/600.
        assert!((est.lambda[k] - 7.0 / 600.0).abs() < 1e-12);
        assert_eq!(est.mu[k], 0.0);
        assert_eq!(est.capacity_k[k], 1);

        // Flip: 1 rider, 3 drivers, 2 rejoining.
        let riders = [rider(p)];
        let drivers = [driver(p), driver(p), driver(p)];
        let busy = [
            BusyDriver {
                id: DriverId(9),
                dropoff_ms: 100_000,
                dropoff_pos: p,
            },
            BusyDriver {
                id: DriverId(10),
                dropoff_ms: 550_000,
                dropoff_pos: p,
            },
        ];
        let ctx = ctx_fixture(&grid, &travel, &riders, &drivers, &busy);
        let est = estimate_rates(&ctx, &upcoming, &cfg);
        // |R_k| ≤ |D_k|: λ = 5/600, μ = (2 + 3 − 1)/600.
        assert!((est.lambda[k] - 5.0 / 600.0).abs() < 1e-12);
        assert!((est.mu[k] - 4.0 / 600.0).abs() < 1e-12);
        assert_eq!(est.capacity_k[k], 5);
    }

    #[test]
    fn rejoins_outside_window_are_ignored() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let p = Point::new(-73.985, 40.755);
        let cfg = DispatchConfig {
            tc_ms: 300_000,
            ..DispatchConfig::default()
        };
        let busy = [BusyDriver {
            id: DriverId(0),
            dropoff_ms: 400_000, // beyond the 5-minute window
            dropoff_pos: p,
        }];
        let ctx = ctx_fixture(&grid, &travel, &[], &[], &busy);
        let est = estimate_rates(&ctx, &vec![0.0; grid.num_regions()], &cfg);
        assert_eq!(est.rejoining[grid.region_of(p).idx()], 0);
    }

    #[test]
    fn dropoff_exactly_on_the_batch_slot_is_not_double_counted() {
        // A dropoff landing exactly at the batch timestamp means the
        // engine has already moved that driver to the available set; a
        // stale busy entry at `now` (possible only in hand-built views)
        // must not be counted again in μ/`capacity_k`. The window end is
        // likewise exclusive.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let p = Point::new(-73.985, 40.755);
        let k = grid.region_of(p).idx();
        let cfg = DispatchConfig {
            tc_ms: 300_000,
            ..DispatchConfig::default()
        };
        let now = 600_000;
        let drivers = [driver(p)]; // the just-dropped-off driver, available
        let busy = [
            BusyDriver {
                id: DriverId(1),
                dropoff_ms: now, // exactly the batch slot: already available
                dropoff_pos: p,
            },
            BusyDriver {
                id: DriverId(2),
                dropoff_ms: now + cfg.tc_ms, // exactly the window end
                dropoff_pos: p,
            },
            BusyDriver {
                id: DriverId(3),
                dropoff_ms: now + 1, // strictly inside
                dropoff_pos: p,
            },
        ];
        let mut ctx = ctx_fixture(&grid, &travel, &[], &drivers, &busy);
        ctx.now_ms = now;
        let est = estimate_rates(&ctx, &vec![0.0; grid.num_regions()], &cfg);
        assert_eq!(est.rejoining[k], 1, "only the strictly-inside dropoff");
        assert_eq!(est.capacity_k[k], 2, "1 available + 1 rejoining");
        assert!((est.mu[k] - 2.0 / cfg.tc_s()).abs() < 1e-12);
    }

    #[test]
    fn hot_regions_have_smaller_et() {
        let cfg = DispatchConfig::default();
        let tc = cfg.tc_s();
        // Hot: many upcoming riders, few drivers.
        let hot = et_for(0.05, 0.002, 3, cfg.beta, tc);
        // Cold: no upcoming riders.
        let cold = et_for(0.0, 0.002, 3, cfg.beta, tc);
        assert!(hot < cold, "hot {hot} vs cold {cold}");
        assert_eq!(cold, tc); // clamped infinite
    }

    #[test]
    fn idle_ratio_obeys_the_two_rules() {
        // Rule (a): higher travel cost → smaller IR.
        assert!(idle_ratio(900.0, 100.0) < idle_ratio(300.0, 100.0));
        // Rule (b): smaller expected idle time → smaller IR.
        assert!(idle_ratio(600.0, 50.0) < idle_ratio(600.0, 200.0));
        // Bounds.
        assert_eq!(idle_ratio(100.0, f64::INFINITY), 1.0);
        assert_eq!(idle_ratio(0.0, 0.0), 0.0);
        let ir = idle_ratio(500.0, 500.0);
        assert!((0.0..=1.0).contains(&ir));
    }

    #[test]
    fn uniform_et_ablation_flattens_regions() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let p = Point::new(-73.985, 40.755);
        let riders = [rider(p), rider(p)];
        let ctx = ctx_fixture(&grid, &travel, &riders, &[], &[]);
        let mut upcoming = vec![0.0; grid.num_regions()];
        upcoming[10] = 40.0;
        let cfg = DispatchConfig {
            uniform_et: true,
            ..DispatchConfig::default()
        };
        let est = estimate_rates(&ctx, &upcoming, &cfg);
        let ets = est.expected_idle_times(&cfg);
        assert!(ets.windows(2).all(|w| w[0] == w[1]));
    }
}
