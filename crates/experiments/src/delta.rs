//! The `delta` subcommand: the Δ-sensitivity experiment (paper Fig. 8
//! territory, pushed sub-second).
//!
//! Sweeps the batch interval Δ ∈ {3 s, 1 s, 500 ms, 250 ms, 100 ms} over
//! the built-in scenarios for the queueing policy and its strongest
//! cheap baseline. Each `(scenario, policy)` row reruns one materialized
//! workload, so differences down a column are purely batching effects.
//! The event core makes the empty slots free (at Δ = 100 ms a day is
//! 864 000 slots, almost all skipped) and the incremental rate tracker +
//! live candidate index make the *executed* sparse-change batches cheap —
//! the two facts this experiment exists to demonstrate.
//!
//! Unlike `scenarios`, the built-ins are scaled by `--scale` (default
//! 0.25) so a full sweep stays laptop-sized; `--threads`/`--out` apply.
//! Results go to the console table and `<out>/BENCH_delta.json`, which
//! also carries a sparse-regime microbenchmark (1 waiting rider over a
//! 4 000-driver fleet) timing one executed batch of IRG-R under the
//! incremental rate path against the eager reference path.

use mrvd_bench::BatchFixture;
use mrvd_core::{DemandOracle, DispatchConfig, QueueingPolicy};
use mrvd_scenario::{builtins, sweep_deltas, SweepPolicy};
use mrvd_sim::{BatchContext, DispatchPolicy};
use mrvd_spatial::ConstantSpeedModel;
use serde_json::{json, Value};

use crate::common::{dump_json, print_table, Options};

/// The swept batch intervals, ms (the paper's default first).
const DELTAS_MS: [u64; 5] = [3_000, 1_000, 500, 250, 100];

/// Runs the Δ sweep, prints the table and dumps the JSON.
pub fn delta(opts: &Options) {
    let specs: Vec<_> = builtins().iter().map(|s| s.scaled(opts.scale)).collect();
    let policies = [SweepPolicy::IrgReal, SweepPolicy::Near];
    eprintln!(
        "[delta] sweeping {} scenarios × {} policies × {} batch intervals on {} threads (scale {})…",
        specs.len(),
        policies.len(),
        DELTAS_MS.len(),
        opts.threads,
        opts.scale
    );
    let t0 = std::time::Instant::now();
    let cells = sweep_deltas(&specs, &policies, &DELTAS_MS, opts.threads);
    let total_wall_s = t0.elapsed().as_secs_f64();

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.policy.to_string(),
                format!("{}", c.delta_ms),
                c.total_riders.to_string(),
                c.served.to_string(),
                format!("{:.1}%", c.service_rate * 100.0),
                format!("{:.0}", c.total_revenue),
                format!("{:.1}%", c.skip_rate * 100.0),
                c.ticks_executed.to_string(),
                format!("{:.1}", c.exec_batch_time_s * 1e6),
                format!("{:.2}", c.wall_s),
            ]
        })
        .collect();
    print_table(
        "Δ-sensitivity sweep — revenue, reneging and batch cost vs batch interval",
        &[
            "scenario", "policy", "Δ (ms)", "riders", "served", "rate", "revenue", "skip", "exec",
            "µs/exec", "wall (s)",
        ],
        &rows,
    );

    let micro = sparse_batch_microbench();
    println!(
        "\nsparse-regime executed batch ({} rider(s) / {} drivers, IRG-R): \
         reference rates {:.1} µs → incremental tracker {:.1} µs ({:.1}×); \
         idle-time solves per batch {:.0} → {:.1}",
        micro.riders,
        micro.available_drivers,
        micro.reference_us,
        micro.tracker_us,
        micro.reference_us / micro.tracker_us,
        micro.reference_ets_per_batch,
        micro.tracker_ets_per_batch,
    );

    let vmicro = views_microbench();
    println!(
        "sparse-regime view maintenance ({} rider(s) / {} drivers / {} busy): \
         scan-rebuild {:.2} µs → incremental {:.3} µs per executed batch ({:.0}×)",
        vmicro.riders,
        vmicro.available_drivers,
        vmicro.busy_drivers,
        vmicro.scan_us,
        vmicro.incremental_us,
        vmicro.scan_us / vmicro.incremental_us,
    );

    let cell_values: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "scenario": c.scenario,
                "policy": c.policy,
                "delta_ms": c.delta_ms,
                "total_riders": c.total_riders,
                "served": c.served,
                "reneged": c.reneged,
                "service_rate": c.service_rate,
                "total_revenue": c.total_revenue,
                "mean_batch_time_s": c.batch_time_s,
                "mean_executed_batch_time_s": c.exec_batch_time_s,
                "batches": c.batches,
                "ticks_executed": c.ticks_executed,
                "ticks_skipped": c.ticks_skipped,
                "skip_rate": c.skip_rate,
                "events_processed": c.events_processed,
                "index_ops": c.index_ops,
                "index_regions_dirtied": c.index_regions_dirtied,
                "index_rebuilds_avoided": c.index_rebuilds_avoided,
                "counts_ops": c.counts_ops,
                "counts_regions_dirtied": c.counts_regions_dirtied,
                "views_ops": c.views_ops,
                "views_entries_dirtied": c.views_entries_dirtied,
                "views_rebuilds_avoided": c.views_rebuilds_avoided,
                "wall_s": c.wall_s,
            })
        })
        .collect();
    let sparse_bench = json!({
        "riders": micro.riders,
        "available_drivers": micro.available_drivers,
        "busy_drivers": micro.busy_drivers,
        "reference_us": micro.reference_us,
        "tracker_us": micro.tracker_us,
        "speedup": micro.reference_us / micro.tracker_us,
        "reference_ets_per_batch": micro.reference_ets_per_batch,
        "tracker_ets_per_batch": micro.tracker_ets_per_batch,
    });
    let views_bench = json!({
        "riders": vmicro.riders,
        "available_drivers": vmicro.available_drivers,
        "busy_drivers": vmicro.busy_drivers,
        "scan_us": vmicro.scan_us,
        "incremental_us": vmicro.incremental_us,
        "speedup": vmicro.scan_us / vmicro.incremental_us,
    });
    dump_json(
        opts,
        "BENCH_delta",
        json!({
            "threads": opts.threads,
            "scale": opts.scale,
            "deltas_ms": DELTAS_MS.to_vec(),
            "total_wall_s": total_wall_s,
            "policies": policies.iter().map(|p| p.label()).collect::<Vec<&str>>(),
            "sparse_batch_bench": sparse_bench,
            "views_bench": views_bench,
            "cells": cell_values,
        }),
    );
}

/// Result of the sparse-regime view-maintenance microbenchmark.
struct ViewsBench {
    riders: usize,
    available_drivers: usize,
    busy_drivers: usize,
    scan_us: f64,
    incremental_us: f64,
}

/// Times the engine's per-executed-batch view work in the fine-Δ sparse
/// regime (one waiting rider over a 10 000-driver fleet): the full
/// waiting/available/busy scans the old engine ran every executed batch
/// ([`mrvd_sim::BatchViews::rebuild_reference`]) against the live views'
/// incremental path (one assignment round-trip of O(1) slot updates plus
/// the per-batch dirty drain). Same regime as the `batch_views`
/// criterion bench, recorded here so `BENCH_delta.json` carries the
/// number alongside the sweep it explains.
fn views_microbench() -> ViewsBench {
    use mrvd_sim::{BatchViews, BusyDriver};
    let fixture = BatchFixture::rush_hour(1, 10_000, 500, 7);
    const WARMUP: usize = 10;
    const ITERS: usize = 200;
    let mut scan_views = BatchViews::new();
    let mut scan = || {
        scan_views.rebuild_reference(
            fixture.riders.iter().copied(),
            fixture.drivers.iter().copied(),
            fixture.busy.iter().copied(),
        );
        scan_views.waiting().len() + scan_views.available().len() + scan_views.busy().len()
    };
    for _ in 0..WARMUP {
        std::hint::black_box(scan());
    }
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(scan());
    }
    let scan_us = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;

    let mut views = fixture.batch_views();
    let rider = fixture.riders[0];
    let driver = fixture.drivers[0];
    let busy = BusyDriver {
        id: driver.id,
        dropoff_ms: fixture.now_ms + 600_000,
        dropoff_pos: rider.dropoff,
    };
    let mut incremental = || {
        views.remove_waiting(rider.id);
        views.remove_available(driver.id);
        views.add_busy(busy);
        views.remove_busy(driver.id);
        views.add_available(driver);
        views.add_waiting(rider);
        let dirtied = views.entries_dirtied();
        views.clear_dirty();
        dirtied
    };
    for _ in 0..WARMUP {
        std::hint::black_box(incremental());
    }
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(incremental());
    }
    let incremental_us = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;

    ViewsBench {
        riders: fixture.riders.len(),
        available_drivers: fixture.drivers.len(),
        busy_drivers: fixture.busy.len(),
        scan_us,
        incremental_us,
    }
}

/// Result of the sparse-regime rate-path microbenchmark.
struct SparseBench {
    riders: usize,
    available_drivers: usize,
    busy_drivers: usize,
    reference_us: f64,
    tracker_us: f64,
    reference_ets_per_batch: f64,
    tracker_ets_per_batch: f64,
}

/// Times one executed IRG-R batch in the regime fine Δ produces (one
/// waiting rider over a large idle fleet), with the engine's live
/// structures present, under the eager reference rate path vs the
/// incremental lazy tracker. Candidate generation is identical in both
/// runs (both use the live index), so the difference is the rate path.
fn sparse_batch_microbench() -> SparseBench {
    let mut fixture = BatchFixture::rush_hour(1, 4_000, 200, 7);
    // Anchored riders guarantee the batch actually assigns: the tracker
    // path then pays its lazy idle-time solve plus the μ-bump resolve —
    // the representative executed-batch cost, not the no-candidate floor.
    fixture.anchor_riders_to_drivers();
    let travel = ConstantSpeedModel::default();
    let live_index = fixture.live_index();
    let counts = fixture.region_counts();
    let views = fixture.batch_views();
    let ctx = BatchContext {
        now_ms: fixture.now_ms,
        riders: views.waiting(),
        drivers: views.available(),
        busy: views.busy(),
        travel: &travel,
        grid: &fixture.grid,
        avail_index: Some(&live_index),
        region_counts: Some(&counts),
        views: Some(&views),
    };
    let time_policy = |policy: &mut QueueingPolicy| {
        const WARMUP: usize = 10;
        const ITERS: usize = 200;
        for _ in 0..WARMUP {
            std::hint::black_box(policy.assign(&ctx));
        }
        let t0 = std::time::Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(policy.assign(&ctx));
        }
        t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64
    };
    let oracle = || DemandOracle::real(fixture.series.clone(), 0);
    let mut reference = QueueingPolicy::irg(
        DispatchConfig {
            reference_rates: true,
            ..DispatchConfig::default()
        },
        oracle(),
    );
    let mut tracker = QueueingPolicy::irg(DispatchConfig::default(), oracle());
    let reference_us = time_policy(&mut reference);
    let tracker_us = time_policy(&mut tracker);
    let per_batch = |p: &QueueingPolicy| {
        let s = p.rate_stats();
        s.ets_computed as f64 / s.batches.max(1) as f64
    };
    SparseBench {
        riders: fixture.riders.len(),
        available_drivers: fixture.drivers.len(),
        busy_drivers: fixture.busy.len(),
        reference_us,
        tracker_us,
        reference_ets_per_batch: per_batch(&reference),
        tracker_ets_per_batch: per_batch(&tracker),
    }
}
