//! The `scenarios` subcommand: a parallel {policy} × {built-in scenario}
//! sweep over the declarative workloads of `mrvd-scenario`.
//!
//! Unlike the paper-reproduction commands, this one runs the built-ins
//! exactly as declared (a scenario's volume and fleet are part of its
//! definition), so `--scale`/`--instances` do not apply; `--threads` and
//! `--out` do. Results go to the console table and to
//! `<out>/BENCH_scenarios.json` (policy-quality metrics) plus
//! `<out>/BENCH_engine.json` (event-engine counters: empty-batch skip
//! rate, events processed, incremental-index maintenance stats, wall
//! clock per cell) so CI tracks both the dispatching quality and the
//! engine's performance trajectory.

use mrvd_scenario::{builtins, sweep, SweepPolicy};
use serde_json::{json, Value};

use crate::common::{dump_json, print_table, Options};

/// Runs the sweep, prints the comparison table and dumps the JSON.
pub fn scenarios(opts: &Options) {
    let specs = builtins();
    let policies = SweepPolicy::default_set();
    eprintln!(
        "[scenarios] sweeping {} scenarios × {} policies on {} threads…",
        specs.len(),
        policies.len(),
        opts.threads
    );
    let t0 = std::time::Instant::now();
    let cells = sweep(&specs, &policies, opts.threads);
    let total_wall_s = t0.elapsed().as_secs_f64();

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.policy.to_string(),
                c.total_riders.to_string(),
                c.served.to_string(),
                c.reneged.to_string(),
                format!("{:.1}%", c.service_rate * 100.0),
                format!("{:.0}", c.total_revenue),
                format!("{:.0}%", c.skip_rate * 100.0),
                c.index_ops.to_string(),
                c.index_regions_dirtied.to_string(),
                c.index_rebuilds_avoided.to_string(),
                format!("{:.2}", c.wall_s),
            ]
        })
        .collect();
    print_table(
        "Scenario sweep — policies × built-in scenarios",
        &[
            "scenario", "policy", "riders", "served", "reneged", "rate", "revenue", "skip",
            "ix ops", "ix dirty", "ix saved", "wall (s)",
        ],
        &rows,
    );

    let cell_values: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "scenario": c.scenario,
                "policy": c.policy,
                "total_riders": c.total_riders,
                "served": c.served,
                "reneged": c.reneged,
                "service_rate": c.service_rate,
                "total_revenue": c.total_revenue,
                "mean_batch_time_s": c.batch_time_s,
                "wall_s": c.wall_s,
            })
        })
        .collect();
    let spec_values: Vec<Value> = specs.iter().map(|s| s.to_json()).collect();
    dump_json(
        opts,
        "BENCH_scenarios",
        json!({
            "threads": opts.threads,
            "total_wall_s": total_wall_s,
            "policies": policies.iter().map(|p| p.label()).collect::<Vec<&str>>(),
            "specs": spec_values,
            "cells": cell_values,
        }),
    );

    // Engine counters per cell: how much of the batch grid the event
    // core skipped, how many true-time events it applied, and how cheap
    // the incremental candidate-index maintenance was compared to the
    // per-batch rebuilds it replaced.
    let engine_cells: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "scenario": c.scenario,
                "policy": c.policy,
                "batches": c.batches,
                "ticks_executed": c.ticks_executed,
                "ticks_skipped": c.ticks_skipped,
                "skip_rate": c.skip_rate,
                "events_processed": c.events_processed,
                "index_ops": c.index_ops,
                "index_regions_dirtied": c.index_regions_dirtied,
                "index_rebuilds_avoided": c.index_rebuilds_avoided,
                "counts_ops": c.counts_ops,
                "counts_regions_dirtied": c.counts_regions_dirtied,
                "views_ops": c.views_ops,
                "views_entries_dirtied": c.views_entries_dirtied,
                "views_rebuilds_avoided": c.views_rebuilds_avoided,
                "wall_s": c.wall_s,
            })
        })
        .collect();
    let total_batches: usize = cells.iter().map(|c| c.batches).sum();
    let total_executed: usize = cells.iter().map(|c| c.ticks_executed).sum();
    dump_json(
        opts,
        "BENCH_engine",
        json!({
            "threads": opts.threads,
            "total_wall_s": total_wall_s,
            "total_batches": total_batches,
            "total_ticks_executed": total_executed,
            "overall_skip_rate": if total_batches == 0 { 0.0 } else {
                (total_batches - total_executed) as f64 / total_batches as f64
            },
            "total_events_processed": cells.iter().map(|c| c.events_processed).sum::<usize>(),
            "total_index_ops": cells.iter().map(|c| c.index_ops).sum::<usize>(),
            "total_index_regions_dirtied":
                cells.iter().map(|c| c.index_regions_dirtied).sum::<usize>(),
            "total_index_rebuilds_avoided":
                cells.iter().map(|c| c.index_rebuilds_avoided).sum::<usize>(),
            "total_counts_ops": cells.iter().map(|c| c.counts_ops).sum::<usize>(),
            "total_counts_regions_dirtied":
                cells.iter().map(|c| c.counts_regions_dirtied).sum::<usize>(),
            "total_views_ops": cells.iter().map(|c| c.views_ops).sum::<usize>(),
            "total_views_entries_dirtied":
                cells.iter().map(|c| c.views_entries_dirtied).sum::<usize>(),
            "total_views_rebuilds_avoided":
                cells.iter().map(|c| c.views_rebuilds_avoided).sum::<usize>(),
            "cells": engine_cells,
        }),
    );
}
