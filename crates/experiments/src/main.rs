//! `mrvd-experiments` — regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! ```text
//! mrvd-experiments <command> [--scale F] [--instances N] [--seed S]
//!                            [--threads T] [--nn-epochs E] [--out DIR]
//!
//! commands:
//!   table3   idle-time estimation accuracy (drivers 1K–8K)
//!   table4   prediction method × policy revenue
//!   table6   demand-prediction accuracy (HA/LR/GBRT/DeepST/DeepST-GC)
//!   table7   chi-square Poisson test of order arrivals
//!   table8   chi-square Poisson test of rejoined-driver arrivals
//!   fig5     pickup density map 8:00–8:45
//!   fig6     predicted vs real idle time per region
//!   fig7     revenue & batch time vs number of drivers
//!   fig8     revenue & batch time vs batch interval Δ
//!   fig9     revenue & batch time vs scheduling window t_c
//!   fig10    revenue & batch time vs base waiting time τ
//!   fig11    observed-vs-expected order histograms (with table7)
//!   fig12    observed-vs-expected driver histograms (with table8)
//!   fig13    served orders: SHORT vs baselines over four sweeps
//!   ablation destination-aware ET vs uniform ET
//!   all      everything above
//! ```
//!
//! `--scale 1.0` reproduces the paper's 282,255-order day with 1K–8K
//! drivers; the default 0.25 keeps a full `all` run laptop-sized. Revenue
//! tables print scale-normalized values (divided by the scale) next to
//! the paper's numbers where the paper reports exact values.

mod common;
mod figures;
mod tables;

use common::{Options, World};

const COMMANDS: [&str; 16] = [
    "table3", "table4", "table6", "table7", "table8", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "ablation", "all",
];

fn print_usage() {
    eprintln!(
        "usage: mrvd-experiments <{}> [--scale F] [--instances N] [--seed S] [--threads T] \
         [--nn-epochs E] [--out DIR]",
        COMMANDS.join("|")
    );
}

fn usage() -> ! {
    print_usage();
    std::process::exit(2)
}

fn parse_args() -> (String, Options) {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    if cmd == "--help" || cmd == "-h" {
        print_usage();
        std::process::exit(0)
    }
    // Reject unknown commands before the expensive world build.
    if !COMMANDS.contains(&cmd.as_str()) {
        eprintln!("unknown command {cmd}");
        usage()
    }
    let mut opts = Options::default();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scale" => opts.scale = value("--scale").parse().expect("--scale takes a float"),
            "--instances" => {
                opts.instances = value("--instances")
                    .parse()
                    .expect("--instances takes an int")
            }
            "--seed" => opts.seed = value("--seed").parse().expect("--seed takes an int"),
            "--threads" => {
                opts.threads = value("--threads").parse().expect("--threads takes an int")
            }
            "--nn-epochs" => {
                opts.nn_epochs = value("--nn-epochs")
                    .parse()
                    .expect("--nn-epochs takes an int")
            }
            "--out" => opts.out_dir = value("--out"),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    assert!(
        opts.scale > 0.0 && opts.scale <= 1.0,
        "--scale must be in (0, 1]"
    );
    assert!(opts.instances >= 1, "--instances must be ≥ 1");
    (cmd, opts)
}

fn main() {
    let (cmd, opts) = parse_args();
    println!(
        "# mrvd-experiments {cmd} — scale {}, instances {}, seed {}, threads {}",
        opts.scale, opts.instances, opts.seed, opts.threads
    );
    let t0 = std::time::Instant::now();
    let world = World::build(&opts);
    match cmd.as_str() {
        "table3" => tables::table3(&world),
        "table4" => tables::table4(&world),
        "table6" => tables::table6(&world),
        "table7" => tables::table7_8(&world, false, false),
        "table8" => tables::table7_8(&world, true, false),
        "fig5" => figures::fig5(&world),
        "fig6" => figures::fig6(&world),
        "fig7" => figures::fig7(&world),
        "fig8" => figures::fig8(&world),
        "fig9" => figures::fig9(&world),
        "fig10" => figures::fig10(&world),
        "fig11" => tables::table7_8(&world, false, true),
        "fig12" => tables::table7_8(&world, true, true),
        "fig13" => figures::fig13(&world),
        "ablation" => tables::ablation(&world),
        "all" => {
            tables::table6(&world);
            tables::table7_8(&world, false, true);
            tables::table7_8(&world, true, true);
            figures::fig5(&world);
            tables::table3(&world);
            figures::fig6(&world);
            tables::table4(&world);
            figures::fig7(&world);
            figures::fig8(&world);
            figures::fig9(&world);
            figures::fig10(&world);
            figures::fig13(&world);
            tables::ablation(&world);
        }
        _ => usage(),
    }
    println!("\n# done in {:.1}s", t0.elapsed().as_secs_f64());
}
