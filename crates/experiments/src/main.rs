//! `mrvd-experiments` — regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index), plus
//! the scenario sweep of `mrvd-scenario`.
//!
//! ```text
//! mrvd-experiments <command> [--scale F] [--instances N] [--seed S]
//!                            [--threads T] [--workers W] [--nn-epochs E]
//!                            [--out DIR]
//!
//! commands:
//!   table3    idle-time estimation accuracy (drivers 1K–8K)
//!   table4    prediction method × policy revenue
//!   table6    demand-prediction accuracy (HA/LR/GBRT/DeepST/DeepST-GC)
//!   table7    chi-square Poisson test of order arrivals
//!   table8    chi-square Poisson test of rejoined-driver arrivals
//!   fig5      pickup density map 8:00–8:45
//!   fig6      predicted vs real idle time per region
//!   fig7      revenue & batch time vs number of drivers
//!   fig8      revenue & batch time vs batch interval Δ
//!   fig9      revenue & batch time vs scheduling window t_c
//!   fig10     revenue & batch time vs base waiting time τ
//!   fig11     observed-vs-expected order histograms (with table7)
//!   fig12     observed-vs-expected driver histograms (with table8)
//!   fig13     served orders: SHORT vs baselines over four sweeps
//!   ablation  destination-aware ET vs uniform ET
//!   scenarios parallel policy sweep over the built-in workload scenarios
//!   delta     Δ-sensitivity sweep (3 s → 100 ms) over the built-ins
//!   scale     grid × fleet scale sweep (16×16/1K → 200×200/50K) at Δ = 1 s
//!   all       everything above except scenarios, delta and scale
//! ```
//!
//! `--scale 1.0` reproduces the paper's 282,255-order day with 1K–8K
//! drivers; the default 0.25 keeps a full `all` run laptop-sized. Revenue
//! tables print scale-normalized values (divided by the scale) next to
//! the paper's numbers where the paper reports exact values. The
//! `scenarios` command runs the built-in scenario specs exactly as
//! declared, so `--scale`/`--instances` do not apply to it; `delta`
//! scales the built-ins by `--scale` (sub-second Δ multiplies the batch
//! grid 30-fold, so its default run is deliberately smaller); `scale`
//! multiplies each scale-axis point's orders and drivers by `--scale`
//! (grid sizes are fixed — resolution is the axis under test).

#![forbid(unsafe_code)]

mod common;
mod delta;
mod figures;
mod scale;
mod scenarios;
mod tables;

use common::{Options, World};

const COMMANDS: [&str; 19] = [
    "table3",
    "table4",
    "table6",
    "table7",
    "table8",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation",
    "scenarios",
    "delta",
    "scale",
    "all",
];

fn print_usage() {
    eprintln!(
        "usage: mrvd-experiments <{}> [--scale F] [--instances N] [--seed S] [--threads T] \
         [--workers W] [--nn-epochs E] [--out DIR]",
        COMMANDS.join("|")
    );
}

/// Outcome of command-line parsing.
#[derive(Debug)]
enum Parsed {
    /// Run `cmd` with the given options.
    Run(String, Options),
    /// `--help` / `-h`: print usage and exit 0.
    Help,
}

/// Parses the command line (without the program name). Every malformed
/// input — unknown command, unknown flag anywhere after a valid command,
/// missing or unparsable flag value, out-of-range option — is an error
/// naming the offending token, never a silent skip or a panic.
fn parse_cmdline(args: &[String]) -> Result<Parsed, String> {
    let mut args = args.iter();
    let Some(cmd) = args.next() else {
        return Err("missing command".into());
    };
    if cmd == "--help" || cmd == "-h" {
        return Ok(Parsed::Help);
    }
    // Reject unknown commands before the expensive world build.
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(format!("unknown command `{cmd}`"));
    }
    let mut opts = Options::default();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            args.next().ok_or(format!("missing value for {name}"))
        };
        fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("invalid value `{raw}` for {name}"))
        }
        match flag.as_str() {
            "--scale" => opts.scale = parse("--scale", value("--scale")?)?,
            "--instances" => opts.instances = parse("--instances", value("--instances")?)?,
            "--seed" => opts.seed = parse("--seed", value("--seed")?)?,
            "--threads" => opts.threads = parse("--threads", value("--threads")?)?,
            "--workers" => opts.workers = parse("--workers", value("--workers")?)?,
            "--nn-epochs" => opts.nn_epochs = parse("--nn-epochs", value("--nn-epochs")?)?,
            "--out" => opts.out_dir = value("--out")?.clone(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    if opts.instances < 1 {
        return Err("--instances must be ≥ 1".into());
    }
    if opts.threads < 1 {
        return Err("--threads must be ≥ 1".into());
    }
    if opts.workers < 1 {
        return Err("--workers must be ≥ 1".into());
    }
    Ok(Parsed::Run(cmd.clone(), opts))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts) = match parse_cmdline(&args) {
        Ok(Parsed::Help) => {
            print_usage();
            return;
        }
        Ok(Parsed::Run(cmd, opts)) => (cmd, opts),
        Err(msg) => {
            eprintln!("{msg}");
            print_usage();
            std::process::exit(2)
        }
    };
    println!(
        "# mrvd-experiments {cmd} — scale {}, instances {}, seed {}, threads {}",
        opts.scale, opts.instances, opts.seed, opts.threads
    );
    let t0 = std::time::Instant::now();
    if cmd == "scenarios" || cmd == "delta" || cmd == "scale" {
        // Scenario, Δ and scale sweeps run the declarative specs
        // directly — no world (history generation + model training) is
        // needed.
        match cmd.as_str() {
            "scenarios" => scenarios::scenarios(&opts),
            "delta" => delta::delta(&opts),
            _ => scale::scale(&opts),
        }
        println!("\n# done in {:.1}s", t0.elapsed().as_secs_f64());
        return;
    }
    let world = World::build(&opts);
    match cmd.as_str() {
        "table3" => tables::table3(&world),
        "table4" => tables::table4(&world),
        "table6" => tables::table6(&world),
        "table7" => tables::table7_8(&world, false, false),
        "table8" => tables::table7_8(&world, true, false),
        "fig5" => figures::fig5(&world),
        "fig6" => figures::fig6(&world),
        "fig7" => figures::fig7(&world),
        "fig8" => figures::fig8(&world),
        "fig9" => figures::fig9(&world),
        "fig10" => figures::fig10(&world),
        "fig11" => tables::table7_8(&world, false, true),
        "fig12" => tables::table7_8(&world, true, true),
        "fig13" => figures::fig13(&world),
        "ablation" => tables::ablation(&world),
        "all" => {
            tables::table6(&world);
            tables::table7_8(&world, false, true);
            tables::table7_8(&world, true, true);
            figures::fig5(&world);
            tables::table3(&world);
            figures::fig6(&world);
            tables::table4(&world);
            figures::fig7(&world);
            figures::fig8(&world);
            figures::fig9(&world);
            figures::fig10(&world);
            figures::fig13(&world);
            tables::ablation(&world);
        }
        _ => unreachable!("parse_cmdline vetted the command"),
    }
    println!("\n# done in {:.1}s", t0.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn valid_command_and_flags_parse() {
        let Ok(Parsed::Run(cmd, opts)) = parse_cmdline(&args(&[
            "fig7",
            "--scale",
            "0.5",
            "--threads",
            "3",
            "--out",
            "elsewhere",
        ])) else {
            panic!("expected a run");
        };
        assert_eq!(cmd, "fig7");
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.out_dir, "elsewhere");
    }

    #[test]
    fn unknown_flag_after_a_valid_command_is_an_error() {
        let err = parse_cmdline(&args(&["table3", "--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        // Same for a stray positional.
        let err = parse_cmdline(&args(&["table3", "extra"])).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn malformed_flag_values_error_instead_of_panicking() {
        let err = parse_cmdline(&args(&["fig8", "--scale", "huge"])).unwrap_err();
        assert!(err.contains("huge") && err.contains("--scale"), "{err}");
        let err = parse_cmdline(&args(&["fig8", "--threads", "-2"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn missing_values_and_commands_error() {
        assert!(parse_cmdline(&args(&[])).unwrap_err().contains("missing"));
        let err = parse_cmdline(&args(&["fig9", "--seed"])).unwrap_err();
        assert!(err.contains("missing value for --seed"), "{err}");
        let err = parse_cmdline(&args(&["not-a-command"])).unwrap_err();
        assert!(err.contains("not-a-command"), "{err}");
    }

    #[test]
    fn out_of_range_options_error() {
        assert!(parse_cmdline(&args(&["fig7", "--scale", "0"])).is_err());
        assert!(parse_cmdline(&args(&["fig7", "--scale", "1.5"])).is_err());
        assert!(parse_cmdline(&args(&["fig7", "--instances", "0"])).is_err());
        assert!(parse_cmdline(&args(&["fig7", "--threads", "0"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(
            parse_cmdline(&args(&["--help"])),
            Ok(Parsed::Help)
        ));
        assert!(matches!(parse_cmdline(&args(&["-h"])), Ok(Parsed::Help)));
    }

    #[test]
    fn scenarios_is_a_known_command() {
        assert!(matches!(
            parse_cmdline(&args(&["scenarios"])),
            Ok(Parsed::Run(cmd, _)) if cmd == "scenarios"
        ));
    }

    #[test]
    fn scale_is_a_known_command() {
        let Ok(Parsed::Run(cmd, opts)) = parse_cmdline(&args(&["scale", "--scale", "0.05"])) else {
            panic!("expected a run");
        };
        assert_eq!(cmd, "scale");
        assert_eq!(opts.scale, 0.05);
    }

    #[test]
    fn workers_flag_parses_and_validates() {
        let Ok(Parsed::Run(cmd, opts)) =
            parse_cmdline(&args(&["scale", "--workers", "4", "--scale", "0.04"]))
        else {
            panic!("expected a run");
        };
        assert_eq!(cmd, "scale");
        assert_eq!(opts.workers, 4);
        assert_eq!(Options::default().workers, 8);
        let err = parse_cmdline(&args(&["scale", "--workers", "0"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = parse_cmdline(&args(&["scale", "--workers"])).unwrap_err();
        assert!(err.contains("missing value for --workers"), "{err}");
    }

    #[test]
    fn delta_is_a_known_command_with_scale() {
        let Ok(Parsed::Run(cmd, opts)) = parse_cmdline(&args(&["delta", "--scale", "0.1"])) else {
            panic!("expected a run");
        };
        assert_eq!(cmd, "delta");
        assert_eq!(opts.scale, 0.1);
    }
}
