//! The paper's figures: 5 (order density), 6 (predicted vs real idle),
//! 7–10 (parameter sweeps), 13 (served orders with SHORT).

use serde_json::json;

use crate::common::{
    dump_json, parallel_map, print_table, run_cell, run_one, CellResult, ModelKind, OracleKind,
    PolicySpec, RunCfg, World,
};

/// The eight online approaches plotted in Figures 7–10
/// (UPPER is appended only for Figure 7, as in the paper).
fn sweep_specs() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Rand,
        PolicySpec::Ltg,
        PolicySpec::Near,
        PolicySpec::Polar(OracleKind::Pred(ModelKind::DeepSt)),
        PolicySpec::Irg(OracleKind::Pred(ModelKind::DeepSt)),
        PolicySpec::Irg(OracleKind::Real),
        PolicySpec::Ls(OracleKind::Pred(ModelKind::DeepSt)),
        PolicySpec::Ls(OracleKind::Real),
    ]
}

/// A generic parameter sweep over `(spec, value)` cells.
struct Sweep {
    param: &'static str,
    value_labels: Vec<String>,
    specs: Vec<PolicySpec>,
    /// `cells[spec][value]`.
    cells: Vec<Vec<CellResult>>,
}

impl Sweep {
    fn run(
        world: &World,
        param: &'static str,
        specs: Vec<PolicySpec>,
        values: Vec<(String, RunCfg)>,
        reuse_param_independent: bool,
    ) -> Sweep {
        // Enumerate jobs; specs that don't depend on the parameter run
        // only for the first value and are copied across.
        let mut jobs = Vec::new();
        for (si, spec) in specs.iter().enumerate() {
            let independent = reuse_param_independent && !spec.depends_on_tc();
            for (vi, (_, cfg)) in values.iter().enumerate() {
                if independent && vi > 0 {
                    continue;
                }
                jobs.push((si, vi, *spec, cfg.clone()));
            }
        }
        let results = parallel_map(jobs, world.opts.threads, |(si, vi, spec, cfg)| {
            (*si, *vi, run_cell(world, *spec, cfg))
        });
        let placeholder = CellResult {
            label: String::new(),
            revenue: f64::NAN,
            served: f64::NAN,
            reneged: f64::NAN,
            batch_time_s: f64::NAN,
        };
        let mut cells = vec![vec![placeholder; values.len()]; specs.len()];
        for (si, vi, cell) in results {
            cells[si][vi] = cell;
        }
        // Copy parameter-independent results across the row.
        for (si, spec) in specs.iter().enumerate() {
            if reuse_param_independent && !spec.depends_on_tc() {
                let first = cells[si][0].clone();
                for cell in &mut cells[si][1..] {
                    *cell = first.clone();
                }
            }
        }
        Sweep {
            param,
            value_labels: values.into_iter().map(|(l, _)| l).collect(),
            specs,
            cells,
        }
    }

    fn print(&self, title: &str, metric: &str, f: impl Fn(&CellResult) -> String) {
        let mut headers: Vec<String> = vec![format!("{} \\ {}", metric, self.param)];
        headers.extend(self.value_labels.iter().cloned());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .specs
            .iter()
            .enumerate()
            .map(|(si, spec)| {
                let mut row = vec![spec.label()];
                row.extend(self.cells[si].iter().map(&f));
                row
            })
            .collect();
        print_table(title, &header_refs, &rows);
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "param": self.param,
            "values": self.value_labels,
            "series": self.specs.iter().enumerate().map(|(si, spec)| json!({
                "policy": spec.label(),
                "revenue": self.cells[si].iter().map(|c| c.revenue).collect::<Vec<_>>(),
                "served": self.cells[si].iter().map(|c| c.served).collect::<Vec<_>>(),
                "reneged": self.cells[si].iter().map(|c| c.reneged).collect::<Vec<_>>(),
                "batch_time_s": self.cells[si].iter().map(|c| c.batch_time_s).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        })
    }
}

/// Figure 7: effect of the fleet size `n` (revenue + batch time), with
/// the UPPER bound included as in the paper's 7(a).
pub fn fig7(world: &World) {
    let mut specs = sweep_specs();
    specs.push(PolicySpec::Upper);
    let values: Vec<(String, RunCfg)> = [1_000usize, 2_000, 3_000, 4_000, 5_000]
        .into_iter()
        .map(|paper_n| {
            (
                format!("{}K", paper_n / 1000),
                RunCfg::defaults(world.opts.drivers(paper_n), 0),
            )
        })
        .collect();
    let sweep = Sweep::run(world, "n", specs, values, false);
    sweep.print(
        "Figure 7(a) — total revenue vs number of drivers",
        "revenue",
        |c| format!("{:.0}", c.revenue),
    );
    sweep.print(
        "Figure 7(b) — batch running time (ms) vs n",
        "batch",
        |c| format!("{:.2}", c.batch_time_s * 1000.0),
    );
    dump_json(&world.opts, "fig7", sweep.to_json());
}

/// Figure 8: effect of the batch interval Δ.
pub fn fig8(world: &World) {
    let n = world.opts.drivers(3_000);
    let values: Vec<(String, RunCfg)> = [3_000u64, 5_000, 10_000, 20_000, 30_000]
        .into_iter()
        .map(|delta| {
            let mut cfg = RunCfg::defaults(n, 0);
            cfg.delta_ms = delta;
            (format!("{}s", delta / 1000), cfg)
        })
        .collect();
    let sweep = Sweep::run(world, "Δ", sweep_specs(), values, false);
    sweep.print(
        "Figure 8(a) — total revenue vs batch interval Δ",
        "revenue",
        |c| format!("{:.0}", c.revenue),
    );
    sweep.print(
        "Figure 8(b) — batch running time (ms) vs Δ",
        "batch",
        |c| format!("{:.2}", c.batch_time_s * 1000.0),
    );
    dump_json(&world.opts, "fig8", sweep.to_json());
}

/// Figure 9: effect of the scheduling window `t_c` (LTG/NEAR/RAND do not
/// depend on it and are reused across the row, as the paper notes).
pub fn fig9(world: &World) {
    let n = world.opts.drivers(3_000);
    let values: Vec<(String, RunCfg)> = [5u64, 10, 15, 20, 40, 60, 80, 100]
        .into_iter()
        .map(|mins| {
            let mut cfg = RunCfg::defaults(n, 0);
            cfg.tc_ms = mins * 60 * 1000;
            (format!("{mins}m"), cfg)
        })
        .collect();
    let sweep = Sweep::run(world, "t_c", sweep_specs(), values, true);
    sweep.print(
        "Figure 9(a) — total revenue vs time window t_c",
        "revenue",
        |c| format!("{:.0}", c.revenue),
    );
    sweep.print(
        "Figure 9(b) — batch running time (ms) vs t_c",
        "batch",
        |c| format!("{:.2}", c.batch_time_s * 1000.0),
    );
    dump_json(&world.opts, "fig9", sweep.to_json());
}

/// Figure 10: effect of the base pickup waiting time τ.
pub fn fig10(world: &World) {
    let n = world.opts.drivers(3_000);
    let values: Vec<(String, RunCfg)> = [60u64, 120, 180, 240, 300]
        .into_iter()
        .map(|secs| {
            let mut cfg = RunCfg::defaults(n, 0);
            cfg.base_wait_ms = secs * 1000;
            (format!("{secs}s"), cfg)
        })
        .collect();
    let sweep = Sweep::run(world, "τ", sweep_specs(), values, false);
    sweep.print(
        "Figure 10(a) — total revenue vs base waiting time τ",
        "revenue",
        |c| format!("{:.0}", c.revenue),
    );
    sweep.print(
        "Figure 10(b) — batch running time (ms) vs τ",
        "batch",
        |c| format!("{:.2}", c.batch_time_s * 1000.0),
    );
    dump_json(&world.opts, "fig10", sweep.to_json());
}

/// The four approaches of Figure 13 (served-orders objective).
fn fig13_specs() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Rand,
        PolicySpec::Near,
        PolicySpec::Polar(OracleKind::Pred(ModelKind::DeepSt)),
        PolicySpec::Short(OracleKind::Pred(ModelKind::DeepSt)),
    ]
}

/// Figure 13: number of served orders for SHORT vs baselines over the
/// four parameter sweeps.
pub fn fig13(world: &World) {
    let n3 = world.opts.drivers(3_000);
    // (a) drivers.
    let values: Vec<(String, RunCfg)> = [1_000usize, 2_000, 3_000, 4_000, 5_000]
        .into_iter()
        .map(|p| {
            (
                format!("{}K", p / 1000),
                RunCfg::defaults(world.opts.drivers(p), 0),
            )
        })
        .collect();
    let a = Sweep::run(world, "n", fig13_specs(), values, false);
    a.print("Figure 13(a) — served orders vs n", "served", |c| {
        format!("{:.0}", c.served)
    });
    // (b) t_c.
    let values: Vec<(String, RunCfg)> = [5u64, 10, 15, 20, 40, 60, 80, 100]
        .into_iter()
        .map(|m| {
            let mut cfg = RunCfg::defaults(n3, 0);
            cfg.tc_ms = m * 60 * 1000;
            (format!("{m}m"), cfg)
        })
        .collect();
    let b = Sweep::run(world, "t_c", fig13_specs(), values, true);
    b.print("Figure 13(b) — served orders vs t_c", "served", |c| {
        format!("{:.0}", c.served)
    });
    // (c) Δ.
    let values: Vec<(String, RunCfg)> = [3_000u64, 5_000, 10_000, 20_000, 30_000]
        .into_iter()
        .map(|d| {
            let mut cfg = RunCfg::defaults(n3, 0);
            cfg.delta_ms = d;
            (format!("{}s", d / 1000), cfg)
        })
        .collect();
    let c = Sweep::run(world, "Δ", fig13_specs(), values, false);
    c.print("Figure 13(c) — served orders vs Δ", "served", |cell| {
        format!("{:.0}", cell.served)
    });
    // (d) τ.
    let values: Vec<(String, RunCfg)> = [60u64, 120, 180, 240, 300]
        .into_iter()
        .map(|t| {
            let mut cfg = RunCfg::defaults(n3, 0);
            cfg.base_wait_ms = t * 1000;
            (format!("{t}s"), cfg)
        })
        .collect();
    let d = Sweep::run(world, "τ", fig13_specs(), values, false);
    d.print("Figure 13(d) — served orders vs τ", "served", |c| {
        format!("{:.0}", c.served)
    });
    dump_json(
        &world.opts,
        "fig13",
        json!({ "a": a.to_json(), "b": b.to_json(), "c": c.to_json(), "d": d.to_json() }),
    );
}

/// Figure 5: spatial distribution of pickups 8:00–8:45 A.M. as a 16×16
/// ASCII density map (darker = denser).
pub fn fig5(world: &World) {
    let grid = &world.grid;
    let mut counts = vec![0u64; grid.num_regions()];
    let (start, end) = (8 * 3_600_000u64, 8 * 3_600_000 + 45 * 60_000);
    for t in &world.trips {
        if t.request_ms >= start && t.request_ms < end {
            counts[grid.region_of(t.pickup).idx()] += 1;
        }
    }
    let peak = *counts.iter().max().unwrap_or(&1) as f64;
    println!("\n== Figure 5 — pickup density 8:00–8:45 (row 0 = south) ==");
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for row in (0..grid.rows()).rev() {
        let mut line = String::new();
        for col in 0..grid.cols() {
            let id = grid.at(col as i64, row as i64).expect("in range");
            let c = counts[id.idx()] as f64;
            let shade = ((c / peak) * 9.0).round() as usize;
            line.push(SHADES[shade.min(9)]);
            line.push(SHADES[shade.min(9)]);
        }
        println!("|{line}|");
    }
    println!("peak cell: {peak} pickups in 45 min");
    dump_json(&world.opts, "fig5", json!({ "counts": counts }));
}

/// Figure 6: per-region mean predicted vs real idle time, as two aligned
/// 16×16 maps plus the global correlation.
pub fn fig6(world: &World) {
    let n = world.opts.drivers(3_000);
    let mut est_sum = vec![0.0f64; world.grid.num_regions()];
    let mut real_sum = vec![0.0f64; world.grid.num_regions()];
    let mut count = vec![0u64; world.grid.num_regions()];
    for i in 0..world.opts.instances {
        let res = run_one(
            world,
            PolicySpec::Irg(OracleKind::Pred(ModelKind::DeepSt)),
            &RunCfg::defaults(n, i),
        );
        for (region, e, r) in res.idle_estimate_pairs_by_region() {
            // Same window-censoring protocol as Table 3 (see tables.rs).
            if r > 900.0 {
                continue;
            }
            est_sum[region.idx()] += e.min(900.0);
            real_sum[region.idx()] += r;
            count[region.idx()] += 1;
        }
    }
    let render = |title: &str, sums: &[f64]| {
        println!("\n== Figure 6 — {title} idle time per region (s; row 0 = south) ==");
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let peak = sums
            .iter()
            .zip(&count)
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| s / c as f64)
            .fold(1.0f64, f64::max);
        for row in (0..world.grid.rows()).rev() {
            let mut line = String::new();
            for col in 0..world.grid.cols() {
                let id = world.grid.at(col as i64, row as i64).expect("in range");
                let v = if count[id.idx()] > 0 {
                    sums[id.idx()] / count[id.idx()] as f64
                } else {
                    0.0
                };
                let shade = ((v / peak) * 9.0).round() as usize;
                line.push(SHADES[shade.min(9)]);
                line.push(SHADES[shade.min(9)]);
            }
            println!("|{line}|");
        }
        println!("peak mean: {peak:.0} s");
    };
    render("predicted", &est_sum);
    render("real", &real_sum);
    // Global agreement across regions with data.
    let mut est_means = Vec::new();
    let mut real_means = Vec::new();
    for k in 0..count.len() {
        if count[k] >= 5 {
            est_means.push(est_sum[k] / count[k] as f64);
            real_means.push(real_sum[k] / count[k] as f64);
        }
    }
    let corr = pearson(&est_means, &real_means);
    println!(
        "\nregions with ≥5 samples: {}; Pearson correlation predicted↔real: {corr:.3}",
        est_means.len()
    );
    dump_json(
        &world.opts,
        "fig6",
        json!({
            "est_mean": est_means, "real_mean": real_means, "pearson": corr,
        }),
    );
}

/// Pearson correlation coefficient.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return f64::NAN;
    }
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma).powi(2);
        vb += (b[i] - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}
