//! The `scale` subcommand: city-scale phase 1.
//!
//! Sweeps the workload's *scale axis* — grid resolution × fleet size ×
//! order volume, up to a 200×200 grid with a 50 000-driver fleet serving
//! a 1M-order day — at Δ = 1 s, timing the parallel sharded event engine
//! (`--workers` drain workers between batch barriers) against the
//! sequential sharded layout and the forced single-heap layout on
//! identical workloads. All three must be byte-identical (the shard
//! tournament pops in exactly the global heap order, and the parallel
//! drain merges popped keys back into that order before applying them),
//! so every cell is also a differential check; the KPI columns are wall
//! time per execution mode, engine events per second and
//! `views_entries_dirtied` (the O(changes) work the policies actually
//! see per batch).
//!
//! A second section reruns the six built-in scenarios (scaled by
//! `--scale`) under IRG-R four ways — parallel sharded, sequential
//! sharded, single-queue engine, legacy reference loop — and records the
//! byte-identity of each pair, so `BENCH_scale.json` carries the
//! equivalence evidence next to the timings it justifies.
//!
//! An FNV-1a digest over the *simulated* outputs of every parallel run
//! (counts, revenue bits, the full assignment and renege streams — no
//! wall-clock fields) is written both into the JSON and to
//! `<out>/BENCH_scale.digest`; two sweeps that differ only in
//! `--workers` must produce byte-identical digest files, which CI checks
//! with a plain `cmp`.
//!
//! `--scale` multiplies each point's orders and drivers (grid sizes are
//! fixed — resolution is the axis under test); the default 0.25 keeps
//! the sweep laptop-sized while the top point still runs a ≥10K-driver
//! day on the 200×200 grid. Results go to the console and
//! `<out>/BENCH_scale.json`.

use mrvd_scenario::{
    builtins, run_scenario_configured, run_scenario_reference, ScenarioSpec, SweepPolicy,
};
use mrvd_sim::{ShardedEventQueue, SimResult};
use mrvd_stats::parallel_map;
use serde_json::{json, Value};

use crate::common::{dump_json, print_table, Options};

/// One point of the scale axis (volumes before `--scale`).
struct ScalePoint {
    /// Grid columns.
    cols: u32,
    /// Grid rows.
    rows: u32,
    /// Fleet size at `--scale 1.0`.
    drivers: usize,
    /// Order volume at `--scale 1.0`.
    orders: f64,
    /// Whether to also run IRG-R (its per-batch rate work still scales
    /// with the *occupied* region count, so it stays off the largest
    /// grids — the explicitly-scoped phase-2 wall).
    irg: bool,
}

/// The scale axis: the paper's 16×16 baseline through city-scale
/// resolution. Orders stay at ~20 per driver per day throughout, so
/// cells differ by scale, not by load regime.
const POINTS: [ScalePoint; 5] = [
    ScalePoint {
        cols: 16,
        rows: 16,
        drivers: 1_000,
        orders: 20_000.0,
        irg: true,
    },
    ScalePoint {
        cols: 32,
        rows: 32,
        drivers: 2_000,
        orders: 40_000.0,
        irg: true,
    },
    ScalePoint {
        cols: 64,
        rows: 64,
        drivers: 10_000,
        orders: 200_000.0,
        irg: false,
    },
    ScalePoint {
        cols: 128,
        rows: 128,
        drivers: 25_000,
        orders: 500_000.0,
        irg: false,
    },
    ScalePoint {
        cols: 200,
        rows: 200,
        drivers: 50_000,
        orders: 1_000_000.0,
        irg: false,
    },
];

/// The batch interval the whole sweep runs at: the sub-second regime the
/// sharded engine exists for.
const SCALE_DELTA_MS: u64 = 1_000;

impl ScalePoint {
    /// Materializable spec of this point at `scale`.
    fn spec(&self, scale: f64) -> ScenarioSpec {
        let drivers = ((self.drivers as f64 * scale).round() as usize).max(1);
        let mut s = ScenarioSpec::plain(
            &format!("{}x{}-{}d", self.cols, self.rows, drivers),
            "scale-axis point",
            (self.orders * scale).max(1.0),
            drivers,
        );
        s.grid_cols = self.cols;
        s.grid_rows = self.rows;
        s.sim.batch_interval_ms = Some(SCALE_DELTA_MS);
        s
    }
}

/// Byte-level equality of two runs: counts, revenue bits, the full
/// assignment streams, and the reneged-rider sets (`relaxed_reneges`
/// compares renege *identities* only — the legacy loop charges reneges
/// up to Δ later than the event core, never earlier).
fn results_identical(a: &SimResult, b: &SimResult, relaxed_reneges: bool) -> bool {
    let heads_match = a.served == b.served
        && a.reneged == b.reneged
        && a.still_waiting == b.still_waiting
        && a.total_riders == b.total_riders
        && a.total_revenue.to_bits() == b.total_revenue.to_bits()
        && a.batches == b.batches
        && a.assignments == b.assignments;
    if !heads_match {
        return false;
    }
    if relaxed_reneges {
        let ids = |r: &SimResult| {
            let mut v: Vec<u32> = r.reneges.iter().map(|x| x.rider.0).collect();
            v.sort_unstable();
            v
        };
        ids(a) == ids(b)
    } else {
        a.reneges.len() == b.reneges.len()
            && a.reneges.iter().zip(&b.reneges).all(|(x, y)| {
                (x.rider, x.request_ms, x.renege_ms) == (y.rider, y.request_ms, y.renege_ms)
            })
    }
}

/// FNV-1a (64-bit) fold of one little-endian `u64` into `hash`.
fn fnv_u64(hash: &mut u64, value: u64) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Folds the *simulated* outputs of one run into the digest: counts,
/// revenue bits and the full assignment/renege streams — nothing
/// wall-clock-dependent, so two sweeps that differ only in `--workers`
/// must digest identically.
fn fold_result(hash: &mut u64, r: &SimResult) {
    fnv_u64(hash, r.served as u64);
    fnv_u64(hash, r.reneged as u64);
    fnv_u64(hash, r.still_waiting as u64);
    fnv_u64(hash, r.total_riders as u64);
    fnv_u64(hash, r.total_revenue.to_bits());
    fnv_u64(hash, r.batches as u64);
    for a in &r.assignments {
        fnv_u64(hash, u64::from(a.rider.0));
        fnv_u64(hash, u64::from(a.driver.0));
        fnv_u64(hash, a.batch_ms);
        fnv_u64(hash, a.pickup_ms);
        fnv_u64(hash, a.dropoff_ms);
        fnv_u64(hash, a.revenue.to_bits());
    }
    for x in &r.reneges {
        fnv_u64(hash, u64::from(x.rider.0));
        fnv_u64(hash, x.request_ms);
        fnv_u64(hash, x.renege_ms);
    }
}

/// The FNV-1a offset basis — the digest's initial value.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Runs the scale sweep, prints the tables and dumps the JSON.
pub fn scale(opts: &Options) {
    eprintln!(
        "[scale] grid × fleet sweep at Δ = {SCALE_DELTA_MS} ms, scale {}, {} drain workers — parallel vs sequential vs single-queue engine…",
        opts.scale, opts.workers
    );
    let t0 = std::time::Instant::now();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cell_values: Vec<Value> = Vec::new();
    let mut digest = FNV_OFFSET;
    for point in &POINTS {
        let spec = point.spec(opts.scale);
        let tm = std::time::Instant::now();
        let workload = spec.materialize();
        let materialize_s = tm.elapsed().as_secs_f64();
        let shards = ShardedEventQueue::auto_shard_count(workload.grid.num_regions());
        let mut policies = vec![SweepPolicy::Near];
        if point.irg {
            policies.push(SweepPolicy::IrgReal);
        }
        for policy in policies {
            let ts = std::time::Instant::now();
            let parallel =
                run_scenario_configured(&workload, policy, None, None, Some(opts.workers));
            let parallel_s = ts.elapsed().as_secs_f64();
            let ts = std::time::Instant::now();
            let sharded = run_scenario_configured(&workload, policy, None, None, Some(1));
            let sharded_s = ts.elapsed().as_secs_f64();
            let ts = std::time::Instant::now();
            let single = run_scenario_configured(&workload, policy, None, Some(1), Some(1));
            let single_s = ts.elapsed().as_secs_f64();
            let par_identical = results_identical(&parallel, &sharded, false);
            let identical = results_identical(&sharded, &single, false);
            assert!(
                par_identical,
                "{}/{}: parallel and sequential sharded runs diverged",
                spec.name,
                policy.label()
            );
            assert!(
                identical,
                "{}/{}: sharded and single-queue runs diverged",
                spec.name,
                policy.label()
            );
            fold_result(&mut digest, &parallel);
            let events_per_s = sharded.events_processed as f64 / sharded_s.max(1e-9);
            rows.push(vec![
                spec.name.clone(),
                policy.label().to_string(),
                shards.to_string(),
                sharded.total_riders.to_string(),
                format!("{:.1}%", sharded.service_rate() * 100.0),
                sharded.events_processed.to_string(),
                format!("{:.2}M", events_per_s / 1e6),
                sharded.views_entries_dirtied.to_string(),
                format!("{:.2}", parallel_s),
                format!("{:.2}", sharded_s),
                format!("{:.2}", single_s),
                if par_identical && identical {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
            cell_values.push(json!({
                "point": spec.name,
                "grid_cols": point.cols,
                "grid_rows": point.rows,
                "regions": workload.grid.num_regions(),
                "drivers": workload.schedule.max_drivers(),
                "orders": workload.trips.len(),
                "policy": policy.label(),
                "delta_ms": SCALE_DELTA_MS,
                "event_shards": shards,
                "workers": opts.workers,
                "materialize_s": materialize_s,
                "total_riders": sharded.total_riders,
                "served": sharded.served,
                "reneged": sharded.reneged,
                "service_rate": sharded.service_rate(),
                "total_revenue": sharded.total_revenue,
                "batches": sharded.batches,
                "ticks_executed": sharded.ticks_executed,
                "skip_rate": sharded.skip_rate(),
                "events_processed": sharded.events_processed,
                "events_per_s": events_per_s,
                "views_ops": sharded.views_ops,
                "views_entries_dirtied": sharded.views_entries_dirtied,
                "counts_ops": sharded.counts_ops,
                "index_ops": sharded.index_ops,
                "wall_s_parallel": parallel_s,
                "wall_s_sharded": sharded_s,
                "wall_s_single_queue": single_s,
                "parallel_equals_sharded": par_identical,
                "sharded_equals_single_queue": identical,
            }));
        }
    }
    print_table(
        "Scale axis — grid × fleet at Δ = 1 s, parallel sharded engine (vs sequential, vs forced single queue)",
        &[
            "point",
            "policy",
            "shards",
            "riders",
            "rate",
            "events",
            "ev/s",
            "dirtied",
            "par (s)",
            "seq (s)",
            "1-queue (s)",
            "identical",
        ],
        &rows,
    );

    eprintln!(
        "[scale] six-builtin identity battery (IRG-R × parallel/sharded/single/reference, scale {}) on {} threads…",
        opts.scale, opts.threads
    );
    let workers = opts.workers;
    let specs: Vec<ScenarioSpec> = builtins().iter().map(|s| s.scaled(opts.scale)).collect();
    let identity = parallel_map(specs, opts.threads, move |spec| {
        let workload = spec.materialize();
        let parallel =
            run_scenario_configured(&workload, SweepPolicy::IrgReal, None, None, Some(workers));
        let sharded = run_scenario_configured(&workload, SweepPolicy::IrgReal, None, None, Some(1));
        let single =
            run_scenario_configured(&workload, SweepPolicy::IrgReal, None, Some(1), Some(1));
        let reference = run_scenario_reference(&workload, SweepPolicy::IrgReal);
        (
            spec.name.clone(),
            results_identical(&parallel, &sharded, false),
            results_identical(&sharded, &single, false),
            results_identical(&sharded, &reference, true),
            parallel,
        )
    });
    let id_rows: Vec<Vec<String>> = identity
        .iter()
        .map(|(name, vs_sequential, vs_single, vs_reference, _)| {
            vec![
                name.clone(),
                if *vs_sequential { "yes" } else { "NO" }.to_string(),
                if *vs_single { "yes" } else { "NO" }.to_string(),
                if *vs_reference { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Parallel-engine byte-identity on the built-ins (IRG-R)",
        &[
            "scenario",
            "= workers 1",
            "= single queue",
            "= reference loop",
        ],
        &id_rows,
    );
    for (name, vs_sequential, vs_single, vs_reference, parallel) in &identity {
        assert!(vs_sequential, "{name}: parallel diverged from sequential");
        assert!(vs_single, "{name}: sharded diverged from single queue");
        assert!(vs_reference, "{name}: sharded diverged from reference loop");
        fold_result(&mut digest, parallel);
    }
    let total_wall_s = t0.elapsed().as_secs_f64();

    let identity_values: Vec<Value> = identity
        .iter()
        .map(|(name, vs_sequential, vs_single, vs_reference, _)| {
            json!({
                "scenario": name,
                "policy": "IRG-R",
                "parallel_equals_sharded": vs_sequential,
                "sharded_equals_single_queue": vs_single,
                "sharded_equals_reference": vs_reference,
            })
        })
        .collect();
    let digest_hex = format!("{digest:016x}");
    dump_json(
        opts,
        "BENCH_scale",
        json!({
            "scale": opts.scale,
            "threads": opts.threads,
            "workers": opts.workers,
            "delta_ms": SCALE_DELTA_MS,
            "total_wall_s": total_wall_s,
            "results_digest": digest_hex,
            "cells": cell_values,
            "builtin_identity": identity_values,
        }),
    );
    // The digest also lands in its own file so CI can `cmp` two sweeps
    // that differ only in `--workers` without a JSON parser.
    let digest_path = std::path::Path::new(&opts.out_dir).join("BENCH_scale.digest");
    match std::fs::write(&digest_path, format!("{digest_hex}\n")) {
        Ok(()) => eprintln!("[out] wrote {}", digest_path.display()),
        Err(e) => eprintln!("[warn] cannot write {}: {e}", digest_path.display()),
    }
}
