//! Shared experiment infrastructure: the world (workload + trained
//! models), policy specs, run execution, parallel sweeps and table
//! rendering.

use mrvd_core::{
    DemandOracle, DispatchConfig, Ltg, Near, Polar, PolarConfig, QueueingPolicy, Rand, Upper,
};
use mrvd_demand::{
    count_trips, sample_driver_positions, DemandSeries, NycLikeConfig, NycLikeGenerator,
    TripRecord, SLOTS_PER_DAY,
};
use mrvd_prediction::{
    DeepStConfig, DeepStNet, Gbrt, GbrtConfig, GraphConvConfig, GraphConvNet, HistoricalAverage,
    LinearRegression, Predictor,
};
use mrvd_sim::{DispatchPolicy, SimConfig, SimResult, Simulator};
use mrvd_spatial::{ConstantSpeedModel, Grid, Point};
use rand::{rngs::StdRng, SeedableRng};

/// The paper's test-day order volume (§6.1).
pub const PAPER_ORDERS: f64 = 282_255.0;
/// Training days (paper Table 5).
pub const TRAIN_DAYS: usize = 91;
/// Held-out days for the prediction metrics (paper Table 5's test split).
pub const TEST_DAYS: usize = 10;
/// The dispatch experiments run on the first held-out day.
pub const DISPATCH_DAY: usize = TRAIN_DAYS;

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workload scale: orders and drivers are multiplied by this
    /// (1.0 = the paper's 282K orders / 1K–8K drivers).
    pub scale: f64,
    /// Problem instances averaged per configuration (paper: 10).
    pub instances: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Event-drain workers per simulation for the `scale` sweep's
    /// parallel runs (`SimConfig::workers`; results are byte-identical
    /// for every value).
    pub workers: usize,
    /// DeepST training epochs (quality/runtime knob).
    pub nn_epochs: usize,
    /// Output directory for JSON result dumps.
    pub out_dir: String,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: 0.25,
            instances: 2,
            seed: 42,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            workers: 8,
            nn_epochs: 10,
            out_dir: "results".into(),
        }
    }
}

impl Options {
    /// Scales a paper driver count.
    pub fn drivers(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.scale).round() as usize).max(1)
    }

    /// Scaled order volume.
    pub fn orders(&self) -> f64 {
        PAPER_ORDERS * self.scale
    }
}

/// Trained prediction models, shared (read-only) across runs.
pub struct TrainedModels {
    /// Historical average (stateless).
    pub ha: Box<dyn Predictor + Send + Sync>,
    /// OLS linear regression.
    pub lr: Box<dyn Predictor + Send + Sync>,
    /// Gradient-boosted trees.
    pub gbrt: Box<dyn Predictor + Send + Sync>,
    /// The DeepST-style CNN (the paper's default predictor).
    pub deepst: Box<dyn Predictor + Send + Sync>,
    /// The DeepST-GC graph-conv variant (appendix extension).
    pub graphconv: Box<dyn Predictor + Send + Sync>,
}

/// Everything derived from `(scale, seed)` that experiments share:
/// the generator, the multi-day count history, the dispatch-day trips and
/// the trained models.
pub struct World {
    /// Experiment options the world was built with.
    pub opts: Options,
    /// The 16×16 NYC grid.
    pub grid: Grid,
    /// The workload generator.
    pub generator: NycLikeGenerator,
    /// Count history: days `0..TRAIN_DAYS` synthetic history, days
    /// `TRAIN_DAYS..TRAIN_DAYS+TEST_DAYS` hold the *realized* counts of
    /// the generated test-day trips (day `DISPATCH_DAY` matches `trips`).
    pub series: DemandSeries,
    /// The dispatch day's trips, time-sorted.
    pub trips: Vec<TripRecord>,
    /// The travel model (constant 5 m/s, see DESIGN.md).
    pub travel: ConstantSpeedModel,
    /// Fitted predictors.
    pub models: TrainedModels,
}

impl World {
    /// Builds the world: generates history + test days, trains all
    /// models. Prints progress (model training dominates).
    pub fn build(opts: &Options) -> World {
        let t0 = std::time::Instant::now();
        let generator = NycLikeGenerator::new(NycLikeConfig {
            orders_per_day: opts.orders(),
            seed: opts.seed,
            ..NycLikeConfig::default()
        });
        let grid = generator.grid().clone();
        let total_days = TRAIN_DAYS + TEST_DAYS;
        eprintln!("[world] generating {total_days} days of demand counts…");
        let mut series = generator.generate_counts(total_days);
        // Replace the held-out days with realized trip counts so the
        // "Real" oracle and the predictors see exactly the simulated day.
        let mut dispatch_trips = Vec::new();
        for day in TRAIN_DAYS..total_days {
            let trips = generator.generate_day_trips(day);
            let realized = count_trips(&trips, &grid);
            for slot in 0..SLOTS_PER_DAY {
                for r in 0..grid.num_regions() {
                    series.set(day, slot, r, realized.get(0, slot, r));
                }
            }
            if day == DISPATCH_DAY {
                dispatch_trips = trips;
            }
        }
        eprintln!(
            "[world] dispatch day {DISPATCH_DAY}: {} orders ({:.1}s)",
            dispatch_trips.len(),
            t0.elapsed().as_secs_f64()
        );
        let models = Self::train_models(opts, &grid, &series);
        eprintln!("[world] ready in {:.1}s", t0.elapsed().as_secs_f64());
        World {
            opts: opts.clone(),
            grid,
            generator,
            series,
            trips: dispatch_trips,
            travel: ConstantSpeedModel::default(),
            models,
        }
    }

    fn train_models(opts: &Options, grid: &Grid, series: &DemandSeries) -> TrainedModels {
        let mut ha = HistoricalAverage;
        ha.fit(series, TRAIN_DAYS);
        let t = std::time::Instant::now();
        let mut lr = LinearRegression::new();
        lr.fit(series, TRAIN_DAYS);
        eprintln!("[world] LR fitted ({:.1}s)", t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        let mut gbrt = Gbrt::new(GbrtConfig::default());
        gbrt.fit(series, TRAIN_DAYS);
        eprintln!("[world] GBRT fitted ({:.1}s)", t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        let mut deepst = DeepStNet::new(
            grid.cols() as usize,
            grid.rows() as usize,
            SLOTS_PER_DAY,
            DeepStConfig {
                epochs: opts.nn_epochs,
                ..DeepStConfig::default()
            },
        );
        deepst.fit(series, TRAIN_DAYS);
        eprintln!("[world] DeepST fitted ({:.1}s)", t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        let mut graphconv = GraphConvNet::from_grid(
            grid,
            SLOTS_PER_DAY,
            GraphConvConfig {
                epochs: opts.nn_epochs,
                ..GraphConvConfig::default()
            },
        );
        graphconv.fit(series, TRAIN_DAYS);
        eprintln!(
            "[world] DeepST-GC fitted ({:.1}s)",
            t.elapsed().as_secs_f64()
        );
        TrainedModels {
            ha: Box::new(ha),
            lr: Box::new(lr),
            gbrt: Box::new(gbrt),
            deepst: Box::new(deepst),
            graphconv: Box::new(graphconv),
        }
    }

    /// Initial driver positions for one instance.
    pub fn driver_positions(&self, n: usize, instance: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(self.opts.seed + 1_000 + instance as u64);
        sample_driver_positions(&self.trips, n, &mut rng)
    }
}

/// Prediction model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Historical average.
    Ha,
    /// Linear regression.
    Lr,
    /// Gradient-boosted trees.
    Gbrt,
    /// The DeepST-style CNN (the paper's default).
    DeepSt,
    /// The graph-conv variant.
    GraphConv,
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Ha => "HA",
            ModelKind::Lr => "LR",
            ModelKind::Gbrt => "GBRT",
            ModelKind::DeepSt => "DeepST",
            ModelKind::GraphConv => "DeepST-GC",
        }
    }

    /// All models of the paper's Table 6 plus the appendix variant.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::DeepSt,
            ModelKind::Ha,
            ModelKind::Lr,
            ModelKind::Gbrt,
            ModelKind::GraphConv,
        ]
    }

    /// The trained instance inside a [`World`].
    pub fn model<'w>(&self, world: &'w World) -> &'w (dyn Predictor + Send + Sync) {
        match self {
            ModelKind::Ha => world.models.ha.as_ref(),
            ModelKind::Lr => world.models.lr.as_ref(),
            ModelKind::Gbrt => world.models.gbrt.as_ref(),
            ModelKind::DeepSt => world.models.deepst.as_ref(),
            ModelKind::GraphConv => world.models.graphconv.as_ref(),
        }
    }
}

/// Demand-oracle selector for the `-P` / `-R` policy flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Ground-truth counts of the dispatch day.
    Real,
    /// A trained model.
    Pred(ModelKind),
}

impl OracleKind {
    fn build(&self, world: &World) -> DemandOracle {
        match self {
            OracleKind::Real => DemandOracle::real(world.series.clone(), DISPATCH_DAY),
            OracleKind::Pred(kind) => DemandOracle::predicted(
                kind.model(world).clone_box(),
                world.series.clone(),
                DISPATCH_DAY,
            ),
        }
    }
}

/// A complete policy specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Idle-ratio greedy (Algorithm 2).
    Irg(OracleKind),
    /// Local search (Algorithm 3).
    Ls(OracleKind),
    /// The Appendix C served-orders variant.
    Short(OracleKind),
    /// IRG with the uniform-ET ablation.
    IrgUniformEt(OracleKind),
    /// LS with the uniform-ET ablation.
    LsUniformEt(OracleKind),
    /// Long-trip greedy.
    Ltg,
    /// Nearest-trip greedy.
    Near,
    /// Random valid assignment.
    Rand,
    /// POLAR with the given oracle.
    Polar(OracleKind),
    /// The revenue upper bound.
    Upper,
}

impl PolicySpec {
    /// Display label (matches the paper's legends).
    pub fn label(&self) -> String {
        let suffix = |o: &OracleKind| match o {
            OracleKind::Real => "R".to_string(),
            OracleKind::Pred(ModelKind::DeepSt) => "P".to_string(),
            OracleKind::Pred(m) => format!("P[{}]", m.label()),
        };
        match self {
            PolicySpec::Irg(o) => format!("IRG-{}", suffix(o)),
            PolicySpec::Ls(o) => format!("LS-{}", suffix(o)),
            PolicySpec::Short(o) => format!("SHORT-{}", suffix(o)),
            PolicySpec::IrgUniformEt(o) => format!("IRG-{}*", suffix(o)),
            PolicySpec::LsUniformEt(o) => format!("LS-{}*", suffix(o)),
            PolicySpec::Ltg => "LTG".into(),
            PolicySpec::Near => "NEAR".into(),
            PolicySpec::Rand => "RAND".into(),
            PolicySpec::Polar(o) => format!("POLAR-{}", suffix(o)),
            PolicySpec::Upper => "UPPER".into(),
        }
    }

    /// Whether the per-batch behaviour depends on the scheduling window
    /// `t_c` (used to reuse runs across the Figure 9 sweep).
    pub fn depends_on_tc(&self) -> bool {
        !matches!(
            self,
            PolicySpec::Ltg | PolicySpec::Near | PolicySpec::Rand | PolicySpec::Upper
        )
    }

    /// Builds the policy for one run.
    pub fn build(
        &self,
        world: &World,
        dispatch_cfg: &DispatchConfig,
        n_drivers: usize,
        instance: usize,
    ) -> Box<dyn DispatchPolicy> {
        match self {
            PolicySpec::Irg(o) => {
                Box::new(QueueingPolicy::irg(dispatch_cfg.clone(), o.build(world)))
            }
            PolicySpec::Ls(o) => Box::new(QueueingPolicy::ls(dispatch_cfg.clone(), o.build(world))),
            PolicySpec::Short(o) => {
                Box::new(QueueingPolicy::short(dispatch_cfg.clone(), o.build(world)))
            }
            PolicySpec::IrgUniformEt(o) => {
                let cfg = DispatchConfig {
                    uniform_et: true,
                    ..dispatch_cfg.clone()
                };
                Box::new(QueueingPolicy::irg(cfg, o.build(world)))
            }
            PolicySpec::LsUniformEt(o) => {
                let cfg = DispatchConfig {
                    uniform_et: true,
                    ..dispatch_cfg.clone()
                };
                Box::new(QueueingPolicy::ls(cfg, o.build(world)))
            }
            PolicySpec::Ltg => Box::new(Ltg::default()),
            PolicySpec::Near => Box::new(Near::default()),
            PolicySpec::Rand => Box::new(Rand::new(world.opts.seed + 3_000 + instance as u64)),
            PolicySpec::Polar(o) => Box::new(Polar::new(
                PolarConfig::default(),
                &o.build(world),
                &world.grid,
                n_drivers,
            )),
            PolicySpec::Upper => Box::new(Upper),
        }
    }
}

/// Parameters of a single simulation run.
#[derive(Debug, Clone)]
pub struct RunCfg {
    /// Fleet size.
    pub n_drivers: usize,
    /// Batch interval Δ, ms.
    pub delta_ms: u64,
    /// Base pickup wait τ, ms.
    pub base_wait_ms: u64,
    /// Scheduling window `t_c`, ms.
    pub tc_ms: u64,
    /// Instance index (drives all per-instance seeds).
    pub instance: usize,
}

impl RunCfg {
    /// The paper's default configuration at a given fleet size
    /// (Δ = 3 s, τ = 180 s, t_c = 15 min).
    pub fn defaults(n_drivers: usize, instance: usize) -> Self {
        Self {
            n_drivers,
            delta_ms: 3_000,
            base_wait_ms: 180_000,
            tc_ms: 15 * 60 * 1000,
            instance,
        }
    }
}

/// Executes one policy for one day.
pub fn run_one(world: &World, spec: PolicySpec, cfg: &RunCfg) -> SimResult {
    let dispatch_cfg = DispatchConfig {
        tc_ms: cfg.tc_ms,
        ..DispatchConfig::default()
    };
    let mut policy = spec.build(world, &dispatch_cfg, cfg.n_drivers, cfg.instance);
    let sim_cfg = SimConfig {
        batch_interval_ms: cfg.delta_ms,
        base_wait_ms: cfg.base_wait_ms,
        seed: world.opts.seed + 2_000 + cfg.instance as u64,
        ..SimConfig::default()
    };
    let sim = Simulator::new(sim_cfg, &world.travel, &world.grid);
    let drivers = world.driver_positions(cfg.n_drivers, cfg.instance);
    sim.run(&world.trips, &drivers, policy.as_mut())
}

/// Mean results of one `(spec, cfg)` cell across instances.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Policy label.
    pub label: String,
    /// Mean total revenue.
    pub revenue: f64,
    /// Mean served orders.
    pub served: f64,
    /// Mean reneged orders.
    pub reneged: f64,
    /// Mean per-batch wall time, seconds.
    pub batch_time_s: f64,
}

/// Runs `(spec, cfg)` for all instances and averages. `cfg.instance` is
/// overwritten per instance.
pub fn run_cell(world: &World, spec: PolicySpec, cfg: &RunCfg) -> CellResult {
    let mut revenue = 0.0;
    let mut served = 0.0;
    let mut reneged = 0.0;
    let mut batch = 0.0;
    let n = world.opts.instances.max(1);
    for i in 0..n {
        let mut c = cfg.clone();
        c.instance = i;
        let r = run_one(world, spec, &c);
        revenue += r.total_revenue;
        served += r.served as f64;
        reneged += r.reneged as f64;
        batch += r.mean_batch_time_s();
    }
    let inv = 1.0 / n as f64;
    CellResult {
        label: spec.label(),
        revenue: revenue * inv,
        served: served * inv,
        reneged: reneged * inv,
        batch_time_s: batch * inv,
    }
}

/// Runs a list of jobs on a small worker pool, preserving output order
/// (shared with the scenario sweep runner).
pub use mrvd_stats::parallel_map;

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{c:<w$}", w = widths[i]));
            } else {
                s.push_str(&format!("  {c:>w$}", w = widths[i]));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Writes a JSON value into `<out_dir>/<name>.json`.
pub fn dump_json(opts: &Options, name: &str, value: serde_json::Value) {
    let dir = std::path::Path::new(&opts.out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[warn] cannot create {}: {e}", opts.out_dir);
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&value).expect("serializable"),
    ) {
        Ok(()) => eprintln!("[out] wrote {}", path.display()),
        Err(e) => eprintln!("[warn] cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_scale_drivers() {
        let opts = Options {
            scale: 0.25,
            ..Options::default()
        };
        assert_eq!(opts.drivers(3_000), 750);
        assert_eq!(opts.drivers(1), 1); // never zero
        assert!((opts.orders() - PAPER_ORDERS * 0.25).abs() < 1e-9);
    }

    #[test]
    fn policy_labels_match_paper_legends() {
        assert_eq!(PolicySpec::Irg(OracleKind::Real).label(), "IRG-R");
        assert_eq!(
            PolicySpec::Ls(OracleKind::Pred(ModelKind::DeepSt)).label(),
            "LS-P"
        );
        assert_eq!(
            PolicySpec::Irg(OracleKind::Pred(ModelKind::Gbrt)).label(),
            "IRG-P[GBRT]"
        );
        assert_eq!(PolicySpec::Upper.label(), "UPPER");
        assert_eq!(PolicySpec::IrgUniformEt(OracleKind::Real).label(), "IRG-R*");
    }

    #[test]
    fn tc_dependence_flags() {
        assert!(PolicySpec::Irg(OracleKind::Real).depends_on_tc());
        assert!(PolicySpec::Polar(OracleKind::Real).depends_on_tc());
        assert!(!PolicySpec::Rand.depends_on_tc());
        assert!(!PolicySpec::Ltg.depends_on_tc());
        assert!(!PolicySpec::Upper.depends_on_tc());
    }

    #[test]
    fn run_cfg_defaults_match_paper_table2() {
        let cfg = RunCfg::defaults(100, 0);
        assert_eq!(cfg.delta_ms, 3_000);
        assert_eq!(cfg.base_wait_ms, 180_000);
        assert_eq!(cfg.tc_ms, 15 * 60 * 1000);
    }
}
