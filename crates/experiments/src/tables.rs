//! The paper's tables: 3 (idle-time estimation), 4 (prediction × policy
//! revenue), 6 (prediction accuracy), 7–8 (chi-square Poisson tests).

use mrvd_spatial::Point;
use mrvd_stats::{chi_square_gof_poisson, mae, relative_rmse, rmse};
use serde_json::json;

use crate::common::{
    dump_json, parallel_map, print_table, run_cell, ModelKind, OracleKind, PolicySpec, RunCfg,
    World, TEST_DAYS, TRAIN_DAYS,
};

/// Paper reference rows for Table 3 (#drivers, MAE s, RMSE %, real RMSE s).
const PAPER_TABLE3: [(usize, f64, f64, f64); 8] = [
    (1_000, 2.12, 5.02, 8.73),
    (2_000, 1.89, 4.76, 6.89),
    (3_000, 1.78, 4.53, 4.43),
    (4_000, 2.04, 5.11, 7.04),
    (5_000, 2.22, 5.47, 11.24),
    (6_000, 2.54, 5.93, 13.81),
    (7_000, 3.20, 6.45, 26.39),
    (8_000, 4.34, 7.43, 44.43),
];

/// The idle-time estimation protocol censors realized idle intervals
/// beyond one scheduling window: §4.1 scopes the steady-state analysis to
/// "a short time period" `t_c`, so a driver still idle when the window
/// ends is re-analyzed by the next window rather than predicted hours
/// ahead. Without censoring, overnight stranding (hours of idle the model
/// never claims to predict) dominates the error metrics.
const IDLE_CENSOR_S: f64 = 900.0;

/// Table 3: accuracy of the queueing-theoretic idle-time estimates,
/// varying the fleet from 1K to 8K (scaled).
pub fn table3(world: &World) {
    let jobs: Vec<usize> = PAPER_TABLE3.iter().map(|r| r.0).collect();
    let opts = &world.opts;
    let rows = parallel_map(jobs, opts.threads, |&paper_n| {
        let n = opts.drivers(paper_n);
        let mut est = Vec::new();
        let mut real = Vec::new();
        let mut censored = 0usize;
        for i in 0..opts.instances {
            let cfg = RunCfg::defaults(n, i);
            let res = crate::common::run_one(
                world,
                PolicySpec::Irg(OracleKind::Pred(ModelKind::DeepSt)),
                &cfg,
            );
            for (e, r) in res.idle_estimate_pairs() {
                if r > IDLE_CENSOR_S {
                    censored += 1;
                } else {
                    est.push(e.min(IDLE_CENSOR_S));
                    real.push(r);
                }
            }
        }
        (paper_n, n, est, real, censored)
    });
    println!(
        "(pairs with realized idle > {IDLE_CENSOR_S:.0}s are censored: the §4 analysis is \
         scoped to one scheduling window — see EXPERIMENTS.md)"
    );
    let mut out_rows = Vec::new();
    let mut json_rows = Vec::new();
    for (paper_n, n, est, real, censored) in &rows {
        let (m, rel, rr) = if est.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN)
        } else {
            (mae(est, real), relative_rmse(est, real), rmse(est, real))
        };
        let total = est.len() + censored;
        let paper = PAPER_TABLE3
            .iter()
            .find(|r| r.0 == *paper_n)
            .expect("paper row");
        out_rows.push(vec![
            format!("{paper_n} (×{:.2} → {n})", world.opts.scale),
            format!("{m:.2}"),
            format!("{rel:.2}"),
            format!("{rr:.2}"),
            format!("{:.0}%", 100.0 * *censored as f64 / total.max(1) as f64),
            format!("{:.2}", paper.1),
            format!("{:.2}", paper.2),
            format!("{:.2}", paper.3),
        ]);
        json_rows.push(json!({
            "paper_drivers": paper_n, "drivers": n,
            "mae_s": m, "rmse_pct": rel, "real_rmse_s": rr,
            "pairs": est.len(), "censored": censored,
        }));
    }
    print_table(
        "Table 3 — estimated idle time accuracy (ours vs paper)",
        &[
            "#drivers",
            "MAE (s)",
            "RMSE (%)",
            "RealRMSE (s)",
            "censored",
            "paper MAE",
            "paper RMSE%",
            "paper RealRMSE",
        ],
        &out_rows,
    );
    dump_json(&world.opts, "table3", json!({ "rows": json_rows }));
}

/// Paper reference values for Table 4 (total revenue ×10⁸).
const PAPER_TABLE4: [(&str, [f64; 5]); 3] = [
    ("IRG", [2.2460, 2.3203, 2.3446, 2.3756, 2.3899]),
    ("LS", [2.2921, 2.3725, 2.4267, 2.4625, 2.4727]),
    ("POLAR", [2.0460, 2.2293, 2.2767, 2.2953, 2.3285]),
];

/// Table 4: effect of the prediction method on total revenue for the
/// three prediction-driven approaches.
pub fn table4(world: &World) {
    let oracles = [
        OracleKind::Pred(ModelKind::Ha),
        OracleKind::Pred(ModelKind::Lr),
        OracleKind::Pred(ModelKind::Gbrt),
        OracleKind::Pred(ModelKind::DeepSt),
        OracleKind::Real,
    ];
    type SpecCtor = fn(OracleKind) -> PolicySpec;
    let algos: [(&str, SpecCtor); 3] = [
        ("IRG", PolicySpec::Irg),
        ("LS", PolicySpec::Ls),
        ("POLAR", PolicySpec::Polar),
    ];
    let n = world.opts.drivers(3_000);
    let mut jobs = Vec::new();
    for (ai, (_, mk)) in algos.iter().enumerate() {
        for (oi, o) in oracles.iter().enumerate() {
            jobs.push((ai, oi, mk(*o)));
        }
    }
    let results = parallel_map(jobs, world.opts.threads, |&(ai, oi, spec)| {
        (ai, oi, run_cell(world, spec, &RunCfg::defaults(n, 0)))
    });
    let mut grid = vec![vec![0.0f64; oracles.len()]; algos.len()];
    for (ai, oi, cell) in &results {
        grid[*ai][*oi] = cell.revenue;
    }
    let mut rows = Vec::new();
    for (ai, (name, _)) in algos.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for v in &grid[ai] {
            row.push(format!("{:.4}", v / 1e8 / world.opts.scale));
        }
        let paper = PAPER_TABLE4.iter().find(|p| p.0 == *name).expect("row");
        for v in paper.1 {
            row.push(format!("{v:.4}"));
        }
        rows.push(row);
    }
    print_table(
        "Table 4 — revenue ×10⁸ by prediction method (ours, scale-normalized | paper)",
        &[
            "approach", "HA", "LR", "GBRT", "DeepST", "Real", "p:HA", "p:LR", "p:GBRT", "p:DeepST",
            "p:Real",
        ],
        &rows,
    );
    dump_json(
        &world.opts,
        "table4",
        json!({
            "oracles": ["HA", "LR", "GBRT", "DeepST", "Real"],
            "revenue": grid,
        }),
    );
}

/// Paper reference values for Table 6 (RMSE %, real RMSE).
const PAPER_TABLE6: [(&str, f64, f64); 4] = [
    ("DeepST", 2.30, 15.03),
    ("HA", 7.46, 48.21),
    ("LR", 3.40, 21.66),
    ("GBRT", 2.74, 17.67),
];

/// Table 6: accuracy of the demand-prediction models on the held-out
/// days (no refitting — the world's trained models are evaluated).
///
/// "RMSE (%)" is the real RMSE relative to the *peak* cell count of the
/// training range — the only normalization consistent with the paper's
/// own numbers (its Table 5 peak of 853 records/slot and real RMSE of
/// 15.03 give ≈ 1.8%, matching its reported 2.30%; a mean-normalized
/// figure could never reach 2.3% through Poisson noise alone).
pub fn table6(world: &World) {
    let series = &world.series;
    let peak = series.max_value().max(1.0);
    println!("(RMSE % is relative to the peak cell count: {peak:.0})");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for kind in ModelKind::all() {
        let model = kind.model(world);
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for day in TRAIN_DAYS..TRAIN_DAYS + TEST_DAYS {
            for slot in 0..series.slots_per_day() {
                let p = model.predict(series, day, slot);
                for (r, &v) in p.iter().enumerate() {
                    pred.push(v);
                    truth.push(series.get(day, slot, r));
                }
            }
        }
        let real = rmse(&pred, &truth);
        let rel = 100.0 * real / peak;
        let m = mae(&pred, &truth);
        let paper = PAPER_TABLE6.iter().find(|p| p.0 == kind.label());
        rows.push(vec![
            kind.label().to_string(),
            format!("{rel:.2}"),
            format!("{real:.2}"),
            format!("{m:.2}"),
            paper.map_or("—".into(), |p| format!("{:.2}", p.1)),
            paper.map_or("—".into(), |p| format!("{:.2}", p.2)),
        ]);
        json_rows.push(json!({
            "model": kind.label(), "rmse_pct": rel, "real_rmse": real, "mae": m,
        }));
    }
    print_table(
        "Table 6 — demand prediction accuracy on held-out days (ours | paper)",
        &[
            "model",
            "RMSE (%)",
            "RealRMSE",
            "MAE",
            "p:RMSE%",
            "p:RealRMSE",
        ],
        &rows,
    );
    dump_json(&world.opts, "table6", json!({ "rows": json_rows }));
}

/// The two probe rectangles of the paper's Appendix B.
const REGION1: (Point, Point) = (Point::new(-74.01, 40.70), Point::new(-73.97, 40.80));
const REGION2: (Point, Point) = (Point::new(-73.97, 40.70), Point::new(-73.93, 40.80));

fn in_rect(p: Point, rect: (Point, Point)) -> bool {
    p.lon >= rect.0.lon && p.lon < rect.1.lon && p.lat >= rect.0.lat && p.lat < rect.1.lat
}

/// Per-minute counts over 21 weekdays for a rectangle and a 10-minute
/// window, for pickups (`destinations = false`) or dropoffs (`true`,
/// the paper's rejoined-driver proxy).
fn minute_samples(
    world: &World,
    rect: (Point, Point),
    start_min: u64,
    destinations: bool,
) -> Vec<u64> {
    let mut samples = Vec::new();
    let mut day = 0usize;
    let mut weekdays = 0usize;
    while weekdays < 21 {
        if day % 7 < 5 {
            let trips = world.generator.generate_day_trips(day);
            let mut counts = [0u64; 10];
            for t in &trips {
                let p = if destinations { t.dropoff } else { t.pickup };
                if !in_rect(p, rect) {
                    continue;
                }
                let minute = t.request_ms / 60_000;
                if minute >= start_min && minute < start_min + 10 {
                    counts[(minute - start_min) as usize] += 1;
                }
            }
            samples.extend_from_slice(&counts);
            weekdays += 1;
        }
        day += 1;
    }
    assert_eq!(samples.len(), 210);
    samples
}

/// Tables 7–8 and Figures 11–12: chi-square goodness-of-fit of order and
/// rejoined-driver arrivals against the Poisson hypothesis, with the
/// observed/expected histograms.
pub fn table7_8(world: &World, destinations: bool, show_histograms: bool) {
    let what = if destinations {
        "drivers (Table 8 / Fig. 12)"
    } else {
        "orders (Table 7 / Fig. 11)"
    };
    let cases = [
        ("region 1", REGION1, 7 * 60),
        ("region 1", REGION1, 8 * 60),
        ("region 2", REGION2, 7 * 60),
        ("region 2", REGION2, 8 * 60),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (name, rect, start) in cases {
        let samples = minute_samples(world, rect, start, destinations);
        let outcome = chi_square_gof_poisson(&samples, 0.05, 5.0);
        rows.push(vec![
            name.to_string(),
            format!("{}:00–{0}:10", start / 60),
            format!("{}", outcome.bins),
            format!("{:.4}", outcome.statistic),
            format!("{:.3}", outcome.critical),
            format!("{:.2}", outcome.lambda_hat),
            if outcome.accepted {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        json_rows.push(json!({
            "region": name, "start_min": start, "bins": outcome.bins,
            "statistic": outcome.statistic, "critical": outcome.critical,
            "accepted": outcome.accepted, "lambda_hat": outcome.lambda_hat,
        }));
        if show_histograms {
            println!(
                "\n-- {what}: {name}, {}:00 — observed vs expected --",
                start / 60
            );
            for (i, ((o, e), range)) in outcome
                .observed
                .iter()
                .zip(&outcome.expected)
                .zip(&outcome.bin_ranges)
                .enumerate()
            {
                let bar_o = "#".repeat((*o as usize).min(80));
                let bar_e = "·".repeat((*e as usize).min(80));
                println!(
                    "bin {i} [{:>3}..{:<3}) obs {o:>5.0} {bar_o}\n            exp {e:>5.1} {bar_e}",
                    range.0, range.1
                );
            }
        }
    }
    print_table(
        &format!("Poisson chi-square test of {what} (accept at α = 0.05)"),
        &[
            "region",
            "window",
            "r",
            "k",
            "chi2_r-1(0.05)",
            "λ̂/min",
            "accepted",
        ],
        &rows,
    );
    dump_json(
        &world.opts,
        if destinations { "table8" } else { "table7" },
        json!({ "rows": json_rows }),
    );
}

/// The ablation of DESIGN.md E13: destination-aware ET vs uniform ET.
pub fn ablation(world: &World) {
    let n = world.opts.drivers(3_000);
    let specs = [
        PolicySpec::Irg(OracleKind::Real),
        PolicySpec::IrgUniformEt(OracleKind::Real),
        PolicySpec::Ls(OracleKind::Real),
        PolicySpec::LsUniformEt(OracleKind::Real),
    ];
    let results = parallel_map(specs.to_vec(), world.opts.threads, |spec| {
        run_cell(world, *spec, &RunCfg::defaults(n, 0))
    });
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                format!("{:.0}", c.revenue),
                format!("{:.0}", c.served),
                format!("{:.2}", c.batch_time_s * 1000.0),
            ]
        })
        .collect();
    print_table(
        "Ablation — destination-aware ET vs uniform ET (* = uniform)",
        &["policy", "revenue", "served", "batch (ms)"],
        &rows,
    );
    dump_json(
        &world.opts,
        "ablation",
        json!({
            "rows": results.iter().map(|c| json!({
                "policy": c.label, "revenue": c.revenue, "served": c.served,
            })).collect::<Vec<_>>()
        }),
    );
}
