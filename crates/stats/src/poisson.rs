//! Poisson sampling and arrival processes.
//!
//! The queueing model of the paper (§4.1) assumes rider and rejoined-driver
//! arrivals in a region follow Poisson distributions over short windows;
//! its Appendix B validates this on the NYC data with chi-square tests.
//! The synthetic workload generator therefore drives arrivals from the
//! processes defined here, which keeps the reproduction statistically
//! equivalent to the paper's input.

use crate::gamma::ln_gamma;
use rand::Rng;

/// Draws one sample from `Poisson(lambda)`.
///
/// Uses Knuth's product-of-uniforms method for small rates and the
/// PTRS transformed-rejection method (Hörmann 1993) for `lambda >= 10`,
/// which is exact and O(1) in expectation.
///
/// `lambda == 0` deterministically returns 0.
///
/// # Panics
/// Panics if `lambda` is negative or not finite.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "sample_poisson: lambda must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        0
    } else if lambda < 10.0 {
        knuth(rng, lambda)
    } else {
        ptrs(rng, lambda)
    }
}

/// Knuth's method: count uniforms until their product drops below e^{−λ}.
fn knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let limit = (-lambda).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

/// Hörmann's PTRS transformed-rejection sampler for λ ≥ 10.
fn ptrs<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let slam = lambda.sqrt();
    let loglam = lambda.ln();
    let b = 0.931 + 2.53 * slam;
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
        let rhs = -lambda + k * loglam - ln_gamma(k + 1.0);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

/// Poisson probability mass function `P(X = k)` for rate `lambda`.
///
/// Computed in log space to stay accurate for large `lambda`/`k`.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson_pmf: lambda must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    (-lambda + kf * lambda.ln() - ln_gamma(kf + 1.0)).exp()
}

/// A homogeneous Poisson arrival process over a time interval.
///
/// Generates sorted arrival timestamps by sampling i.i.d. exponential
/// inter-arrival gaps. Rates are per unit of the same time axis as the
/// interval (the simulator uses milliseconds end-to-end, so rates there are
/// per millisecond).
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    /// Arrival rate per time unit. Must be finite and non-negative.
    pub rate: f64,
}

impl PoissonProcess {
    /// Creates a process with the given `rate` (arrivals per time unit).
    ///
    /// # Panics
    /// Panics if `rate` is negative or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "PoissonProcess: rate must be finite and non-negative, got {rate}"
        );
        Self { rate }
    }

    /// Generates the sorted arrival times falling in `[start, end)`.
    ///
    /// Returns an empty vector when the rate is zero or the interval is
    /// empty or inverted.
    pub fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R, start: f64, end: f64) -> Vec<f64> {
        let mut out = Vec::new();
        if self.rate <= 0.0 || end <= start {
            return out;
        }
        let mut t = start;
        loop {
            // Exponential(rate) gap via inverse transform; `1 − U` avoids ln(0).
            let u: f64 = rng.gen();
            t += -((1.0 - u).ln()) / self.rate;
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }

    /// Samples the number of arrivals in an interval of length `dt`
    /// (equivalently `Poisson(rate · dt)`).
    pub fn count_in<R: Rng + ?Sized>(&self, rng: &mut R, dt: f64) -> u64 {
        assert!(dt >= 0.0, "count_in: dt must be non-negative, got {dt}");
        sample_poisson(rng, self.rate * dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zero_rate_yields_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        let p = PoissonProcess::new(0.0);
        assert!(p.arrivals(&mut rng, 0.0, 100.0).is_empty());
    }

    #[test]
    fn sample_mean_and_variance_match_lambda() {
        let mut rng = StdRng::seed_from_u64(42);
        for &lambda in &[0.5, 3.0, 9.9, 10.0, 47.0, 400.0] {
            let n = 40_000;
            let samples: Vec<f64> = (0..n)
                .map(|_| sample_poisson(&mut rng, lambda) as f64)
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            // Standard error of the mean is sqrt(λ/n); allow 5 sigma.
            let se = (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < 5.0 * se + 1e-9,
                "λ={lambda}: mean {mean}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda + 0.2,
                "λ={lambda}: var {var}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.1, 1.0, 5.0, 30.0] {
            let sum: f64 = (0..(lambda as u64 * 4 + 60))
                .map(|k| poisson_pmf(lambda, k))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "λ={lambda}: Σpmf = {sum}");
        }
    }

    #[test]
    fn pmf_matches_empirical_frequencies() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 4.0;
        let n = 100_000;
        let mut counts = [0u64; 16];
        for _ in 0..n {
            let k = sample_poisson(&mut rng, lambda) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = poisson_pmf(lambda, k as u64) * n as f64;
            if expect > 50.0 {
                // Allow 5 sigma of multinomial noise around the expectation.
                let sigma = expect.sqrt();
                assert!(
                    (c as f64 - expect).abs() < 5.0 * sigma,
                    "k={k}: observed {c}, expected {expect:.1}"
                );
            }
        }
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = PoissonProcess::new(0.2);
        let arr = p.arrivals(&mut rng, 10.0, 500.0);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| (10.0..500.0).contains(&t)));
        // Expected count = rate * length = 98; allow wide slack.
        assert!(arr.len() > 50 && arr.len() < 160, "got {}", arr.len());
    }

    #[test]
    fn arrival_count_matches_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = PoissonProcess::new(2.5);
        let total: usize = (0..200)
            .map(|_| p.arrivals(&mut rng, 0.0, 100.0).len())
            .sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 250.0).abs() < 10.0, "mean count {mean}");
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn negative_lambda_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_poisson(&mut rng, -1.0);
    }
}
