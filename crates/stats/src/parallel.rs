//! A minimal scoped worker pool for embarrassingly parallel jobs.
//!
//! Shared by the experiment harness and the scenario sweep runner: both
//! fan a fixed job list over `std::thread::scope` workers and need the
//! results back in input order so sweeps stay deterministic regardless
//! of the worker count.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `jobs` on up to `threads` scoped workers, preserving input
/// order. Worker count is clamped to `[1, jobs.len()]`; a panicking job
/// propagates once the scope joins.
pub fn parallel_map<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let jobs_ref = &jobs;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(n.max(1)) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some(i) = next else { break };
                let r = f_ref(&jobs_ref[i]);
                *results[i].lock().expect("result lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("job skipped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..40).collect::<Vec<u64>>(), 4, |&j| j * j);
        assert_eq!(out, (0..40).map(|j| j * j).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_jobs_and_excess_threads() {
        assert_eq!(
            parallel_map(Vec::<u64>::new(), 8, |&j| j),
            Vec::<u64>::new()
        );
        assert_eq!(parallel_map(vec![1u64, 2], 16, |&j| j + 1), vec![2, 3]);
    }
}
