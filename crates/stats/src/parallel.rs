//! A minimal scoped worker pool for embarrassingly parallel jobs.
//!
//! Shared by the experiment harness and the scenario sweep runner: both
//! fan a fixed job list over `std::thread::scope` workers and need the
//! results back in input order so sweeps stay deterministic regardless
//! of the worker count. [`BroadcastPool`] is the second shape the
//! simulation engine needs: a *persistent* pool whose workers survive
//! across many small rounds, so a hot loop can broadcast one job per
//! barrier without paying a thread spawn every time.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::Scope;

/// Runs `jobs` on up to `threads` scoped workers, preserving input
/// order. Worker count is clamped to `[1, jobs.len()]`; a panicking job
/// propagates once the scope joins.
pub fn parallel_map<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let jobs_ref = &jobs;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(n.max(1)) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some(i) = next else { break };
                let r = f_ref(&jobs_ref[i]);
                *results[i].lock().expect("result lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("job skipped"))
        .collect()
}

/// Shared pool state behind the mutex: the current round number, its
/// job, and how many workers have yet to finish it.
struct BroadcastState<J> {
    round: u64,
    job: Option<J>,
    remaining: usize,
    shutdown: bool,
    panicked: bool,
}

struct BroadcastShared<J> {
    state: Mutex<BroadcastState<J>>,
    /// Signals workers that a new round (or shutdown) is available.
    work: Condvar,
    /// Signals the caller that the last worker of a round finished.
    done: Condvar,
}

/// Recover from a poisoned lock: the pool never panics while holding
/// the state mutex itself, so poison can only come from a caller's
/// `catch_unwind` around a rejected round — the state is still
/// consistent and continuing is safe.
fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A persistent broadcast pool over scoped workers: every call to
/// [`BroadcastPool::run`] hands *the same job* to every worker (each
/// also gets its index, so workers pick their own slice of the work)
/// and blocks until all of them finish — a reusable barrier, with no
/// per-round thread spawn.
///
/// Built for the simulation engine's parallel event drains, where a
/// city-scale day crosses tens of thousands of batch barriers: the
/// workers are spawned once per run on the caller's
/// [`std::thread::scope`] and then only park on a condvar between
/// rounds.
///
/// The worker count is fixed at construction and rounds are strictly
/// sequential: a `run` that overlaps an in-flight round (from another
/// thread, or a worker re-entering the pool) is rejected by panic
/// *before* any state changes, so the in-flight round — and the pool —
/// continue cleanly. A panic inside a worker closure is propagated to
/// the caller of `run`.
pub struct BroadcastPool<J> {
    shared: Arc<BroadcastShared<J>>,
    workers: usize,
}

impl<J: Copy + Send + 'static> BroadcastPool<J> {
    /// Spawns `workers` threads on `scope` running `f(worker_index,
    /// job)` once per broadcast round. The threads exit when the pool
    /// is dropped (and are joined when the scope ends).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new<'scope, F>(scope: &'scope Scope<'scope, '_>, workers: usize, f: F) -> Self
    where
        F: Fn(usize, J) + Send + Sync + 'scope,
    {
        assert!(workers > 0, "BroadcastPool: need at least one worker");
        let shared = Arc::new(BroadcastShared {
            state: Mutex::new(BroadcastState {
                round: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panicked: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let f = Arc::new(f);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    let job = {
                        let mut s = relock(shared.state.lock());
                        loop {
                            if s.shutdown {
                                return;
                            }
                            if s.round > seen {
                                break;
                            }
                            s = relock(shared.work.wait(s));
                        }
                        seen = s.round;
                        // lint:allow(C002): run() sets `job` before bumping `round` under the same lock; a round without a job is unreachable
                        s.job.expect("BroadcastPool: round without a job")
                    };
                    // The guard marks this worker done even if `f`
                    // unwinds, so `run` can never deadlock on a lost
                    // decrement; the panic flag makes it propagate.
                    let guard = DoneGuard { shared: &shared };
                    f(w, job);
                    drop(guard);
                }
            });
        }
        Self { shared, workers }
    }

    /// The fixed worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Broadcasts `job` to every worker and blocks until all of them
    /// finish it.
    ///
    /// # Panics
    /// Panics if a round is already in flight (rounds are strictly
    /// sequential — the rejected call leaves the pool fully usable), or
    /// if any worker panicked while running `job`.
    pub fn run(&self, job: J) {
        let mut s = relock(self.shared.state.lock());
        if s.remaining != 0 {
            drop(s);
            // lint:allow(C002): deliberate fail-fast on API misuse (overlapping rounds); documented under # Panics
            panic!(
                "BroadcastPool: a round is already in flight \
                 (rounds are strictly sequential and the worker count is fixed at construction)"
            );
        }
        if s.panicked {
            drop(s);
            // lint:allow(C002): deliberate panic propagation — a worker died; silently continuing would corrupt results
            panic!("BroadcastPool: a worker panicked in an earlier round");
        }
        s.round += 1;
        s.job = Some(job);
        s.remaining = self.workers;
        self.shared.work.notify_all();
        while s.remaining > 0 {
            s = relock(self.shared.done.wait(s));
        }
        let panicked = s.panicked;
        drop(s);
        if panicked {
            // lint:allow(C002): deliberate panic propagation — a worker died this round; documented under # Panics
            panic!("BroadcastPool: a worker panicked");
        }
    }
}

impl<J> Drop for BroadcastPool<J> {
    fn drop(&mut self) {
        let mut s = relock(self.shared.state.lock());
        s.shutdown = true;
        self.shared.work.notify_all();
    }
}

struct DoneGuard<'a, J> {
    shared: &'a BroadcastShared<J>,
}

impl<J> Drop for DoneGuard<'_, J> {
    fn drop(&mut self) {
        let mut s = relock(self.shared.state.lock());
        if std::thread::panicking() {
            s.panicked = true;
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            self.shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..40).collect::<Vec<u64>>(), 4, |&j| j * j);
        assert_eq!(out, (0..40).map(|j| j * j).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_jobs_and_excess_threads() {
        assert_eq!(
            parallel_map(Vec::<u64>::new(), 8, |&j| j),
            Vec::<u64>::new()
        );
        assert_eq!(parallel_map(vec![1u64, 2], 16, |&j| j + 1), vec![2, 3]);
    }

    mod broadcast {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

        #[test]
        fn every_worker_runs_every_round() {
            let per_worker: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            let job_sum = AtomicU64::new(0);
            std::thread::scope(|scope| {
                let pool = BroadcastPool::new(scope, 4, |w, job: u64| {
                    per_worker[w].fetch_add(1, Ordering::SeqCst);
                    job_sum.fetch_add(job, Ordering::SeqCst);
                });
                assert_eq!(pool.workers(), 4);
                for round in 0..25u64 {
                    pool.run(round);
                }
            });
            for c in &per_worker {
                assert_eq!(c.load(Ordering::SeqCst), 25, "a worker missed rounds");
            }
            // Each of the 4 workers saw every job value exactly once.
            assert_eq!(job_sum.load(Ordering::SeqCst), 4 * (0..25).sum::<u64>());
        }

        #[test]
        fn run_is_a_barrier() {
            // After `run` returns, all workers' effects are visible.
            let cells: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
            std::thread::scope(|scope| {
                let pool = BroadcastPool::new(scope, 8, |w, job: u64| {
                    cells[w].store(job, Ordering::SeqCst);
                });
                for job in [3u64, 9, 27] {
                    pool.run(job);
                    for c in &cells {
                        assert_eq!(c.load(Ordering::SeqCst), job);
                    }
                }
            });
        }

        #[test]
        fn overlapping_round_is_rejected_and_the_pool_continues() {
            // One worker blocks on a gate, pinning a round in flight; a
            // second `run` from another thread must be rejected without
            // disturbing the round, and once the gate opens the pool
            // keeps serving rounds cleanly.
            let gate = Arc::new(AtomicBool::new(false));
            let started = Arc::new(AtomicUsize::new(0));
            let runs = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|scope| {
                let (g, s, r) = (Arc::clone(&gate), Arc::clone(&started), Arc::clone(&runs));
                // `BroadcastPool<u64>` is itself `'static` (only the
                // closure is scope-bound), so it can be shared with a
                // plain thread that drives the blocking round.
                let pool = Arc::new(BroadcastPool::new(scope, 2, move |_, job: u64| {
                    s.fetch_add(1, Ordering::SeqCst);
                    if job == 1 {
                        while !g.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                    }
                    r.fetch_add(1, Ordering::SeqCst);
                }));
                let blocked = Arc::clone(&pool);
                let driver = std::thread::spawn(move || blocked.run(1));
                while started.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                let rejected = catch_unwind(AssertUnwindSafe(|| pool.run(2)));
                // Open the gate before asserting anything, so a failed
                // assertion cannot leave spinning workers behind for
                // the scope join to hang on.
                gate.store(true, Ordering::SeqCst);
                let payload = rejected.expect_err("overlapping run must be rejected");
                let msg = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(String::from)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                assert!(msg.contains("already in flight"), "wrong rejection: {msg}");
                driver.join().expect("blocked round failed");
                // Clean continuation: the rejected call left no trace.
                pool.run(3);
                assert_eq!(runs.load(Ordering::SeqCst), 4);
            });
        }

        #[test]
        fn worker_panic_propagates_to_the_caller() {
            // The panic surfaces from `run(13)` and unwinds through the
            // scope (which shuts the surviving workers down via the
            // pool's Drop), so the catch wraps the whole scope.
            let rounds_before = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                std::thread::scope(|scope| {
                    let pool = BroadcastPool::new(scope, 3, |w, job: u64| {
                        if job == 13 && w == 1 {
                            panic!("worker bug");
                        }
                        rounds_before.fetch_add(1, Ordering::SeqCst);
                    });
                    pool.run(7);
                    pool.run(13);
                });
            }));
            assert!(result.is_err(), "worker panic was swallowed");
            assert!(
                rounds_before.load(Ordering::SeqCst) >= 3,
                "first round lost"
            );
        }

        #[test]
        #[should_panic(expected = "at least one worker")]
        fn zero_workers_panics() {
            std::thread::scope(|scope| {
                let _ = BroadcastPool::new(scope, 0, |_, _: u64| {});
            });
        }
    }
}
