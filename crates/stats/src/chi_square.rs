//! Chi-square distribution and the Poisson goodness-of-fit test of
//! the paper's Appendix B (Tables 7–8).
//!
//! The paper collects 210 per-minute order counts (21 weekdays × 10-minute
//! windows), bins them into `r` intervals, computes Pearson's statistic
//! `k = Σ (ν_i − n·p_i)² / (n·p_i)` against a fitted Poisson, and accepts
//! the Poisson hypothesis when `k < χ²_{r−1}(0.05)`. This module implements
//! the distribution, the critical values and the complete test.

use crate::gamma::{reg_lower_gamma, reg_upper_gamma};
use crate::poisson::poisson_pmf;

/// CDF of the chi-square distribution with `dof` degrees of freedom.
///
/// # Panics
/// Panics if `dof == 0` or `x < 0`.
pub fn chi_square_cdf(dof: u32, x: f64) -> f64 {
    assert!(dof > 0, "chi_square_cdf: dof must be positive");
    assert!(x >= 0.0, "chi_square_cdf: x must be non-negative, got {x}");
    reg_lower_gamma(dof as f64 / 2.0, x / 2.0)
}

/// Upper-tail probability `P(X > x)` for chi-square with `dof` degrees
/// of freedom (the p-value of a Pearson statistic).
pub fn chi_square_sf(dof: u32, x: f64) -> f64 {
    assert!(dof > 0, "chi_square_sf: dof must be positive");
    assert!(x >= 0.0, "chi_square_sf: x must be non-negative, got {x}");
    reg_upper_gamma(dof as f64 / 2.0, x / 2.0)
}

/// Critical value `χ²_dof(alpha)`: the `x` with upper-tail mass `alpha`.
///
/// Computed by bisection on the monotone survival function; accurate to
/// ~1e-9, which is far beyond what the hypothesis test needs. For the
/// paper's values: `χ²_4(0.05) = 9.488`, `χ²_5(0.05) = 11.070`,
/// `χ²_6(0.05) = 12.592`, `χ²_7(0.05) = 14.067`.
///
/// # Panics
/// Panics if `alpha` is not strictly inside `(0, 1)`.
pub fn chi_square_critical(dof: u32, alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "chi_square_critical: alpha must be in (0, 1), got {alpha}"
    );
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while chi_square_sf(dof, hi) > alpha {
        hi *= 2.0;
        assert!(hi < 1e12, "chi_square_critical: bracket failed");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi_square_sf(dof, mid) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Result of a chi-square goodness-of-fit test against a Poisson model.
#[derive(Debug, Clone)]
pub struct ChiSquareOutcome {
    /// Pearson statistic `k = Σ (ν_i − n·p_i)² / (n·p_i)`.
    pub statistic: f64,
    /// Number of bins `r` after merging low-expectation bins.
    pub bins: usize,
    /// Degrees of freedom used for the decision (`r − 1`, matching the
    /// paper's Appendix B which does not subtract one for the fitted mean).
    pub dof: u32,
    /// Critical value `χ²_dof(alpha)`.
    pub critical: f64,
    /// Upper-tail p-value of the statistic.
    pub p_value: f64,
    /// Fitted Poisson rate (the sample mean).
    pub lambda_hat: f64,
    /// `true` when the Poisson hypothesis is *not* rejected at `alpha`.
    pub accepted: bool,
    /// Observed frequency per bin (after merging).
    pub observed: Vec<f64>,
    /// Expected frequency per bin under the fitted Poisson.
    pub expected: Vec<f64>,
    /// Half-open value ranges `[lo, hi)` of each bin over the count axis.
    pub bin_ranges: Vec<(u64, u64)>,
}

/// Chi-square goodness-of-fit test: are `samples` (non-negative counts)
/// drawn from a Poisson distribution?
///
/// The Poisson rate is fitted as the sample mean, the count axis is split
/// into unit bins which are then greedily merged until every bin has
/// expected frequency at least `min_expected` (5 is the classical rule;
/// the paper uses wider "range" bins, which this merging reproduces),
/// and the hypothesis is accepted when the Pearson statistic stays below
/// `χ²_{r−1}(alpha)`.
///
/// # Panics
/// Panics if `samples` is empty or `alpha` is outside `(0, 1)`.
pub fn chi_square_gof_poisson(samples: &[u64], alpha: f64, min_expected: f64) -> ChiSquareOutcome {
    assert!(!samples.is_empty(), "chi_square_gof_poisson: no samples");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "chi_square_gof_poisson: alpha must be in (0, 1)"
    );
    let n = samples.len() as f64;
    let lambda_hat = samples.iter().map(|&s| s as f64).sum::<f64>() / n;

    let max_k = samples.iter().copied().max().unwrap_or(0);
    // Raw unit bins 0..=max_k, with an implicit open tail folded into the
    // last bin so that expected frequencies sum to n.
    let mut raw_expected: Vec<f64> = (0..=max_k)
        .map(|k| n * poisson_pmf(lambda_hat, k))
        .collect();
    let tail = n - raw_expected.iter().sum::<f64>();
    if let Some(last) = raw_expected.last_mut() {
        *last += tail.max(0.0);
    }
    let mut raw_observed = vec![0.0f64; (max_k + 1) as usize];
    for &s in samples {
        raw_observed[s as usize] += 1.0;
    }

    // Greedy left-to-right merge until each bin's expectation ≥ min_expected.
    let mut observed = Vec::new();
    let mut expected = Vec::new();
    let mut bin_ranges = Vec::new();
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    let mut lo = 0u64;
    for k in 0..=max_k {
        acc_o += raw_observed[k as usize];
        acc_e += raw_expected[k as usize];
        if acc_e >= min_expected {
            observed.push(acc_o);
            expected.push(acc_e);
            bin_ranges.push((lo, k + 1));
            acc_o = 0.0;
            acc_e = 0.0;
            lo = k + 1;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        // Fold the remainder into the last complete bin (or keep it alone
        // if it is the only bin).
        if let (Some(o), Some(e), Some(r)) = (
            observed.last_mut(),
            expected.last_mut(),
            bin_ranges.last_mut(),
        ) {
            *o += acc_o;
            *e += acc_e;
            r.1 = max_k + 1;
        } else {
            observed.push(acc_o);
            expected.push(acc_e);
            bin_ranges.push((lo, max_k + 1));
        }
    }

    let statistic: f64 = observed
        .iter()
        .zip(&expected)
        .map(|(&o, &e)| if e > 0.0 { (o - e) * (o - e) / e } else { 0.0 })
        .sum();
    let bins = observed.len();
    let dof = (bins.max(2) - 1) as u32;
    let critical = chi_square_critical(dof, alpha);
    let p_value = chi_square_sf(dof, statistic.max(0.0));
    ChiSquareOutcome {
        statistic,
        bins,
        dof,
        critical,
        p_value,
        lambda_hat,
        accepted: statistic < critical,
        observed,
        expected,
        bin_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::sample_poisson;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn critical_values_match_tables() {
        // Classical table values quoted in the paper's Appendix B.
        let cases = [(4u32, 9.488), (5, 11.070), (6, 12.592), (7, 14.067)];
        for (dof, expect) in cases {
            let got = chi_square_critical(dof, 0.05);
            assert!((got - expect).abs() < 5e-3, "dof {dof}: {got} vs {expect}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        for dof in [1u32, 3, 10, 50] {
            let mut prev = 0.0;
            for i in 0..200 {
                let x = i as f64 * 0.5;
                let c = chi_square_cdf(dof, x);
                assert!((0.0..=1.0).contains(&c));
                assert!(c >= prev - 1e-14);
                prev = c;
            }
        }
    }

    #[test]
    fn poisson_samples_are_accepted() {
        // The paper's setting: 210 samples per test. With a 5% test and
        // many seeds a few rejections are expected; require a large
        // acceptance majority.
        let mut accepted = 0;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<u64> = (0..210).map(|_| sample_poisson(&mut rng, 6.3)).collect();
            if chi_square_gof_poisson(&samples, 0.05, 5.0).accepted {
                accepted += 1;
            }
        }
        assert!(accepted >= 34, "only {accepted}/40 accepted");
    }

    #[test]
    fn uniform_samples_are_rejected() {
        // Uniform counts over a wide range are far from Poisson.
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<u64> = (0..210).map(|_| rng.gen_range(0..60)).collect();
        let outcome = chi_square_gof_poisson(&samples, 0.05, 5.0);
        assert!(!outcome.accepted, "statistic {}", outcome.statistic);
    }

    #[test]
    fn expected_frequencies_sum_to_sample_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<u64> = (0..210).map(|_| sample_poisson(&mut rng, 12.0)).collect();
        let outcome = chi_square_gof_poisson(&samples, 0.05, 5.0);
        let total_e: f64 = outcome.expected.iter().sum();
        let total_o: f64 = outcome.observed.iter().sum();
        assert!((total_o - 210.0).abs() < 1e-9);
        assert!((total_e - 210.0).abs() < 1.0, "expected sums to {total_e}");
        // Bin ranges tile the count axis without gaps.
        for w in outcome.bin_ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn constant_samples_degenerate_gracefully() {
        let samples = vec![4u64; 100];
        let outcome = chi_square_gof_poisson(&samples, 0.05, 5.0);
        // A constant series is wildly non-Poisson (variance 0) but the
        // test must not panic and must produce finite output.
        assert!(outcome.statistic.is_finite());
    }
}
