//! Log-gamma and the regularized incomplete gamma function.
//!
//! These are the numerical primitives behind the chi-square CDF
//! (`P(k/2, x/2)`) and the Poisson PMF used by the goodness-of-fit test.
//! The implementations follow the classical Lanczos approximation and the
//! series/continued-fraction split of the incomplete gamma function
//! (Numerical Recipes §6.1–6.2); both are accurate to ~1e-12 over the
//! parameter ranges exercised here (degrees of freedom ≤ a few hundred).

/// Lanczos coefficients for g = 7, n = 9 (canonical values; precision
/// beyond f64 is intentional and harmless).
#[allow(clippy::excessive_precision)]
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
/// Panics if `x` is not finite or `x <= 0` after reflection is impossible.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: x must be finite, got {x}");
    assert!(x > 0.0, "ln_gamma: x must be positive, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. For the chi-square distribution with
/// `k` degrees of freedom, `CDF(x) = P(k/2, x/2)`.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma: a must be positive, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma: x must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_gamma_series(a, x)
    } else {
        1.0 - upper_gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma: a must be positive, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma: x must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_gamma_series(a, x)
    } else {
        upper_gamma_cf(a, x)
    }
}

/// Series expansion of P(a, x); converges quickly for x < a + 1.
fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for Q(a, x); converges quickly for x ≥ a + 1.
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn incomplete_gamma_bounds() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            close(reg_lower_gamma(a, 0.0), 0.0, 1e-15);
            close(reg_lower_gamma(a, 1e6), 1.0, 1e-9);
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p}");
                close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let a = 3.2;
        let mut prev = -1.0;
        for i in 0..100 {
            let x = i as f64 * 0.3;
            let p = reg_lower_gamma(a, x);
            assert!(p >= prev, "P(a, x) must be non-decreasing in x");
            prev = p;
        }
    }
}
