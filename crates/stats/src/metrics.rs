//! Error metrics and summary statistics.
//!
//! Tables 3 and 6 of the paper report MAE, relative RMSE (in percent of the
//! mean of the ground truth) and "real" RMSE (in natural units). These are
//! computed here so that every experiment reports them identically.

/// Mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Mean absolute error between predictions and ground truth.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    check_pair(pred, truth);
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error in natural units (the paper's "Real RMSE").
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    check_pair(pred, truth);
    (pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// RMSE normalized by the mean of the ground truth, in percent
/// (the paper's "RMSE (%)"). Returns `f64::INFINITY` when the truth mean
/// is zero but the error is not.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn relative_rmse(pred: &[f64], truth: &[f64]) -> f64 {
    check_pair(pred, truth);
    let e = rmse(pred, truth);
    let m = mean(truth).abs();
    if m == 0.0 {
        if e == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * e / m
    }
}

fn check_pair(pred: &[f64], truth: &[f64]) {
    assert_eq!(
        pred.len(),
        truth.len(),
        "metric: prediction and truth lengths differ"
    );
    assert!(!pred.is_empty(), "metric: empty input");
}

/// Streaming summary statistics (count, mean, min, max, variance) using
/// Welford's online algorithm; used by the simulator's metric sinks so that
/// per-batch values never need to be buffered.
#[derive(Debug, Clone, Default)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_metrics() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 4.0, 1.0];
        assert!((mae(&pred, &truth) - (0.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!((rmse(&pred, &truth) - ((0.0 + 4.0 + 4.0f64) / 3.0).sqrt()).abs() < 1e-12);
        let rel = relative_rmse(&pred, &truth);
        assert!((rel - 100.0 * rmse(&pred, &truth) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_is_zero_error() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(mae(&xs, &xs), 0.0);
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert_eq!(relative_rmse(&xs, &xs), 0.0);
    }

    #[test]
    fn summary_stats_match_batch_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = SummaryStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(17);
        let mut s1 = SummaryStats::new();
        a.iter().for_each(|&x| s1.push(x));
        let mut s2 = SummaryStats::new();
        b.iter().for_each(|&x| s2.push(x));
        s1.merge(&s2);
        let mut all = SummaryStats::new();
        xs.iter().for_each(|&x| all.push(x));
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-10);
        assert!((s1.variance() - all.variance()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn rmse_dominates_mae(v in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..100)) {
            let pred: Vec<f64> = v.iter().map(|p| p.0).collect();
            let truth: Vec<f64> = v.iter().map(|p| p.1).collect();
            // Cauchy-Schwarz: RMSE >= MAE always.
            prop_assert!(rmse(&pred, &truth) + 1e-9 >= mae(&pred, &truth));
        }

        #[test]
        fn welford_matches_two_pass(v in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let mut s = SummaryStats::new();
            v.iter().for_each(|&x| s.push(x));
            prop_assert!((s.mean() - mean(&v)).abs() < 1e-6 * (1.0 + mean(&v).abs()));
            prop_assert!((s.variance() - variance(&v)).abs() < 1e-5 * (1.0 + variance(&v)));
        }
    }
}
