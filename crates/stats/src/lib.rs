//! Statistical substrate for the MRVD reproduction.
//!
//! The paper leans on a handful of classical statistical tools that are not
//! available as offline crates in this environment, so they are implemented
//! here from scratch:
//!
//! * [`poisson`] — Poisson sampling and homogeneous/piecewise Poisson arrival
//!   processes (the paper models rider and rejoined-driver arrivals per
//!   region as Poisson, validated in its Appendix B).
//! * [`gamma`] — log-gamma and the regularized incomplete gamma function,
//!   the numerical backbone of the chi-square distribution.
//! * [`chi_square`] — the chi-square goodness-of-fit test used by the
//!   paper's Appendix B (Tables 7–8) to verify the Poisson assumption.
//! * [`metrics`] — MAE / RMSE / relative RMSE and summary statistics used by
//!   Tables 3 and 6.
//! * [`histogram`] — fixed-width binning used to render Figures 11–12.
//! * [`parallel`] — the scoped worker pools: [`parallel_map`] fans a fixed
//!   job list out (order-preserving, so results are independent of the
//!   worker count), and [`BroadcastPool`] keeps persistent workers parked
//!   between barrier rounds for the engine's parallel event drains.
//!
//! Everything is deterministic given a seed and uses no global state.

#![forbid(unsafe_code)]

pub mod chi_square;
pub mod gamma;
pub mod histogram;
pub mod metrics;
pub mod parallel;
pub mod poisson;

pub use chi_square::{chi_square_critical, chi_square_gof_poisson, ChiSquareOutcome};
pub use histogram::Histogram;
pub use metrics::{mae, mean, relative_rmse, rmse, std_dev, variance, SummaryStats};
pub use parallel::{parallel_map, BroadcastPool};
pub use poisson::{poisson_pmf, sample_poisson, PoissonProcess};
