//! Fixed-width histograms used to render the observed-vs-expected sample
//! distributions of the paper's Figures 11–12 and the order-density map of
//! Figure 5.

/// A histogram over `[lo, hi)` with equally wide bins.
///
/// Out-of-range observations are clamped into the first/last bin so that
/// totals are preserved (the figures in the paper plot complete sample
/// sets).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: bins must be positive");
        assert!(hi > lo, "Histogram: hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation, clamping out-of-range values into the edge bins.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            ((f * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `[lo, hi)` range of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "Histogram: bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Renders the histogram as labelled text rows (`label: count  ###`),
    /// used by the experiment harness's figure output.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat(
                (c as usize * max_width)
                    .div_ceil(peak as usize)
                    .min(max_width),
            );
            out.push_str(&format!("{lo:>8.1}..{hi:<8.1} {c:>6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.push(i as f64);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-5.0);
        h.push(99.0);
        h.push(1.0); // hi is exclusive -> last bin
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.push(1.0);
        h.push(3.0);
        h.push(3.5);
        let text = h.render(10);
        assert!(text.contains('1'));
        assert!(text.contains('2'));
        assert!(text.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "bins must be positive")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
