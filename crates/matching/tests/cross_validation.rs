//! Cross-validation of the three matching algorithms against each other
//! on random small bipartite instances: the exact Hungarian solver
//! bounds the greedy 1/2-approximation from above, Hopcroft–Karp bounds
//! every matcher's cardinality from above, and the dense/sparse
//! Hungarian entry points agree. Runs on the in-tree proptest shim
//! (fixed-seed sampling, deterministic).

use mrvd_matching::{
    greedy_max_weight, hopcroft_karp, kuhn_munkres_dense, max_weight_matching, Edge, Matching,
};
use proptest::prelude::*;

/// Decodes a raw strategy draw into a well-formed instance: vertex
/// counts in `1..=8` and edges folded onto them.
fn instance(nl: u64, nr: u64, raw: &[(u64, u64, f64)]) -> (usize, usize, Vec<Edge>) {
    let n_left = (nl % 8 + 1) as usize;
    let n_right = (nr % 8 + 1) as usize;
    let edges: Vec<Edge> = raw
        .iter()
        .map(|&(l, r, w)| ((l as usize) % n_left, (r as usize) % n_right, w))
        .collect();
    (n_left, n_right, edges)
}

/// Adjacency list of the edge support (for Hopcroft–Karp).
fn adjacency(n_left: usize, edges: &[Edge]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n_left];
    for &(l, r, _) in edges {
        if !adj[l].contains(&r) {
            adj[l].push(r);
        }
    }
    adj
}

fn assert_consistent(m: &Matching, what: &str) {
    assert!(m.is_consistent(), "{what}: inconsistent matching");
}

proptest! {
    #[test]
    fn hungarian_weight_dominates_greedy(
        nl in 0u64..64,
        nr in 0u64..64,
        raw in proptest::collection::vec((0u64..64, 0u64..64, 0.0f64..100.0), 0..40),
    ) {
        let (n_left, n_right, edges) = instance(nl, nr, &raw);
        let exact = max_weight_matching(n_left, n_right, &edges);
        let greedy = greedy_max_weight(n_left, n_right, &edges);
        assert_consistent(&exact, "hungarian");
        assert_consistent(&greedy, "greedy");
        prop_assert!(
            exact.total_weight >= greedy.total_weight - 1e-9,
            "exact {} < greedy {}", exact.total_weight, greedy.total_weight
        );
    }

    #[test]
    fn greedy_achieves_half_of_the_optimum(
        nl in 0u64..64,
        nr in 0u64..64,
        raw in proptest::collection::vec((0u64..64, 0u64..64, 0.0f64..100.0), 0..40),
    ) {
        // The classical 1/2-approximation guarantee of weight-ordered
        // greedy — violated only if one of the two algorithms is broken.
        let (n_left, n_right, edges) = instance(nl, nr, &raw);
        let exact = max_weight_matching(n_left, n_right, &edges);
        let greedy = greedy_max_weight(n_left, n_right, &edges);
        prop_assert!(
            greedy.total_weight >= 0.5 * exact.total_weight - 1e-9,
            "greedy {} < half of exact {}", greedy.total_weight, exact.total_weight
        );
    }

    #[test]
    fn hopcroft_karp_cardinality_dominates_greedy_and_hungarian(
        nl in 0u64..64,
        nr in 0u64..64,
        raw in proptest::collection::vec((0u64..64, 0u64..64, 0.5f64..100.0), 0..40),
    ) {
        // Weights start at 0.5 so no edge is dropped by the "zero weight
        // means unmatched" convention of the weighted matchers.
        let (n_left, n_right, edges) = instance(nl, nr, &raw);
        let hk = hopcroft_karp(n_left, n_right, &adjacency(n_left, &edges));
        let greedy = greedy_max_weight(n_left, n_right, &edges);
        let exact = max_weight_matching(n_left, n_right, &edges);
        assert_consistent(&hk, "hopcroft-karp");
        prop_assert!(
            hk.cardinality() >= greedy.cardinality(),
            "HK {} < greedy {}", hk.cardinality(), greedy.cardinality()
        );
        prop_assert!(
            hk.cardinality() >= exact.cardinality(),
            "HK {} < hungarian {}", hk.cardinality(), exact.cardinality()
        );
    }

    #[test]
    fn unit_weights_make_hungarian_a_maximum_cardinality_matcher(
        nl in 0u64..64,
        nr in 0u64..64,
        raw in proptest::collection::vec((0u64..64, 0u64..64, 0.0f64..1.0), 0..40),
    ) {
        // With every weight 1, maximum weight == maximum cardinality, so
        // Hungarian and Hopcroft–Karp must agree exactly.
        let (n_left, n_right, support) = instance(nl, nr, &raw);
        let unit: Vec<Edge> = support.iter().map(|&(l, r, _)| (l, r, 1.0)).collect();
        let exact = max_weight_matching(n_left, n_right, &unit);
        let hk = hopcroft_karp(n_left, n_right, &adjacency(n_left, &unit));
        prop_assert_eq!(exact.cardinality(), hk.cardinality());
        prop_assert!((exact.total_weight - hk.cardinality() as f64).abs() < 1e-9);
    }

    #[test]
    fn dense_and_sparse_hungarian_agree(
        nl in 0u64..64,
        nr in 0u64..64,
        raw in proptest::collection::vec((0u64..64, 0u64..64, 0.0f64..100.0), 0..40),
    ) {
        let (n_left, n_right, edges) = instance(nl, nr, &raw);
        let sparse = max_weight_matching(n_left, n_right, &edges);
        let mut matrix = vec![vec![0.0f64; n_right]; n_left];
        for &(l, r, w) in &edges {
            if w > matrix[l][r] {
                matrix[l][r] = w; // parallel edges keep their max, like the sparse path
            }
        }
        let dense = kuhn_munkres_dense(&matrix);
        prop_assert!(
            (sparse.total_weight - dense.total_weight).abs() < 1e-9,
            "sparse {} vs dense {}", sparse.total_weight, dense.total_weight
        );
        prop_assert_eq!(sparse.cardinality(), dense.cardinality());
    }

    #[test]
    fn hungarian_total_cost_at_most_greedy_total_cost_at_equal_cardinality(
        dims in (0u64..64, 0u64..64),
        raw in proptest::collection::vec(1.0f64..100.0, 36..37),
    ) {
        // The cost-minimization framing: on a complete cost matrix both
        // matchers reach full cardinality min(n, m); converting costs c
        // to weights (C_max − c) turns min-cost into max-weight, so the
        // exact solver's recovered cost must not exceed greedy's.
        let n = (dims.0 % 6 + 1) as usize;
        let m = (dims.1 % 6 + 1) as usize;
        let cost = |l: usize, r: usize| raw[l * m + r];
        const CMAX: f64 = 101.0;
        let edges: Vec<Edge> = (0..n)
            .flat_map(|l| (0..m).map(move |r| (l, r, CMAX - cost(l, r))))
            .collect();
        let exact = max_weight_matching(n, m, &edges);
        let greedy = greedy_max_weight(n, m, &edges);
        let k = n.min(m);
        prop_assert_eq!(exact.cardinality(), k);
        prop_assert_eq!(greedy.cardinality(), k);
        let recovered_cost = |mm: &Matching| -> f64 {
            mm.pairs().map(|(l, r)| cost(l, r)).sum()
        };
        prop_assert!(
            recovered_cost(&exact) <= recovered_cost(&greedy) + 1e-9,
            "hungarian cost {} > greedy cost {}",
            recovered_cost(&exact), recovered_cost(&greedy)
        );
    }
}

#[test]
fn known_instance_where_greedy_is_suboptimal_on_both_axes() {
    // Greedy grabs (0,0,10), blocking the 9+9 pairing.
    let edges = vec![(0, 0, 10.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 1.0)];
    let greedy = greedy_max_weight(2, 2, &edges);
    let exact = max_weight_matching(2, 2, &edges);
    assert_eq!(greedy.total_weight, 11.0);
    assert_eq!(exact.total_weight, 18.0);
    assert!(exact.total_weight >= greedy.total_weight);
    assert!(greedy.total_weight >= 0.5 * exact.total_weight);
}

#[test]
fn empty_and_degenerate_instances_agree_everywhere() {
    let exact = max_weight_matching(3, 4, &[]);
    let greedy = greedy_max_weight(3, 4, &[]);
    let hk = hopcroft_karp(3, 4, &vec![Vec::new(); 3]);
    assert_eq!(exact.cardinality(), 0);
    assert_eq!(greedy.cardinality(), 0);
    assert_eq!(hk.cardinality(), 0);
    assert_eq!(exact.total_weight, 0.0);
}
