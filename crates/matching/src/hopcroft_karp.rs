//! Maximum-cardinality bipartite matching (Hopcroft–Karp, O(E·√V)).
//!
//! Used to bound how many riders could possibly be picked up in a batch —
//! a capacity check independent of weights — and as a correctness oracle
//! for the cardinality of the weighted matchers under unit weights.

use crate::Matching;

const NIL: usize = usize::MAX;

/// Maximum-cardinality matching over an adjacency list
/// (`adj[l]` = right neighbours of left vertex `l`).
///
/// The returned [`Matching`] has `total_weight` equal to its cardinality
/// (each matched edge counts 1).
///
/// # Panics
/// Panics if an adjacency entry is out of range.
pub fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), n_left, "hopcroft_karp: adjacency size mismatch");
    for neigh in adj {
        for &r in neigh {
            assert!(r < n_right, "hopcroft_karp: right vertex {r} out of range");
        }
    }
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![0usize; n_left];

    // BFS layering from free left vertices; returns whether an augmenting
    // path exists.
    fn bfs(adj: &[Vec<usize>], match_l: &[usize], match_r: &[usize], dist: &mut [usize]) -> bool {
        let mut queue = std::collections::VecDeque::new();
        for (l, &m) in match_l.iter().enumerate() {
            if m == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = usize::MAX;
            }
        }
        let mut found = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                let next = match_r[r];
                if next == NIL {
                    found = true;
                } else if dist[next] == usize::MAX {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        found
    }

    fn dfs(
        l: usize,
        adj: &[Vec<usize>],
        match_l: &mut [usize],
        match_r: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        for i in 0..adj[l].len() {
            let r = adj[l][i];
            let next = match_r[r];
            if next == NIL || (dist[next] == dist[l] + 1 && dfs(next, adj, match_l, match_r, dist))
            {
                match_l[l] = r;
                match_r[r] = l;
                return true;
            }
        }
        dist[l] = usize::MAX;
        false
    }

    while bfs(adj, &match_l, &match_r, &mut dist) {
        for l in 0..n_left {
            if match_l[l] == NIL {
                dfs(l, adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }

    let mut m = Matching::empty(n_left, n_right);
    for (l, &r) in match_l.iter().enumerate() {
        if r != NIL {
            m.left_to_right[l] = Some(r);
            m.right_to_left[r] = Some(l);
            m.total_weight += 1.0;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::max_weight_matching;
    use proptest::prelude::{prop_assert, prop_assert_eq, proptest};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn perfect_matching_on_complete_graph() {
        let adj: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let m = hopcroft_karp(4, 4, &adj);
        assert_eq!(m.cardinality(), 4);
        assert!(m.is_consistent());
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0–r0, l1–{r0,r1}: naive greedy l0→r0 then l1→r1 works; but
        // l0–r0, l1–r0 only: max matching is 1.
        let adj = vec![vec![0], vec![0, 1]];
        assert_eq!(hopcroft_karp(2, 2, &adj).cardinality(), 2);
        let adj = vec![vec![0], vec![0]];
        assert_eq!(hopcroft_karp(2, 2, &adj).cardinality(), 1);
    }

    #[test]
    fn zigzag_requires_augmentation() {
        // l0:{r0,r1} l1:{r0} l2:{r1,r2} — maximum is 3 but a bad greedy
        // (l0→r0, l2→r1) would strand l1.
        let adj = vec![vec![0, 1], vec![0], vec![1, 2]];
        assert_eq!(hopcroft_karp(3, 3, &adj).cardinality(), 3);
    }

    #[test]
    fn empty_graphs() {
        assert_eq!(hopcroft_karp(0, 0, &[]).cardinality(), 0);
        let adj = vec![vec![], vec![]];
        assert_eq!(hopcroft_karp(2, 3, &adj).cardinality(), 0);
    }

    proptest! {
        #[test]
        fn cardinality_matches_unit_weight_hungarian(seed in 0u64..150) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..=9usize);
            let m = rng.gen_range(1..=9usize);
            let mut adj = vec![Vec::new(); n];
            let mut edges = Vec::new();
            for (l, neigh) in adj.iter_mut().enumerate() {
                for r in 0..m {
                    if rng.gen_bool(0.4) {
                        neigh.push(r);
                        edges.push((l, r, 1.0));
                    }
                }
            }
            let hk = hopcroft_karp(n, m, &adj);
            let km = max_weight_matching(n, m, &edges);
            prop_assert_eq!(hk.cardinality(), km.cardinality());
            prop_assert!(hk.is_consistent());
        }
    }
}
