//! Weight-ordered greedy matching.
//!
//! Sorts edges by descending weight and picks every edge whose endpoints
//! are both still free. Runs in `O(E log E)`; guarantees a 1/2
//! approximation of the maximum weight matching, which is why the paper's
//! per-batch baselines (LTG sorts by revenue, NEAR by proximity) are
//! instances of this routine with different weights.

use crate::{Edge, Matching};

/// Greedy maximum-weight matching over an edge list.
///
/// Ties are broken by `(left, right)` index so the result is deterministic
/// regardless of input order. Edges with non-finite or negative weights are
/// rejected.
///
/// # Panics
/// Panics if an edge references a vertex out of range or has a negative or
/// non-finite weight.
pub fn greedy_max_weight(n_left: usize, n_right: usize, edges: &[Edge]) -> Matching {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    for &(l, r, w) in edges {
        assert!(l < n_left, "greedy: left vertex {l} out of range");
        assert!(r < n_right, "greedy: right vertex {r} out of range");
        assert!(
            w.is_finite() && w >= 0.0,
            "greedy: weight must be finite and non-negative, got {w}"
        );
    }
    order.sort_unstable_by(|&a, &b| {
        let (la, ra, wa) = edges[a];
        let (lb, rb, wb) = edges[b];
        wb.partial_cmp(&wa)
            .expect("weights are finite")
            .then(la.cmp(&lb))
            .then(ra.cmp(&rb))
    });
    let mut m = Matching::empty(n_left, n_right);
    for i in order {
        let (l, r, w) = edges[i];
        if m.left_to_right[l].is_none() && m.right_to_left[r].is_none() {
            m.left_to_right[l] = Some(r);
            m.right_to_left[r] = Some(l);
            m.total_weight += w;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_heaviest_first() {
        // Greedy takes (0,0,10) and then cannot take (0,1,9)/(1,0,9);
        // it settles for (1,1,1): total 11 (optimal would be 18).
        let edges = vec![(0, 0, 10.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 1.0)];
        let m = greedy_max_weight(2, 2, &edges);
        assert_eq!(m.left_to_right, vec![Some(0), Some(1)]);
        assert_eq!(m.total_weight, 11.0);
        assert!(m.is_consistent());
    }

    #[test]
    fn empty_graph_is_empty_matching() {
        let m = greedy_max_weight(3, 4, &[]);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.total_weight, 0.0);
    }

    #[test]
    fn deterministic_under_permutation() {
        let edges = vec![(0, 1, 5.0), (1, 0, 5.0), (0, 0, 5.0), (1, 1, 5.0)];
        let mut rev = edges.clone();
        rev.reverse();
        let a = greedy_max_weight(2, 2, &edges);
        let b = greedy_max_weight(2, 2, &rev);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_one_to_one() {
        let edges = vec![(0, 0, 3.0), (1, 0, 2.0), (2, 0, 1.0)];
        let m = greedy_max_weight(3, 1, &edges);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.left_to_right[0], Some(0));
        assert!(m.is_consistent());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        greedy_max_weight(1, 1, &[(5, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        greedy_max_weight(1, 1, &[(0, 0, -1.0)]);
    }
}
