//! Exact maximum-weight bipartite matching (Kuhn–Munkres with potentials).
//!
//! The classical O(n³) Hungarian algorithm over a dense weight matrix.
//! Maximum-weight *matching* (vertices may stay unmatched) is reduced to
//! maximum-weight *perfect* matching by padding the matrix to a square with
//! zero-weight dummy cells; this is exact because all real weights are
//! non-negative. POLAR uses this for its offline region-level blueprint
//! (the matrix side is the region count, so O(n³) is cheap); tests use it
//! as the optimality oracle for the greedy algorithms.

use crate::{Edge, Matching};

/// Maximum-weight matching over a dense rectangular weight matrix
/// (`weights[l][r]` ≥ 0; use 0 for "no edge").
///
/// Matched pairs whose weight is exactly 0 are reported as unmatched, so
/// "no edge" and "worthless edge" are interchangeable.
///
/// # Panics
/// Panics if rows have inconsistent lengths or any weight is negative or
/// non-finite.
pub fn kuhn_munkres_dense(weights: &[Vec<f64>]) -> Matching {
    let n_left = weights.len();
    let n_right = weights.first().map_or(0, Vec::len);
    for row in weights {
        assert_eq!(row.len(), n_right, "kuhn_munkres: ragged weight matrix");
        for &w in row {
            assert!(
                w.is_finite() && w >= 0.0,
                "kuhn_munkres: weights must be finite and non-negative, got {w}"
            );
        }
    }
    if n_left == 0 || n_right == 0 {
        return Matching::empty(n_left, n_right);
    }
    // Pad to a square of side s; costs are negated weights so the
    // min-cost perfect assignment is the max-weight matching.
    let s = n_left.max(n_right);
    let cost = |i: usize, j: usize| -> f64 {
        if i < n_left && j < n_right {
            -weights[i][j]
        } else {
            0.0
        }
    };

    // e-maxx formulation, 1-indexed with a virtual column 0.
    let (n, m) = (s, s);
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        while j0 != 0 {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
        }
    }

    let mut matching = Matching::empty(n_left, n_right);
    for (j, &i) in p.iter().enumerate().take(m + 1).skip(1) {
        if i == 0 {
            continue;
        }
        let (l, r) = (i - 1, j - 1);
        if l < n_left && r < n_right && weights[l][r] > 0.0 {
            matching.left_to_right[l] = Some(r);
            matching.right_to_left[r] = Some(l);
            matching.total_weight += weights[l][r];
        }
    }
    matching
}

/// Maximum edge count for the sparse→dense conversion; beyond this the
/// dense matrix would dominate memory and the caller should aggregate
/// first (as POLAR does at region level).
const DENSE_LIMIT: usize = 4_000_000;

/// Exact maximum-weight matching over a sparse edge list, via the dense
/// Kuhn–Munkres solver. Parallel edges keep their maximum weight.
///
/// # Panics
/// Panics if `n_left * n_right` exceeds an internal density limit
/// (4 million cells), if a vertex index is out of range, or if a weight is
/// negative or non-finite.
pub fn max_weight_matching(n_left: usize, n_right: usize, edges: &[Edge]) -> Matching {
    assert!(
        n_left.saturating_mul(n_right) <= DENSE_LIMIT,
        "max_weight_matching: instance too large for dense solve ({n_left}×{n_right}); aggregate first"
    );
    if n_left == 0 || n_right == 0 {
        assert!(edges.is_empty(), "max_weight_matching: edges on empty side");
        return Matching::empty(n_left, n_right);
    }
    let mut weights = vec![vec![0.0f64; n_right]; n_left];
    for &(l, r, w) in edges {
        assert!(
            l < n_left,
            "max_weight_matching: left vertex {l} out of range"
        );
        assert!(
            r < n_right,
            "max_weight_matching: right vertex {r} out of range"
        );
        assert!(
            w.is_finite() && w >= 0.0,
            "max_weight_matching: weight must be finite and non-negative, got {w}"
        );
        if w > weights[l][r] {
            weights[l][r] = w;
        }
    }
    kuhn_munkres_dense(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_max_weight;
    use proptest::prelude::{prop_assert, proptest};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Exhaustive maximum-weight matching for tiny instances.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        fn rec(weights: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == weights.len() {
                return 0.0;
            }
            // Skip this row entirely…
            let mut best = rec(weights, row + 1, used);
            // …or match it to any free column.
            for c in 0..used.len() {
                if !used[c] && weights[row][c] > 0.0 {
                    used[c] = true;
                    best = best.max(weights[row][c] + rec(weights, row + 1, used));
                    used[c] = false;
                }
            }
            best
        }
        let cols = weights.first().map_or(0, Vec::len);
        rec(weights, 0, &mut vec![false; cols])
    }

    #[test]
    fn beats_greedy_on_the_classic_trap() {
        let w = vec![vec![10.0, 9.0], vec![9.0, 1.0]];
        let m = kuhn_munkres_dense(&w);
        assert_eq!(m.total_weight, 18.0); // 9 + 9, not 10 + 1
        assert!(m.is_consistent());
    }

    #[test]
    fn rectangular_matrices_work_both_ways() {
        let wide = vec![vec![1.0, 5.0, 3.0]];
        let m = kuhn_munkres_dense(&wide);
        assert_eq!(m.total_weight, 5.0);
        assert_eq!(m.left_to_right[0], Some(1));

        let tall = vec![vec![1.0], vec![5.0], vec![3.0]];
        let m = kuhn_munkres_dense(&tall);
        assert_eq!(m.total_weight, 5.0);
        assert_eq!(m.left_to_right, vec![None, Some(0), None]);
    }

    #[test]
    fn zero_matrix_matches_nothing() {
        let w = vec![vec![0.0; 4]; 3];
        let m = kuhn_munkres_dense(&w);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.total_weight, 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(kuhn_munkres_dense(&[]).cardinality(), 0);
        let m = max_weight_matching(0, 5, &[]);
        assert_eq!(m.right_to_left.len(), 5);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let r = rng.gen_range(1..=6);
            let c = rng.gen_range(1..=6);
            let w: Vec<Vec<f64>> = (0..r)
                .map(|_| {
                    (0..c)
                        .map(|_| {
                            if rng.gen_bool(0.3) {
                                0.0
                            } else {
                                (rng.gen_range(1..100) as f64) / 7.0
                            }
                        })
                        .collect()
                })
                .collect();
            let km = kuhn_munkres_dense(&w);
            let bf = brute_force(&w);
            assert!(
                (km.total_weight - bf).abs() < 1e-9,
                "trial {trial}: KM {} vs brute force {bf} on {w:?}",
                km.total_weight
            );
            assert!(km.is_consistent());
        }
    }

    #[test]
    fn sparse_api_keeps_max_parallel_edge() {
        let edges = vec![(0, 0, 2.0), (0, 0, 7.0), (0, 0, 5.0)];
        let m = max_weight_matching(1, 1, &edges);
        assert_eq!(m.total_weight, 7.0);
    }

    proptest! {
        #[test]
        fn optimal_dominates_greedy(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..=8usize);
            let m = rng.gen_range(1..=8usize);
            let mut edges = Vec::new();
            for l in 0..n {
                for r in 0..m {
                    if rng.gen_bool(0.5) {
                        edges.push((l, r, rng.gen_range(0.0..50.0)));
                    }
                }
            }
            let opt = max_weight_matching(n, m, &edges);
            let grd = greedy_max_weight(n, m, &edges);
            prop_assert!(opt.total_weight + 1e-9 >= grd.total_weight);
            // Greedy is a 1/2-approximation.
            prop_assert!(2.0 * grd.total_weight + 1e-9 >= opt.total_weight);
        }
    }
}
