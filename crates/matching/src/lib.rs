//! Bipartite matching substrate.
//!
//! The dispatching algorithms need three matching primitives:
//!
//! * [`greedy`] — weight-ordered greedy matching, the building block of
//!   the LTG/NEAR baselines and of POLAR's online phase;
//! * [`hungarian`] — exact maximum-weight matching (Kuhn–Munkres with
//!   potentials, O(n³)), used for POLAR's offline region-level blueprint
//!   and as the optimality oracle in tests and ablations;
//! * [`hopcroft_karp`](mod@hopcroft_karp) — maximum-cardinality matching (O(E√V)), used to
//!   upper-bound how many riders can possibly be served in a batch.
//!
//! All algorithms operate on 0-based left/right vertex indices and
//! non-negative edge weights ("unmatched" is encoded as a zero-weight
//! dummy, which is only correct when real weights are non-negative — the
//! MRVD weights are travel times or revenues, always ≥ 0).

#![forbid(unsafe_code)]

pub mod greedy;
pub mod hopcroft_karp;
pub mod hungarian;

pub use greedy::greedy_max_weight;
pub use hopcroft_karp::hopcroft_karp;
pub use hungarian::{kuhn_munkres_dense, max_weight_matching};

/// An edge in a weighted bipartite graph: `(left, right, weight)`.
pub type Edge = (usize, usize, f64);

/// The result of a matching computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// For each left vertex, the matched right vertex (if any).
    pub left_to_right: Vec<Option<usize>>,
    /// For each right vertex, the matched left vertex (if any).
    pub right_to_left: Vec<Option<usize>>,
    /// Sum of the weights of the matched edges.
    pub total_weight: f64,
}

impl Matching {
    /// An empty matching over `n_left` × `n_right` vertices.
    pub fn empty(n_left: usize, n_right: usize) -> Self {
        Self {
            left_to_right: vec![None; n_left],
            right_to_left: vec![None; n_right],
            total_weight: 0.0,
        }
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.left_to_right.iter().flatten().count()
    }

    /// Iterator over matched `(left, right)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.left_to_right
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (l, r)))
    }

    /// Checks internal consistency: the two direction maps agree and no
    /// vertex is matched twice. Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        for (l, r) in self.pairs() {
            if self.right_to_left.get(r).copied().flatten() != Some(l) {
                return false;
            }
        }
        let matched_rights: Vec<usize> = self.left_to_right.iter().flatten().copied().collect();
        let mut dedup = matched_rights.clone();
        dedup.sort_unstable();
        dedup.dedup();
        dedup.len() == matched_rights.len()
    }
}
