//! Workload substrate: synthetic demand standing in for the NYC TLC
//! yellow-taxi trips the paper evaluates on.
//!
//! The raw NYC data cannot be downloaded in this environment, so this crate
//! generates a statistically equivalent workload (substitution #1 in
//! DESIGN.md):
//!
//! * [`profile`] — the spatio-temporal intensity model: a Manhattan-like
//!   hotspot field over the paper's 16×16 NYC grid, a two-peak time-of-day
//!   curve, day-of-week factors and a per-day random ("weather") factor;
//! * [`generator`] — Poisson trip generation from the profile
//!   ([`NycLikeGenerator`]), with a gravity model for destinations, plus a
//!   plain uniform generator for controlled synthetic experiments;
//! * [`trip`] — the [`TripRecord`] order type (`t_i`, `s_i`, `e_i`);
//! * [`series`] — multi-day per-region per-slot count tensors
//!   ([`DemandSeries`]) consumed by the prediction models, and helpers to
//!   count realized trips into series;
//! * [`drivers`] — initial driver placement (pickup locations of sampled
//!   orders, as in the paper's §6.2).
//!
//! Arrivals per region per short window are exactly Poisson — the
//! assumption the paper validates on the real data via chi-square tests
//! (its Appendix B) — so every downstream component sees input with the
//! same statistical structure as the paper's.

#![forbid(unsafe_code)]

pub mod drivers;
pub mod generator;
pub mod profile;
pub mod series;
pub mod trip;

pub use drivers::sample_driver_positions;
pub use generator::{
    DemandShaper, NoShaping, NycLikeConfig, NycLikeGenerator, UniformConfig, UniformGenerator,
};
pub use profile::NycProfile;
pub use series::{count_trips, DemandSeries};
pub use trip::TripRecord;

/// Milliseconds in one day.
pub const DAY_MS: u64 = 24 * 60 * 60 * 1000;

/// The paper's demand-prediction slot length: 30 minutes.
pub const SLOT_MS: u64 = 30 * 60 * 1000;

/// Slots per day at the paper's 30-minute granularity.
pub const SLOTS_PER_DAY: usize = (DAY_MS / SLOT_MS) as usize;
