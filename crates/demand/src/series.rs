//! Multi-day demand count tensors.
//!
//! A [`DemandSeries`] holds order counts per `(day, slot, region)` — the
//! training/evaluation format of the prediction models (the paper trains
//! on ~5 months of 30-minute slot counts, its Table 5).

use mrvd_spatial::Grid;

use crate::trip::TripRecord;
use crate::{DAY_MS, SLOT_MS};

/// Order counts (or predicted counts) indexed by `(day, slot, region)`.
///
/// Stored as `f64` so predictions and ground truth share the type; counted
/// data always holds integers.
#[derive(Debug, Clone)]
pub struct DemandSeries {
    days: usize,
    slots_per_day: usize,
    regions: usize,
    data: Vec<f64>,
}

impl DemandSeries {
    /// A zero-filled series.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn zeros(days: usize, slots_per_day: usize, regions: usize) -> Self {
        assert!(
            days > 0 && slots_per_day > 0 && regions > 0,
            "DemandSeries: dimensions must be positive"
        );
        Self {
            days,
            slots_per_day,
            regions,
            data: vec![0.0; days * slots_per_day * regions],
        }
    }

    /// Builds a series by evaluating `f(day, slot, region)`.
    pub fn from_fn(
        days: usize,
        slots_per_day: usize,
        regions: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut s = Self::zeros(days, slots_per_day, regions);
        for d in 0..days {
            for t in 0..slots_per_day {
                for r in 0..regions {
                    let v = f(d, t, r);
                    s.set(d, t, r, v);
                }
            }
        }
        s
    }

    /// Number of days.
    pub fn days(&self) -> usize {
        self.days
    }

    /// Slots per day.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Total slots across all days.
    pub fn total_slots(&self) -> usize {
        self.days * self.slots_per_day
    }

    fn index(&self, day: usize, slot: usize, region: usize) -> usize {
        assert!(day < self.days, "DemandSeries: day {day} out of range");
        assert!(
            slot < self.slots_per_day,
            "DemandSeries: slot {slot} out of range"
        );
        assert!(
            region < self.regions,
            "DemandSeries: region {region} out of range"
        );
        (day * self.slots_per_day + slot) * self.regions + region
    }

    /// Count at `(day, slot, region)`.
    pub fn get(&self, day: usize, slot: usize, region: usize) -> f64 {
        self.data[self.index(day, slot, region)]
    }

    /// Sets the count at `(day, slot, region)`.
    pub fn set(&mut self, day: usize, slot: usize, region: usize, v: f64) {
        let i = self.index(day, slot, region);
        self.data[i] = v;
    }

    /// Adds to the count at `(day, slot, region)`.
    pub fn add(&mut self, day: usize, slot: usize, region: usize, v: f64) {
        let i = self.index(day, slot, region);
        self.data[i] += v;
    }

    /// The per-region frame of one `(day, slot)`.
    pub fn frame(&self, day: usize, slot: usize) -> &[f64] {
        let start = self.index(day, slot, 0);
        &self.data[start..start + self.regions]
    }

    /// Count at a *global* slot index (`day * slots_per_day + slot`).
    pub fn get_flat(&self, global_slot: usize, region: usize) -> f64 {
        let day = global_slot / self.slots_per_day;
        let slot = global_slot % self.slots_per_day;
        self.get(day, slot, region)
    }

    /// Sum over all cells.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest cell value (used to normalize neural-network inputs).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Sum over regions for one `(day, slot)`.
    pub fn slot_total(&self, day: usize, slot: usize) -> f64 {
        self.frame(day, slot).iter().sum()
    }
}

/// Counts realized trips of one day into a single-day [`DemandSeries`]
/// (the "Real" demand that the paper's IRG-R/LS-R variants consume).
///
/// # Panics
/// Panics if any trip's `request_ms` falls outside the day.
pub fn count_trips(trips: &[TripRecord], grid: &Grid) -> DemandSeries {
    let slots = (DAY_MS / SLOT_MS) as usize;
    let mut s = DemandSeries::zeros(1, slots, grid.num_regions());
    for t in trips {
        assert!(
            t.request_ms < DAY_MS,
            "count_trips: trip {} outside the day ({} ms)",
            t.id,
            t.request_ms
        );
        let slot = (t.request_ms / SLOT_MS) as usize;
        let region = grid.region_of(t.pickup).idx();
        s.add(0, slot, region, 1.0);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::Point;

    #[test]
    fn round_trip_get_set() {
        let mut s = DemandSeries::zeros(2, 48, 4);
        s.set(1, 47, 3, 9.0);
        assert_eq!(s.get(1, 47, 3), 9.0);
        assert_eq!(s.get(0, 0, 0), 0.0);
        assert_eq!(s.total(), 9.0);
        assert_eq!(s.get_flat(48 + 47, 3), 9.0);
    }

    #[test]
    fn frame_is_the_region_row() {
        let mut s = DemandSeries::zeros(1, 2, 3);
        s.set(0, 1, 0, 1.0);
        s.set(0, 1, 1, 2.0);
        s.set(0, 1, 2, 3.0);
        assert_eq!(s.frame(0, 1), &[1.0, 2.0, 3.0]);
        assert_eq!(s.slot_total(0, 1), 6.0);
        assert_eq!(s.max_value(), 3.0);
    }

    #[test]
    fn count_trips_buckets_by_slot_and_region() {
        let grid = Grid::nyc_16x16();
        let p_mid = Point::new(-73.985, 40.755);
        let trips = vec![
            TripRecord {
                id: 0,
                request_ms: 0,
                pickup: p_mid,
                dropoff: p_mid,
            },
            TripRecord {
                id: 1,
                request_ms: SLOT_MS - 1,
                pickup: p_mid,
                dropoff: p_mid,
            },
            TripRecord {
                id: 2,
                request_ms: SLOT_MS,
                pickup: p_mid,
                dropoff: p_mid,
            },
        ];
        let s = count_trips(&trips, &grid);
        let r = grid.region_of(p_mid).idx();
        assert_eq!(s.get(0, 0, r), 2.0);
        assert_eq!(s.get(0, 1, r), 1.0);
        assert_eq!(s.total(), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = DemandSeries::zeros(1, 2, 3);
        s.get(0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "outside the day")]
    fn trip_outside_day_panics() {
        let grid = Grid::nyc_16x16();
        let p = Point::new(-73.985, 40.755);
        let trips = vec![TripRecord {
            id: 0,
            request_ms: DAY_MS,
            pickup: p,
            dropoff: p,
        }];
        count_trips(&trips, &grid);
    }
}
