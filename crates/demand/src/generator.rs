//! Trip and count generation from the intensity profile.

use mrvd_spatial::{Grid, Point, RegionId};
use mrvd_stats::sample_poisson;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::profile::NycProfile;
use crate::series::DemandSeries;
use crate::trip::TripRecord;
use crate::{SLOTS_PER_DAY, SLOT_MS};

/// Configuration of the NYC-like workload generator.
#[derive(Debug, Clone)]
pub struct NycLikeConfig {
    /// Target orders on a nominal weekday. The paper's test day has
    /// 282,255 yellow-taxi orders; scale this down for quick runs.
    pub orders_per_day: f64,
    /// Base RNG seed; day `d` derives its own stream from it.
    pub seed: u64,
    /// Distance-decay scale of the destination gravity model, meters.
    /// Larger values produce longer trips.
    pub gravity_scale_m: f64,
    /// Trips shorter than this (straight-line) are resampled; the TLC
    /// data has essentially no sub-300 m rides.
    pub min_trip_m: f64,
}

impl Default for NycLikeConfig {
    fn default() -> Self {
        Self {
            orders_per_day: 282_255.0,
            seed: 0x5EED,
            gravity_scale_m: 3_800.0,
            min_trip_m: 400.0,
        }
    }
}

/// Hook points for shaping the generator's Poisson rates per
/// `(slot, region)` cell — the extension surface scenario specs build on
/// (surge windows multiply rates, hotspot injections add extra origin
/// mass) without touching the calibrated base profile.
///
/// Both hooks default to the identity, and the unshaped path
/// ([`NycLikeGenerator::generate_day_trips`]) is byte-identical to
/// shaping with [`NoShaping`]: a factor of exactly `1.0` leaves the rate
/// bit-identical and a zero extra rate draws nothing from the RNG.
pub trait DemandShaper {
    /// Multiplies the base Poisson rate of `(slot, region)`. Must be
    /// finite and non-negative.
    fn rate_factor(&self, slot: usize, region: RegionId) -> f64 {
        let _ = (slot, region);
        1.0
    }

    /// Extra Poisson rate (expected additional orders) injected into
    /// `(slot, region)` on top of the scaled base rate. Must be finite
    /// and non-negative.
    fn extra_rate(&self, slot: usize, region: RegionId) -> f64 {
        let _ = (slot, region);
        0.0
    }
}

/// The identity shaper: no surge, no injections.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoShaping;

impl DemandShaper for NoShaping {}

/// Generates NYC-like trips and demand counts (substitution for the NYC
/// TLC dataset; see DESIGN.md).
///
/// Per region and 30-minute slot, order counts are Poisson with the rate
/// given by [`NycProfile::expected_slot_count`]; within a slot, arrival
/// times are uniform (which makes the arrival process piecewise-constant
/// Poisson); pickup points are uniform within the origin region;
/// destinations follow a gravity model `P(j|i) ∝ dest_w_j · e^{−d_ij/L}`.
pub struct NycLikeGenerator {
    profile: NycProfile,
    config: NycLikeConfig,
    grid: Grid,
}

impl NycLikeGenerator {
    /// Creates a generator over the paper's 16×16 NYC grid.
    pub fn new(config: NycLikeConfig) -> Self {
        let grid = Grid::nyc_16x16();
        Self::with_grid(grid, config)
    }

    /// Creates a generator over a custom grid.
    pub fn with_grid(grid: Grid, config: NycLikeConfig) -> Self {
        assert!(
            config.gravity_scale_m > 0.0,
            "NycLikeGenerator: gravity scale must be positive"
        );
        let profile = NycProfile::new(grid.clone(), config.orders_per_day, config.seed);
        Self {
            profile,
            config,
            grid,
        }
    }

    /// The underlying intensity profile.
    pub fn profile(&self) -> &NycProfile {
        &self.profile
    }

    /// The grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    fn day_rng(&self, day: usize, salt: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(salt)
                .wrapping_add((day as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
        )
    }

    /// Generates the complete, time-sorted order list of one day.
    pub fn generate_day_trips(&self, day: usize) -> Vec<TripRecord> {
        self.generate_day_trips_with(day, &NoShaping)
    }

    /// Generates one day with a [`DemandShaper`] perturbing the Poisson
    /// rates: each `(slot, region)` cell draws
    /// `Poisson(base · rate_factor) + Poisson(extra_rate)` orders.
    ///
    /// # Panics
    /// Panics if the shaper returns a negative or non-finite factor or
    /// extra rate.
    pub fn generate_day_trips_with(
        &self,
        day: usize,
        shaper: &dyn DemandShaper,
    ) -> Vec<TripRecord> {
        let mut rng = self.day_rng(day, 1);
        let mut trips = Vec::new();
        let mut id = (day as u64) << 32;
        // Per-slot and per-cell tables are hoisted out of the trip loop:
        // the base rates cost one day-factor solve per slot (not per
        // region) and the gravity cumulative is built once per *occupied*
        // cell (not per trip). Neither computation touches the RNG, so
        // the generated stream is bit-identical to the naive nesting.
        let mut rates = Vec::new();
        let mut dest_w = Vec::new();
        let mut gravity_cum = Vec::new();
        for slot in 0..SLOTS_PER_DAY {
            self.profile.dest_weights_into(slot, &mut dest_w);
            self.profile
                .expected_slot_counts_into(day, slot, &mut rates);
            for region in self.grid.regions() {
                let factor = shaper.rate_factor(slot, region);
                assert!(
                    factor.is_finite() && factor >= 0.0,
                    "DemandShaper: rate factor must be finite and non-negative, got {factor}"
                );
                let extra = shaper.extra_rate(slot, region);
                assert!(
                    extra.is_finite() && extra >= 0.0,
                    "DemandShaper: extra rate must be finite and non-negative, got {extra}"
                );
                let rate = rates[region.idx()] * factor;
                let mut n = sample_poisson(&mut rng, rate);
                if extra > 0.0 {
                    // Injected mass draws separately so the unshaped path
                    // consumes an identical RNG stream.
                    n += sample_poisson(&mut rng, extra);
                }
                if n == 0 {
                    continue;
                }
                self.gravity_cum_into(region, &dest_w, &mut gravity_cum);
                for _ in 0..n {
                    let request_ms = slot as u64 * SLOT_MS + rng.gen_range(0..SLOT_MS);
                    let pickup = self.random_point_in(region, &mut rng);
                    let dropoff =
                        self.sample_destination_from(region, &gravity_cum, pickup, &mut rng);
                    trips.push(TripRecord {
                        id,
                        request_ms,
                        pickup,
                        dropoff,
                    });
                    id += 1;
                }
            }
        }
        trips.sort_by_key(|t| (t.request_ms, t.id));
        trips
    }

    /// Generates Poisson slot counts for `days` consecutive days without
    /// materializing trips (used to build multi-month training histories).
    ///
    /// Counts are drawn from the same rates as [`Self::generate_day_trips`]
    /// but are independent realizations; to get the counts of a generated
    /// trip list, use [`crate::series::count_trips`].
    pub fn generate_counts(&self, days: usize) -> DemandSeries {
        let regions = self.grid.num_regions();
        let mut s = DemandSeries::zeros(days, SLOTS_PER_DAY, regions);
        let mut rates = Vec::new();
        for day in 0..days {
            let mut rng = self.day_rng(day, 2);
            for slot in 0..SLOTS_PER_DAY {
                self.profile
                    .expected_slot_counts_into(day, slot, &mut rates);
                for region in self.grid.regions() {
                    s.set(
                        day,
                        slot,
                        region.idx(),
                        sample_poisson(&mut rng, rates[region.idx()]) as f64,
                    );
                }
            }
        }
        s
    }

    /// The noise-free expected counts (Poisson rates) for `days` days —
    /// the best any predictor could do in expectation.
    pub fn expected_counts(&self, days: usize) -> DemandSeries {
        let mut s = DemandSeries::zeros(days, SLOTS_PER_DAY, self.grid.num_regions());
        let mut rates = Vec::new();
        for day in 0..days {
            for slot in 0..SLOTS_PER_DAY {
                self.profile
                    .expected_slot_counts_into(day, slot, &mut rates);
                for (r, &rate) in rates.iter().enumerate() {
                    s.set(day, slot, r, rate);
                }
            }
        }
        s
    }

    /// Uniform point inside a region's cell.
    fn random_point_in(&self, region: RegionId, rng: &mut StdRng) -> Point {
        let (lo, hi) = self.grid.cell_box(region);
        Point::new(rng.gen_range(lo.lon..hi.lon), rng.gen_range(lo.lat..hi.lat))
    }

    /// Builds the gravity-model cumulative distribution of one origin:
    /// region `j` gets probability `∝ dest_w[j] · exp(−d(i,j) / L)`.
    /// Shared by every trip of an occupied `(slot, origin)` cell — the
    /// per-trip O(regions) rebuild was the generation wall at large
    /// grids. The float sequence (raw weights, one total, per-entry
    /// division, running sum) matches the per-trip computation exactly,
    /// so sampling from it is bit-identical.
    fn gravity_cum_into(&self, origin: RegionId, dest_w: &[f64], cum: &mut Vec<f64>) {
        let oc = self.grid.center(origin);
        cum.clear();
        cum.extend(dest_w.iter().enumerate().map(|(j, &w)| {
            let d = oc.distance_m(&self.grid.center(RegionId(j as u32)));
            w * (-d / self.config.gravity_scale_m).exp()
        }));
        let total: f64 = cum.iter().sum();
        let mut acc = 0.0;
        for w in cum.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
    }

    /// Gravity-model destination drawn from a prebuilt cumulative
    /// ([`Self::gravity_cum_into`]): a uniform point in the sampled
    /// region, resampled while the trip is shorter than `min_trip_m`.
    fn sample_destination_from(
        &self,
        origin: RegionId,
        cum: &[f64],
        pickup: Point,
        rng: &mut StdRng,
    ) -> Point {
        for _ in 0..32 {
            let j = sample_categorical(cum, rng);
            let p = self.random_point_in(RegionId(j as u32), rng);
            if pickup.distance_m(&p) >= self.config.min_trip_m {
                return p;
            }
        }
        // Degenerate fallback (tiny grids): nudge to an adjacent cell.
        let neighbors = self.grid.neighbors(origin);
        let j = neighbors[rng.gen_range(0..neighbors.len())];
        self.random_point_in(j, rng)
    }
}

/// A spatially and temporally uniform Poisson workload over a grid — the
/// controlled "synthetic dataset" used in queueing-validation experiments.
#[derive(Debug, Clone)]
pub struct UniformConfig {
    /// Order rate per region per minute.
    pub rate_per_region_per_min: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates uniform Poisson trips (every region identical, destinations
/// uniform over the whole grid).
pub struct UniformGenerator {
    grid: Grid,
    config: UniformConfig,
}

impl UniformGenerator {
    /// Creates a uniform generator over `grid`.
    pub fn new(grid: Grid, config: UniformConfig) -> Self {
        assert!(
            config.rate_per_region_per_min >= 0.0,
            "UniformGenerator: rate must be non-negative"
        );
        Self { grid, config }
    }

    /// Generates one day of uniform trips, time-sorted.
    pub fn generate_day_trips(&self, day: usize) -> Vec<TripRecord> {
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add((day as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)),
        );
        let mut trips = Vec::new();
        let mut id = (day as u64) << 32;
        let per_slot = self.config.rate_per_region_per_min * (SLOT_MS as f64 / 60_000.0);
        for slot in 0..SLOTS_PER_DAY {
            for region in self.grid.regions() {
                let n = sample_poisson(&mut rng, per_slot);
                for _ in 0..n {
                    let request_ms = slot as u64 * SLOT_MS + rng.gen_range(0..SLOT_MS);
                    let (lo, hi) = self.grid.cell_box(region);
                    let pickup =
                        Point::new(rng.gen_range(lo.lon..hi.lon), rng.gen_range(lo.lat..hi.lat));
                    let dropoff = Point::new(
                        rng.gen_range(self.grid.min().lon..self.grid.max().lon),
                        rng.gen_range(self.grid.min().lat..self.grid.max().lat),
                    );
                    trips.push(TripRecord {
                        id,
                        request_ms,
                        pickup,
                        dropoff,
                    });
                    id += 1;
                }
            }
        }
        trips.sort_by_key(|t| (t.request_ms, t.id));
        trips
    }
}

/// Samples an index from a cumulative distribution by binary search.
fn sample_categorical(cum: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen::<f64>() * cum.last().copied().unwrap_or(1.0);
    match cum.binary_search_by(|&c| c.partial_cmp(&u).expect("weights are finite")) {
        Ok(i) | Err(i) => i.min(cum.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::ConstantSpeedModel;
    use mrvd_spatial::TravelModel;

    fn small_gen() -> NycLikeGenerator {
        NycLikeGenerator::new(NycLikeConfig {
            orders_per_day: 20_000.0,
            seed: 7,
            ..NycLikeConfig::default()
        })
    }

    #[test]
    fn hoisted_gravity_cum_matches_the_per_trip_computation() {
        // The per-(slot, origin) gravity cumulative must reproduce the
        // float sequence the old per-trip code computed inline: raw
        // weights, one total, divide each weight, running sum.
        let g = small_gen();
        let dest_w = g.profile().dest_weights(17);
        let scale = NycLikeConfig::default().gravity_scale_m;
        let mut cum = Vec::new();
        for origin in [RegionId(0), RegionId(37), RegionId(255)] {
            g.gravity_cum_into(origin, &dest_w, &mut cum);
            let oc = g.grid().center(origin);
            let weights: Vec<f64> = dest_w
                .iter()
                .enumerate()
                .map(|(j, &w)| {
                    let d = oc.distance_m(&g.grid().center(RegionId(j as u32)));
                    w * (-d / scale).exp()
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            let expect: Vec<f64> = weights
                .iter()
                .map(|&w| {
                    acc += w / total;
                    acc
                })
                .collect();
            assert_eq!(cum.len(), expect.len());
            for (j, (&got, &want)) in cum.iter().zip(&expect).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "origin {origin:?} dest {j}: {got} != {want}"
                );
            }
        }
    }

    #[test]
    fn daily_volume_is_near_target() {
        let g = small_gen();
        let trips = g.generate_day_trips(0);
        let expect = 20_000.0 * g.profile().day_factor(0);
        let n = trips.len() as f64;
        assert!(
            (n - expect).abs() < 0.05 * expect,
            "generated {n} vs expected {expect}"
        );
    }

    #[test]
    fn trips_are_sorted_and_in_day() {
        let g = small_gen();
        let trips = g.generate_day_trips(0);
        assert!(trips.windows(2).all(|w| w[0].request_ms <= w[1].request_ms));
        assert!(trips.iter().all(|t| t.request_ms < crate::DAY_MS));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_gen().generate_day_trips(2);
        let b = small_gen().generate_day_trips(2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
    }

    #[test]
    fn different_days_differ() {
        let g = small_gen();
        let a = g.generate_day_trips(0);
        let b = g.generate_day_trips(1);
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn mean_trip_duration_matches_paper_shape() {
        // The paper notes most NYC trips take < 20 minutes; our default
        // speed model is 8 m/s. Target mean duration 8–20 min with at
        // least 60% of trips under 20 minutes.
        let g = small_gen();
        let model = ConstantSpeedModel::default();
        let trips = g.generate_day_trips(0);
        let durs: Vec<f64> = trips
            .iter()
            .map(|t| model.travel_time_s(t.pickup, t.dropoff))
            .collect();
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        assert!((480.0..1_200.0).contains(&mean), "mean duration {mean:.0}s");
        let under20 = durs.iter().filter(|&&d| d < 1_200.0).count() as f64 / durs.len() as f64;
        assert!(under20 > 0.6, "only {under20:.2} of trips under 20 min");
    }

    #[test]
    fn no_degenerate_trips() {
        let g = small_gen();
        let trips = g.generate_day_trips(0);
        let short = trips.iter().filter(|t| t.distance_m() < 300.0).count();
        assert!(
            (short as f64) < 0.01 * trips.len() as f64,
            "{short} degenerate trips out of {}",
            trips.len()
        );
    }

    #[test]
    fn no_shaping_is_byte_identical_to_unshaped_generation() {
        let g = small_gen();
        let a = g.generate_day_trips(1);
        let b = g.generate_day_trips_with(1, &NoShaping);
        assert_eq!(a, b);
    }

    #[test]
    fn rate_factor_scales_volume() {
        struct Halve;
        impl DemandShaper for Halve {
            fn rate_factor(&self, _slot: usize, _region: RegionId) -> f64 {
                0.5
            }
        }
        let g = small_gen();
        let base = g.generate_day_trips(0).len() as f64;
        let halved = g.generate_day_trips_with(0, &Halve).len() as f64;
        assert!(
            (halved - 0.5 * base).abs() < 0.1 * base,
            "halved {halved} vs base {base}"
        );
    }

    #[test]
    fn extra_rate_injects_mass_into_the_targeted_cell() {
        struct Inject {
            region: RegionId,
        }
        impl DemandShaper for Inject {
            fn extra_rate(&self, slot: usize, region: RegionId) -> f64 {
                if slot == 12 && region == self.region {
                    400.0
                } else {
                    0.0
                }
            }
        }
        let g = small_gen();
        // A quiet periphery cell at 6:00 (slot 12).
        let region = g.grid().region_of(mrvd_spatial::Point::new(-73.79, 40.65));
        let base = g.generate_day_trips(0);
        let shaped = g.generate_day_trips_with(0, &Inject { region });
        let in_cell = |trips: &[TripRecord]| {
            trips
                .iter()
                .filter(|t| {
                    t.request_ms / crate::SLOT_MS == 12 && g.grid().region_of(t.pickup) == region
                })
                .count() as f64
        };
        let injected = in_cell(&shaped) - in_cell(&base);
        assert!(
            (injected - 400.0).abs() < 80.0,
            "injected {injected} orders, expected ~400"
        );
        assert!(shaped
            .windows(2)
            .all(|w| w[0].request_ms <= w[1].request_ms));
    }

    #[test]
    #[should_panic(expected = "rate factor must be finite")]
    fn negative_rate_factor_panics() {
        struct Bad;
        impl DemandShaper for Bad {
            fn rate_factor(&self, _slot: usize, _region: RegionId) -> f64 {
                -1.0
            }
        }
        small_gen().generate_day_trips_with(0, &Bad);
    }

    #[test]
    fn counts_match_trip_realizations_in_distribution() {
        let g = small_gen();
        let counts = g.generate_counts(1);
        let trips = g.generate_day_trips(0);
        let realized = crate::series::count_trips(&trips, g.grid());
        // Independent Poisson draws of the same rates: totals agree within
        // a few percent at 20K orders.
        let (a, b) = (counts.total(), realized.total());
        assert!(
            (a - b).abs() < 0.08 * a.max(b),
            "counts {a} vs realized {b}"
        );
    }

    #[test]
    fn expected_counts_are_the_poisson_means() {
        let g = small_gen();
        let exp = g.expected_counts(2);
        // Summing rates over a day gives the day's volume.
        let day0: f64 = (0..SLOTS_PER_DAY).map(|s| exp.slot_total(0, s)).sum();
        let target = 20_000.0 * g.profile().day_factor(0);
        assert!((day0 - target).abs() < 1e-6 * target);
    }

    #[test]
    fn uniform_generator_is_flat() {
        let grid = Grid::nyc_16x16();
        let g = UniformGenerator::new(
            grid.clone(),
            UniformConfig {
                rate_per_region_per_min: 0.05,
                seed: 3,
            },
        );
        let trips = g.generate_day_trips(0);
        // 0.05/min × 1440 min × 256 regions ≈ 18,432.
        let expect = 0.05 * 1440.0 * 256.0;
        assert!(
            ((trips.len() as f64) - expect).abs() < 0.05 * expect,
            "got {}",
            trips.len()
        );
        // Pickup counts per region are roughly uniform: max/min < 3.
        let counts = crate::series::count_trips(&trips, &grid);
        let per_region: Vec<f64> = (0..256)
            .map(|r| (0..SLOTS_PER_DAY).map(|s| counts.get(0, s, r)).sum())
            .collect();
        let max = per_region.iter().cloned().fold(0.0, f64::max);
        let min = per_region.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min.max(1.0) < 3.0, "max {max} min {min}");
    }
}
