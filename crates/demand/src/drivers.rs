//! Initial driver placement.
//!
//! The paper initializes driver origins by sampling order records and
//! using their pickup locations (§6.2), which concentrates supply where
//! demand historically is — reproduced here.

use mrvd_spatial::Point;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::trip::TripRecord;

/// Samples `n` initial driver positions from the pickup locations of
/// `trips`. Samples without replacement while possible, then with
/// replacement if `n > trips.len()`.
///
/// # Panics
/// Panics if `trips` is empty and `n > 0`.
pub fn sample_driver_positions<R: Rng + ?Sized>(
    trips: &[TripRecord],
    n: usize,
    rng: &mut R,
) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    assert!(
        !trips.is_empty(),
        "sample_driver_positions: no trips to sample from"
    );
    if n <= trips.len() {
        let mut idx: Vec<usize> = (0..trips.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        idx.into_iter().map(|i| trips[i].pickup).collect()
    } else {
        (0..n)
            .map(|_| trips[rng.gen_range(0..trips.len())].pickup)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn trips(n: usize) -> Vec<TripRecord> {
        (0..n)
            .map(|i| TripRecord {
                id: i as u64,
                request_ms: 0,
                pickup: Point::new(-74.0 + i as f64 * 1e-3, 40.7),
                dropoff: Point::new(-73.9, 40.8),
            })
            .collect()
    }

    #[test]
    fn without_replacement_when_enough_trips() {
        let ts = trips(100);
        let mut rng = StdRng::seed_from_u64(1);
        let pos = sample_driver_positions(&ts, 50, &mut rng);
        assert_eq!(pos.len(), 50);
        // All positions are distinct pickups (trips are distinct).
        let mut lons: Vec<f64> = pos.iter().map(|p| p.lon).collect();
        lons.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lons.dedup();
        assert_eq!(lons.len(), 50);
    }

    #[test]
    fn with_replacement_when_oversampled() {
        let ts = trips(3);
        let mut rng = StdRng::seed_from_u64(2);
        let pos = sample_driver_positions(&ts, 10, &mut rng);
        assert_eq!(pos.len(), 10);
    }

    #[test]
    fn zero_drivers_is_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_driver_positions(&[], 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "no trips")]
    fn empty_trips_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_driver_positions(&[], 1, &mut rng);
    }
}
