//! The spatio-temporal intensity model behind the NYC-like workload.
//!
//! Calibration targets (all taken from facts the paper states or uses):
//!
//! * ~282K orders on a weekday over the 16×16 NYC grid (§6.1);
//! * order arrivals per region over short windows are Poisson (App. B);
//! * demand concentrates in a Manhattan-like hotspot band (Fig. 5);
//! * two daily peaks (the paper discusses 8 A.M. and 8 P.M. rush hours);
//! * most trips shorter than 20 minutes (used to explain Fig. 9);
//! * morning flow points *into* the core and evening flow *out of* it —
//!   the supply imbalance motivating the whole framework (Example 1).

use mrvd_spatial::{Grid, Point, RegionId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{SLOTS_PER_DAY, SLOT_MS};

/// A Gaussian demand hotspot in degree space.
struct Hotspot {
    center: Point,
    /// Standard deviation in degrees (latitude scale).
    sigma: f64,
    amplitude: f64,
}

/// Evaluates a hotspot field at `p`; longitude is compressed by cos(40.7°)
/// so the Gaussians are round in meters.
fn field(hotspots: &[Hotspot], base: f64, p: Point) -> f64 {
    const LON_SCALE: f64 = 0.758; // cos of mid-latitude
    let mut v = base;
    for h in hotspots {
        let dx = (p.lon - h.center.lon) * LON_SCALE;
        let dy = p.lat - h.center.lat;
        let d2 = dx * dx + dy * dy;
        v += h.amplitude * (-d2 / (2.0 * h.sigma * h.sigma)).exp();
    }
    v
}

/// Manhattan-core hotspots (midtown, downtown, upper east/west).
///
/// Amplitudes and the tiny uniform base are calibrated so that demand is
/// as core-concentrated as the real yellow-taxi data (Fig. 5 of the
/// paper): the large majority of pickups and dropoffs stay in and around
/// Manhattan, so drivers circulate in the dense core instead of being
/// stranded in empty periphery cells.
fn core_hotspots() -> Vec<Hotspot> {
    vec![
        Hotspot {
            center: Point::new(-73.985, 40.755), // Midtown
            sigma: 0.024,
            amplitude: 1.0,
        },
        Hotspot {
            center: Point::new(-74.008, 40.712), // Downtown
            sigma: 0.016,
            amplitude: 0.6,
        },
        Hotspot {
            center: Point::new(-73.960, 40.780), // Upper East/West
            sigma: 0.020,
            amplitude: 0.6,
        },
    ]
}

/// Residential hotspots: the near-core neighbourhoods yellow cabs
/// actually serve (plus faint airport traffic). Deliberately hugging the
/// core — see [`core_hotspots`].
fn residential_hotspots() -> Vec<Hotspot> {
    vec![
        Hotspot {
            center: Point::new(-73.975, 40.730), // East/West Village
            sigma: 0.022,
            amplitude: 0.8,
        },
        Hotspot {
            center: Point::new(-73.955, 40.775), // Upper East Side
            sigma: 0.020,
            amplitude: 0.7,
        },
        Hotspot {
            center: Point::new(-73.955, 40.715), // Williamsburg
            sigma: 0.018,
            amplitude: 0.25,
        },
        Hotspot {
            center: Point::new(-73.940, 40.750), // LIC
            sigma: 0.016,
            amplitude: 0.2,
        },
        Hotspot {
            center: Point::new(-73.870, 40.770), // LGA
            sigma: 0.010,
            amplitude: 0.08,
        },
        Hotspot {
            center: Point::new(-73.790, 40.650), // JFK
            sigma: 0.012,
            amplitude: 0.08,
        },
    ]
}

/// Unnormalized time-of-day demand density, hours in `[0, 24)`.
fn time_curve(h: f64) -> f64 {
    let bump = |mu: f64, sigma: f64| (-((h - mu) * (h - mu)) / (2.0 * sigma * sigma)).exp();
    0.18 + 1.00 * bump(8.25, 1.3)
        + 0.45 * bump(13.5, 2.5)
        + 0.95 * bump(18.5, 1.8)
        + 0.35 * bump(22.0, 1.5)
}

/// Morning rush weight in `[0, 1]` (peaks at ~8:15).
fn morning_bump(h: f64) -> f64 {
    (-((h - 8.25) * (h - 8.25)) / (2.0 * 1.5 * 1.5)).exp()
}

/// Evening rush weight in `[0, 1]` (peaks at ~18:30).
fn evening_bump(h: f64) -> f64 {
    (-((h - 18.5) * (h - 18.5)) / (2.0 * 2.0 * 2.0)).exp()
}

/// Day-of-week demand multipliers, Monday-first.
const DOW_FACTOR: [f64; 7] = [1.0, 1.0, 1.0, 1.02, 1.05, 0.88, 0.72];

/// The complete spatio-temporal intensity profile.
///
/// Deterministic given `(grid, orders_per_day, seed)`; the seed only drives
/// the per-day "weather" factor, so different days of the same profile
/// share geography and the daily curve — exactly what a predictor can hope
/// to learn.
pub struct NycProfile {
    grid: Grid,
    core: Vec<f64>,
    residential: Vec<f64>,
    slot_weight: Vec<f64>,
    orders_per_day: f64,
    seed: u64,
}

impl NycProfile {
    /// Builds the profile over `grid` targeting `orders_per_day` orders on
    /// a nominal weekday (before day-of-week and weather factors).
    ///
    /// # Panics
    /// Panics if `orders_per_day` is not positive and finite.
    pub fn new(grid: Grid, orders_per_day: f64, seed: u64) -> Self {
        assert!(
            orders_per_day > 0.0 && orders_per_day.is_finite(),
            "NycProfile: orders_per_day must be positive, got {orders_per_day}"
        );
        let core_h = core_hotspots();
        let res_h = residential_hotspots();
        let mut core: Vec<f64> = grid
            .regions()
            .map(|r| field(&core_h, 0.004, grid.center(r)))
            .collect();
        let mut residential: Vec<f64> = grid
            .regions()
            .map(|r| field(&res_h, 0.008, grid.center(r)))
            .collect();
        normalize(&mut core);
        normalize(&mut residential);
        let mut slot_weight: Vec<f64> = (0..SLOTS_PER_DAY)
            .map(|s| {
                let mid_h = (s as f64 + 0.5) * (SLOT_MS as f64 / 3_600_000.0);
                time_curve(mid_h)
            })
            .collect();
        normalize(&mut slot_weight);
        Self {
            grid,
            core,
            residential,
            slot_weight,
            orders_per_day,
            seed,
        }
    }

    /// The grid this profile lives on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Target weekday order volume.
    pub fn orders_per_day(&self) -> f64 {
        self.orders_per_day
    }

    /// The combined day-of-week × weather multiplier for `day`
    /// (day 0 is a Monday). The weather factor is log-normal with σ ≈ 8%,
    /// seeded per day.
    pub fn day_factor(&self, day: usize) -> f64 {
        let dow = DOW_FACTOR[day % 7];
        // Box–Muller from a per-day-seeded RNG.
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (day as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        dow * (0.08 * z).exp()
    }

    /// Normalized per-slot share of the daily volume (sums to 1).
    pub fn slot_weight(&self, slot: usize) -> f64 {
        self.slot_weight[slot % SLOTS_PER_DAY]
    }

    /// Fraction of trip *origins* drawn from the core field at hour `h`
    /// (morning rush pulls origins to residential areas; evening pushes
    /// them back to the core).
    fn origin_core_mix(h: f64) -> f64 {
        (0.5 + 0.35 * (evening_bump(h) - morning_bump(h))).clamp(0.1, 0.9)
    }

    /// Mixes the core/residential fields into `out` and normalizes —
    /// the shared body of the origin/destination weight builders.
    fn mixed_weights_into(&self, mix: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.core
                .iter()
                .zip(&self.residential)
                .map(|(c, r)| mix * c + (1.0 - mix) * r),
        );
        normalize(out);
    }

    /// Per-region origin weights for `slot`, normalized to sum 1.
    pub fn origin_weights(&self, slot: usize) -> Vec<f64> {
        let mut w = Vec::new();
        self.origin_weights_into(slot, &mut w);
        w
    }

    /// [`NycProfile::origin_weights`] into a caller-owned buffer, for
    /// per-slot loops that must not allocate per call.
    pub fn origin_weights_into(&self, slot: usize, out: &mut Vec<f64>) {
        let h = (slot % SLOTS_PER_DAY) as f64 * (SLOT_MS as f64 / 3_600_000.0);
        self.mixed_weights_into(Self::origin_core_mix(h + 0.25), out);
    }

    /// Per-region destination weights for `slot` (mirror image of the
    /// origin mix), normalized to sum 1.
    pub fn dest_weights(&self, slot: usize) -> Vec<f64> {
        let mut w = Vec::new();
        self.dest_weights_into(slot, &mut w);
        w
    }

    /// [`NycProfile::dest_weights`] into a caller-owned buffer.
    pub fn dest_weights_into(&self, slot: usize, out: &mut Vec<f64>) {
        let h = (slot % SLOTS_PER_DAY) as f64 * (SLOT_MS as f64 / 3_600_000.0);
        self.mixed_weights_into(1.0 - Self::origin_core_mix(h + 0.25), out);
    }

    /// Expected (noise-free) order count for `region` in `slot` of `day` —
    /// the Poisson rate the generator samples from.
    pub fn expected_slot_count(&self, day: usize, slot: usize, region: RegionId) -> f64 {
        self.orders_per_day
            * self.day_factor(day)
            * self.slot_weight(slot)
            * self.origin_weights(slot)[region.idx()]
    }

    /// Fills `out` with [`NycProfile::expected_slot_count`] for every
    /// region of `(day, slot)` at once: one day-factor solve (it seeds
    /// an RNG) and one origin-weight build per *slot* instead of per
    /// region. Bit-identical to the per-region calls — the shared
    /// prefix `orders_per_day × day_factor × slot_weight` associates
    /// left in both forms.
    pub fn expected_slot_counts_into(&self, day: usize, slot: usize, out: &mut Vec<f64>) {
        self.origin_weights_into(slot, out);
        let base = self.orders_per_day * self.day_factor(day) * self.slot_weight(slot);
        for w in out.iter_mut() {
            *w *= base;
        }
    }
}

/// Normalizes a non-negative weight vector to sum 1.
fn normalize(w: &mut [f64]) {
    let s: f64 = w.iter().sum();
    assert!(s > 0.0, "normalize: weights sum to zero");
    for x in w {
        *x /= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> NycProfile {
        NycProfile::new(Grid::nyc_16x16(), 282_255.0, 13)
    }

    #[test]
    fn slot_weights_sum_to_one() {
        let p = profile();
        let sum: f64 = (0..SLOTS_PER_DAY).map(|s| p.slot_weight(s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weekday_volume_matches_target() {
        let p = profile();
        // Monday (day 0): factor ≈ 1 up to weather noise.
        let total: f64 = (0..SLOTS_PER_DAY)
            .flat_map(|s| p.grid().regions().map(move |r| (s, r)))
            .map(|(s, r)| p.expected_slot_count(0, s, r))
            .sum();
        let target = 282_255.0 * p.day_factor(0);
        assert!(
            (total - target).abs() < 1e-6 * target,
            "total {total} vs target {target}"
        );
        assert!((p.day_factor(0) - 1.0).abs() < 0.3);
    }

    #[test]
    fn sunday_is_quieter_than_friday() {
        let p = profile();
        // The deterministic day-of-week parts order Sunday below Friday.
        let (fri_dow, sun_dow) = (DOW_FACTOR[4], DOW_FACTOR[6]);
        assert!(sun_dow < fri_dow, "dow factors misordered");
        // And the full factor ordering holds for most seeds.
        let fri = p.day_factor(4);
        let sun = p.day_factor(6);
        assert!(sun < fri * 1.1, "sun {sun} vs fri {fri}");
    }

    #[test]
    fn rush_hours_dominate_the_night() {
        let p = profile();
        let slot_of = |h: f64| (h * 2.0) as usize;
        let rush_am = p.slot_weight(slot_of(8.0));
        let rush_pm = p.slot_weight(slot_of(18.5));
        let night = p.slot_weight(slot_of(3.5));
        assert!(rush_am > 3.0 * night, "am {rush_am} night {night}");
        assert!(rush_pm > 3.0 * night);
    }

    #[test]
    fn day_factor_is_deterministic_per_day() {
        let p = profile();
        assert_eq!(p.day_factor(3), p.day_factor(3));
        assert_ne!(p.day_factor(3), p.day_factor(10)); // same dow, different weather
    }

    #[test]
    fn manhattan_core_outweighs_periphery() {
        let p = profile();
        let g = p.grid();
        let midtown = g.region_of(Point::new(-73.985, 40.755));
        let edge = g.region_of(Point::new(-73.78, 40.90));
        let w = p.origin_weights(26); // 13:00, balanced mix
        assert!(
            w[midtown.idx()] > 10.0 * w[edge.idx()],
            "midtown {} vs edge {}",
            w[midtown.idx()],
            w[edge.idx()]
        );
    }

    #[test]
    fn morning_destinations_tilt_into_the_core() {
        let p = profile();
        let g = p.grid();
        let midtown = g.region_of(Point::new(-73.985, 40.755)).idx();
        let dest_am = p.dest_weights(16); // 08:00
        let orig_am = p.origin_weights(16);
        assert!(
            dest_am[midtown] > orig_am[midtown],
            "morning core dest {} <= origin {}",
            dest_am[midtown],
            orig_am[midtown]
        );
        // Evening reverses the tilt.
        let dest_pm = p.dest_weights(37); // 18:30
        let orig_pm = p.origin_weights(37);
        assert!(dest_pm[midtown] < orig_pm[midtown]);
    }

    #[test]
    fn slot_counts_buffer_is_bit_identical_to_per_region_calls() {
        let p = profile();
        let mut buf = vec![99.0; 3]; // wrong size and stale content
        for (day, slot) in [(0, 0), (2, 16), (6, 47)] {
            p.expected_slot_counts_into(day, slot, &mut buf);
            assert_eq!(buf.len(), p.grid().num_regions());
            for (r, &v) in buf.iter().enumerate() {
                let per_region = p.expected_slot_count(day, slot, RegionId(r as u32));
                assert_eq!(
                    v.to_bits(),
                    per_region.to_bits(),
                    "day {day} slot {slot} r {r}"
                );
            }
        }
        // The buffered weight builders match the allocating ones too.
        let mut w = Vec::new();
        p.origin_weights_into(9, &mut w);
        assert_eq!(w, p.origin_weights(9));
        p.dest_weights_into(9, &mut w);
        assert_eq!(w, p.dest_weights(9));
    }

    #[test]
    fn weights_are_normalized_distributions() {
        let p = profile();
        for slot in [0, 16, 26, 37, 44] {
            let o = p.origin_weights(slot);
            let d = p.dest_weights(slot);
            assert!((o.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(o.iter().all(|&x| x >= 0.0));
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }
}
