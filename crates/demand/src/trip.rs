//! Ride orders.

use mrvd_spatial::Point;

/// One ride order — the paper's rider `r_i` with posting time `t_i`,
/// source `s_i` and destination `e_i`. The pickup deadline `τ_i` is
//  attached later by the simulator (base wait + uniform noise, §6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripRecord {
    /// Unique order id.
    pub id: u64,
    /// Posting timestamp `t_i`, milliseconds since the start of the day.
    pub request_ms: u64,
    /// Pickup location `s_i`.
    pub pickup: Point,
    /// Destination `e_i`.
    pub dropoff: Point,
}

impl TripRecord {
    /// Straight-line trip length in meters.
    pub fn distance_m(&self) -> f64 {
        self.pickup.distance_m(&self.dropoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_in_endpoints() {
        let t = TripRecord {
            id: 1,
            request_ms: 0,
            pickup: Point::new(-74.0, 40.7),
            dropoff: Point::new(-73.9, 40.8),
        };
        let rev = TripRecord {
            id: 2,
            request_ms: 0,
            pickup: t.dropoff,
            dropoff: t.pickup,
        };
        assert!((t.distance_m() - rev.distance_m()).abs() < 1e-9);
        assert!(t.distance_m() > 0.0);
    }
}
