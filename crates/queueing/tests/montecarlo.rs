//! Monte-Carlo validation of the queueing analysis.
//!
//! These tests simulate the actual double-sided queue as a continuous-time
//! Markov chain — Poisson rider arrivals, Poisson driver rejoins, FIFO
//! driver dispatch, state-dependent rider reneging — and check that
//!
//! 1. the time-weighted state occupancy matches the analytic steady state
//!    ([`mrvd_queueing::SteadyState`]), and
//! 2. the *measured* idle times of simulated drivers match the paper's
//!    closed-form `ET(λ, μ)` ([`mrvd_queueing::expected_idle_time`]).
//!
//! This is the strongest evidence that Eqs. 5–16 were transcribed
//! correctly: the simulation shares no code with the closed forms.

use mrvd_queueing::{expected_idle_time, QueueParams, Reneging, SteadyState};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;

/// Outcome of one CTMC run.
struct McRun {
    /// Time-weighted occupancy of states `-K ..= +pos_cut`, indexed by
    /// `state + K`.
    occupancy: Vec<f64>,
    /// Mean measured idle time of admitted drivers.
    mean_idle: f64,
    /// Number of admitted (measured) drivers.
    drivers_measured: usize,
    k: u64,
}

/// Simulates the region queue for `horizon` seconds.
///
/// Drivers arriving while `cap` drivers are already queued are turned away
/// and not measured (they cannot exist under the paper's capped model).
/// For the `λ > μ` branch pass a cap large enough to never bind.
fn simulate(params: &QueueParams, cap: u64, horizon: f64, seed: u64) -> McRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = params.capacity_k;
    let pos_cut = 200usize;
    let mut occupancy = vec![0.0; k as usize + pos_cut + 1];
    let mut riders: u64 = 0;
    let mut drivers: VecDeque<f64> = VecDeque::new();
    let mut idle_sum = 0.0;
    let mut idle_n = 0usize;
    let mut t = 0.0;
    while t < horizon {
        let renege = params.reneging.rate(riders, params.mu);
        let total = params.lambda + params.mu + renege;
        let dt = -(1.0 - rng.gen::<f64>()).ln() / total;
        // Accumulate occupancy of the state we are leaving.
        let state = riders as i64 - drivers.len() as i64;
        let idx = (state + k as i64) as usize;
        if idx < occupancy.len() {
            occupancy[idx] += dt.min(horizon - t);
        }
        t += dt;
        if t >= horizon {
            break;
        }
        let u: f64 = rng.gen::<f64>() * total;
        if u < params.lambda {
            // Rider arrival: serve the head driver if any are queued.
            if let Some(join) = drivers.pop_front() {
                idle_sum += t - join;
                idle_n += 1;
            } else {
                riders += 1;
            }
        } else if u < params.lambda + params.mu {
            // Driver rejoin.
            if riders > 0 {
                riders -= 1;
                idle_n += 1; // idle time ≈ 0
            } else if (drivers.len() as u64) < cap {
                drivers.push_back(t);
            }
            // else: turned away, unmeasured (cannot exist under the cap).
        } else {
            // Renege (only reachable when riders > 0).
            riders = riders.saturating_sub(1);
        }
    }
    let total_time: f64 = occupancy.iter().sum();
    for o in &mut occupancy {
        *o /= total_time;
    }
    McRun {
        occupancy,
        mean_idle: if idle_n > 0 {
            idle_sum / idle_n as f64
        } else {
            0.0
        },
        drivers_measured: idle_n,
        k,
    }
}

fn occupancy_of(run: &McRun, state: i64) -> f64 {
    let idx = state + run.k as i64;
    if idx < 0 || idx as usize >= run.occupancy.len() {
        0.0
    } else {
        run.occupancy[idx as usize]
    }
}

#[test]
fn occupancy_matches_steady_state_riders_exceed() {
    let params = QueueParams::new(2.0, 1.0, 1_000, Reneging::Exp { beta: 0.4 });
    let run = simulate(&params, u64::MAX, 300_000.0, 42);
    let ss = SteadyState::compute(&params).unwrap();
    for n in -10i64..=10 {
        let analytic = ss.probability(n);
        let measured = occupancy_of(&run, n);
        // Only states with enough mass to estimate at this horizon: at
        // p ≈ 1e-3 the Monte-Carlo error of a 300k-second run is ~5-8%
        // (autocorrelated visits), so a 10% bound is only ~2σ there.
        if analytic > 2e-3 {
            let rel = (measured - analytic).abs() / analytic;
            assert!(
                rel < 0.10,
                "state {n}: measured {measured:.5}, analytic {analytic:.5}"
            );
        }
    }
}

#[test]
fn occupancy_matches_steady_state_drivers_exceed() {
    let k = 8u64;
    let params = QueueParams::new(1.0, 1.6, k, Reneging::Exp { beta: 0.4 });
    let run = simulate(&params, k, 300_000.0, 7);
    let ss = SteadyState::compute(&params).unwrap();
    for n in -(k as i64)..=5 {
        let analytic = ss.probability(n);
        let measured = occupancy_of(&run, n);
        if analytic > 1e-3 {
            let rel = (measured - analytic).abs() / analytic;
            assert!(
                rel < 0.10,
                "state {n}: measured {measured:.5}, analytic {analytic:.5}"
            );
        }
    }
}

#[test]
fn measured_idle_time_matches_closed_form_riders_exceed() {
    // λ > μ: drivers rarely queue; closed form Eq. 10 applies directly.
    let params = QueueParams::new(2.0, 1.0, 1_000, Reneging::Exp { beta: 0.4 });
    let run = simulate(&params, u64::MAX, 400_000.0, 11);
    let et = expected_idle_time(&params).unwrap();
    assert!(run.drivers_measured > 100_000);
    let rel = (run.mean_idle - et).abs() / et.max(1e-9);
    assert!(
        rel < 0.08,
        "measured {:.4}s vs closed-form {et:.4}s ({} drivers)",
        run.mean_idle,
        run.drivers_measured
    );
}

#[test]
fn measured_idle_time_matches_adjusted_form_drivers_exceed() {
    // λ < μ with cap K: drivers arriving at state −K are turned away, so
    // the measured mean corresponds to the closed-form sum restricted to
    // admitted states, normalized by their probability (PASTA).
    let k = 8u64;
    let params = QueueParams::new(1.0, 1.6, k, Reneging::Exp { beta: 0.4 });
    let run = simulate(&params, k, 400_000.0, 13);
    let ss = SteadyState::compute(&params).unwrap();
    let p_full = ss.probability(-(k as i64));
    let mut admitted = ss.p0() / params.lambda;
    for i in 1..k {
        admitted += (i as f64 + 1.0) / params.lambda * ss.probability(-(i as i64));
    }
    // Positive states contribute idle 0 but count toward the admitted mass.
    let expected = admitted / (1.0 - p_full);
    let rel = (run.mean_idle - expected).abs() / expected;
    assert!(
        rel < 0.08,
        "measured {:.4}s vs adjusted analytic {expected:.4}s",
        run.mean_idle
    );
}

#[test]
fn balanced_rates_concentrate_on_driver_side() {
    // λ = μ: Eq. 15 predicts a uniform plateau over the capped states.
    let k = 6u64;
    let params = QueueParams::new(1.0, 1.0, k, Reneging::Exp { beta: 0.4 });
    let run = simulate(&params, k, 300_000.0, 17);
    let ss = SteadyState::compute(&params).unwrap();
    // All capped states share p0 analytically; occupancy should be flat.
    for n in -(k as i64)..=0 {
        let analytic = ss.probability(n);
        let measured = occupancy_of(&run, n);
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.12,
            "state {n}: measured {measured:.5}, analytic {analytic:.5}"
        );
    }
}
