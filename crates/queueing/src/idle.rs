//! Expected idle time of a rejoining driver (Eqs. 10, 13, 16).
//!
//! A driver that finishes an order in region `a` joins the region's queue.
//! If riders are waiting (`n > 0`) the driver is dispatched immediately
//! (idle ≈ 0). If `n ≤ 0` the driver sits behind `|n|` earlier drivers and
//! is dispatched at the `(|n|+1)`-th upcoming rider arrival, which takes
//! `(|n|+1)/λ` in expectation. Weighting by the steady-state probabilities
//! (PASTA: Poisson driver arrivals see time averages) gives the closed
//! forms implemented here.

use crate::params::QueueParams;
use crate::steady::{branch_of, Branch, DivergentQueue, SteadyState};

/// Expected idle time `ET(λ, μ)` in seconds for a driver rejoining a region
/// with the given queue parameters (Eqs. 10 / 13 / 16 of the paper).
///
/// Returns `Ok(f64::INFINITY)` when `λ = 0` (riders never arrive, the
/// driver waits forever; callers clamp this to the scheduling window) and
/// `Err(DivergentQueue)` in the no-reneging divergent regime.
pub fn expected_idle_time(params: &QueueParams) -> Result<f64, DivergentQueue> {
    let QueueParams {
        lambda,
        mu,
        capacity_k,
        ..
    } = *params;
    if lambda == 0.0 {
        return Ok(f64::INFINITY);
    }
    let ss = SteadyState::compute(params)?;
    let p0 = ss.p0();
    let et = match branch_of(lambda, mu) {
        Branch::RidersExceed => {
            // Eq. 10: ET = λ p0 / (λ − μ)².
            lambda * p0 / ((lambda - mu) * (lambda - mu))
        }
        Branch::DriversExceed => {
            // Eq. 13, evaluated in the overflow-free form
            // ET = (1/λ) Σ_{i=0..K} (i+1) p_{−i}   (p_{−0} = p0).
            let mut sum = p0;
            for i in 1..=capacity_k {
                sum += (i as f64 + 1.0) * ss.probability(-(i as i64));
            }
            sum / lambda
        }
        Branch::Balanced => {
            // Eq. 16: ET = p0 (K+1)(K+2) / (2λ).
            p0 * (capacity_k as f64 + 1.0) * (capacity_k as f64 + 2.0) / (2.0 * lambda)
        }
    };
    Ok(et)
}

/// Numerically evaluates `ET` directly from the steady-state distribution,
/// `Σ_{n≤0} (|n|+1)/λ · p_n`, including the analytic geometric tail on the
/// `λ > μ` branch. Used to cross-check the closed forms; the two agree to
/// floating-point accuracy.
pub fn expected_idle_time_numeric(params: &QueueParams) -> Result<f64, DivergentQueue> {
    let lambda = params.lambda;
    if lambda == 0.0 {
        return Ok(f64::INFINITY);
    }
    let ss = SteadyState::compute(params)?;
    let mut et = ss.p0() / lambda;
    for i in 1..=(ss.neg_len() as i64) {
        et += (i as f64 + 1.0) / lambda * ss.probability(-i);
    }
    Ok(et)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{QueueParams, Reneging};
    use proptest::prelude::{prop_assert, proptest};

    fn exp_params(lambda: f64, mu: f64, k: u64) -> QueueParams {
        QueueParams::new(lambda, mu, k, Reneging::Exp { beta: 0.2 })
    }

    #[test]
    fn closed_form_matches_numeric_summation() {
        for (l, m, k) in [
            (2.0, 1.0, 10),
            (5.0, 0.5, 10),
            (1.0, 2.0, 10),
            (0.2, 1.0, 30),
            (1.5, 1.5, 8),
            (3.0, 3.0, 20),
        ] {
            let p = exp_params(l, m, k);
            let a = expected_idle_time(&p).unwrap();
            let b = expected_idle_time_numeric(&p).unwrap();
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + a),
                "λ={l} μ={m} K={k}: closed {a}, numeric {b}"
            );
        }
    }

    #[test]
    fn zero_lambda_is_infinite() {
        assert_eq!(
            expected_idle_time(&exp_params(0.0, 1.0, 5)).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn et_decreases_with_rider_rate() {
        // More riders → shorter driver idle time (rule (b) of §2.4).
        let mut prev = f64::INFINITY;
        for i in 1..=20 {
            let lambda = i as f64 * 0.5;
            let p = exp_params(lambda, 2.0, 10);
            let et = expected_idle_time(&p).unwrap();
            assert!(
                et <= prev * (1.0 + 1e-9),
                "λ={lambda}: ET {et} > previous {prev}"
            );
            prev = et;
        }
    }

    #[test]
    fn et_increases_with_driver_rate_on_capped_branch() {
        // More competing drivers → longer idle time. Monotonicity is only
        // guaranteed on the μ > λ branch: the paper's reneging function
        // π(n) = e^{βn}/μ scales as 1/μ, so for tiny μ reneging dominates
        // and ET is genuinely non-monotone near μ = 0.
        let mut prev = 0.0;
        for i in 0..=20 {
            let mu = 2.2 + i as f64 * 0.9;
            let p = exp_params(2.0, mu, 10);
            let et = expected_idle_time(&p).unwrap();
            assert!(et >= prev - 1e-12, "μ={mu}: ET {et} < previous {prev}");
            prev = et;
        }
    }

    #[test]
    fn scarce_riders_make_drivers_wait_about_k_over_lambda() {
        // With μ ≫ λ the queue is pinned at −K, so a rejoining driver
        // waits ≈ (K+1)/λ.
        let k = 20u64;
        let lambda = 0.5;
        let p = exp_params(lambda, 50.0, k);
        let et = expected_idle_time(&p).unwrap();
        let expect = (k as f64 + 1.0) / lambda;
        assert!(
            (et - expect).abs() < 0.05 * expect,
            "ET {et} vs (K+1)/λ = {expect}"
        );
    }

    #[test]
    fn abundant_riders_make_idle_time_tiny() {
        // λ ≫ μ: a rejoining driver almost always finds a waiting rider.
        let p = exp_params(50.0, 0.5, 10);
        let et = expected_idle_time(&p).unwrap();
        assert!(et < 0.05, "ET {et}");
    }

    #[test]
    fn balanced_branch_is_continuous_with_capped_branch() {
        // Approaching λ = μ from below must converge to the λ = μ formula.
        let k = 12;
        let balanced = expected_idle_time(&exp_params(1.0, 1.0, k)).unwrap();
        let near = expected_idle_time(&exp_params(1.0, 1.0 + 1e-7, k)).unwrap();
        assert!(
            (balanced - near).abs() < 1e-3 * balanced,
            "balanced {balanced} vs near {near}"
        );
    }

    #[test]
    fn et_scales_inversely_with_rates() {
        // Scaling both rates by c scales time by 1/c (dimensional analysis).
        let base = expected_idle_time(&exp_params(1.0, 2.0, 10)).unwrap();
        // Note: reneging rate π(n)=e^{βn}/μ does not scale linearly, so use
        // a tolerance rather than exact equality.
        let scaled = expected_idle_time(&QueueParams::new(
            10.0,
            20.0,
            10,
            Reneging::Exp { beta: 0.2 },
        ))
        .unwrap();
        assert!(
            (scaled - base / 10.0).abs() < 0.2 * base / 10.0,
            "base {base}, scaled {scaled}"
        );
    }

    #[test]
    fn large_k_stays_finite() {
        let p = exp_params(0.5, 1.0, 5_000);
        let et = expected_idle_time(&p).unwrap();
        assert!(et.is_finite());
        // Pinned near the cap: ET ≈ (K+1)/λ.
        assert!(et > 5_000.0, "ET {et}");
    }

    proptest! {
        #[test]
        fn et_is_nonnegative_and_finite_for_positive_lambda(
            lambda in 0.05f64..20.0,
            mu in 0.0f64..20.0,
            k in 0u64..300,
            beta in 0.01f64..2.0,
        ) {
            let p = QueueParams::new(lambda, mu, k, Reneging::Exp { beta });
            let et = expected_idle_time(&p).unwrap();
            prop_assert!(et.is_finite());
            prop_assert!(et >= 0.0);
        }

        #[test]
        fn closed_form_equals_numeric(
            lambda in 0.05f64..10.0,
            mu in 0.0f64..10.0,
            k in 0u64..100,
        ) {
            let p = QueueParams::new(lambda, mu, k, Reneging::Exp { beta: 0.3 });
            let a = expected_idle_time(&p).unwrap();
            let b = expected_idle_time_numeric(&p).unwrap();
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a), "closed {} vs numeric {}", a, b);
        }
    }
}
