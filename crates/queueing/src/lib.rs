//! Double-sided region queues with impatient riders — the queueing analysis
//! of the paper's §4.
//!
//! Each region of the city is modelled as a birth–death chain whose state
//! `n` counts waiting riders when positive and congested (waiting) drivers
//! when negative (Figure 3 of the paper):
//!
//! * riders arrive with Poisson rate `λ` (birth, `n → n+1`),
//! * drivers rejoin with Poisson rate `μ` (death, `n → n−1`),
//! * waiting riders renege at the state-dependent rate
//!   `π(n) = e^{βn}/μ` for `n > 0` (Eq. 4),
//! * the driver side is capped at `K` congested drivers — the number of
//!   drivers that can become available in the scheduling window — when
//!   `μ ≥ λ` (Eqs. 11–16).
//!
//! Flow balance (`μ_n p_n = λ p_{n−1}`, Eq. 5) gives the steady-state
//! distribution ([`SteadyState`], Eq. 6) from which the expected idle time
//! `ET(λ, μ)` of a driver that rejoins the region is derived in closed form
//! ([`expected_idle_time`], Eqs. 9–16). The idle time drives the paper's
//! dispatching objective: the *idle ratio* `IR = ET / (cost + ET)` (Eq. 17,
//! implemented in `mrvd-core`).

#![forbid(unsafe_code)]

pub mod idle;
pub mod params;
pub mod steady;

pub use idle::{expected_idle_time, expected_idle_time_numeric};
pub use params::{QueueParams, Reneging};
pub use steady::SteadyState;
