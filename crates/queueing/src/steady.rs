//! Steady-state distribution of the double-sided region queue
//! (Eqs. 5–9, 11–12, 14–15 of the paper).

use crate::params::{QueueParams, Reneging};

/// The positive-side series `S = Σ_{n≥1} Π_{i=1..n} λ/(μ+π(i))` did not
/// converge. This can only happen without reneging when `λ ≥ μ`
/// ([`Reneging::None`]); the paper's impatient riders always yield a
/// convergent chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergentQueue;

impl std::fmt::Display for DivergentQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queue has no steady state (no reneging and riders arrive at least as fast as drivers)"
        )
    }
}

impl std::error::Error for DivergentQueue {}

/// Which closed-form branch of §4.2 applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// `λ > μ` (§4.2.1): unbounded driver-side geometric tail.
    RidersExceed,
    /// `λ < μ` (§4.2.2): driver side capped at `K`.
    DriversExceed,
    /// `λ ≈ μ` (§4.2.3, within relative tolerance 1e-9).
    Balanced,
}

/// Relative tolerance under which λ and μ are treated as equal; avoids the
/// catastrophic cancellation in `(λ−μ)²` on the paper's λ>μ branch.
const BALANCE_TOL: f64 = 1e-9;

/// Picks the closed-form branch for a rate pair.
pub fn branch_of(lambda: f64, mu: f64) -> Branch {
    if (lambda - mu).abs() <= BALANCE_TOL * lambda.max(mu) {
        Branch::Balanced
    } else if lambda > mu {
        Branch::RidersExceed
    } else {
        Branch::DriversExceed
    }
}

/// Sums the positive-side series `S = Σ_{n≥1} Π_{i=1..n} λ/(μ+π(i))`
/// together with the per-state products (returned for distribution
/// queries). Terms are accumulated until they fall below `1e-16 · (1+S)`.
///
/// Returns `Err(DivergentQueue)` if the series fails to converge within
/// a large iteration budget (possible only without reneging).
fn positive_series(params: &QueueParams) -> Result<(f64, Vec<f64>), DivergentQueue> {
    let QueueParams { lambda, mu, .. } = *params;
    if lambda == 0.0 {
        return Ok((0.0, Vec::new()));
    }
    // Without reneging the series is geometric: decide convergence exactly.
    if params.reneging == Reneging::None && lambda >= mu {
        return Err(DivergentQueue);
    }
    let mut sum = 0.0f64;
    let mut prod = 1.0f64;
    let mut terms = Vec::new();
    for n in 1..=1_000_000u64 {
        prod *= lambda / params.death_rate(n);
        sum += prod;
        terms.push(prod);
        if prod < 1e-16 * (1.0 + sum) {
            return Ok((sum, terms));
        }
    }
    // Exponential reneging forces convergence long before the budget;
    // reaching here means a pathological parameterization.
    Err(DivergentQueue)
}

/// Steady-state distribution of a region queue.
///
/// Probabilities are stored for the negative side (`neg[i]` = state
/// `-(i+1)`), the zero state (`p0`) and the positive side (`pos[i]` = state
/// `i+1`). On the `λ > μ` branch the negative side is truncated once
/// negligible and the remaining geometric mass is tracked analytically so
/// that [`SteadyState::total_mass`] stays ≈ 1.
#[derive(Debug, Clone)]
pub struct SteadyState {
    branch: Branch,
    p0: f64,
    neg: Vec<f64>,
    pos: Vec<f64>,
    neg_tail_mass: f64,
}

impl SteadyState {
    /// Computes the steady state for the given parameters.
    ///
    /// Special cases: with `λ = 0` the chain drifts to (and stays at) the
    /// driver cap `−K`, so all mass sits there (or at 0 when `μ = 0` too).
    pub fn compute(params: &QueueParams) -> Result<Self, DivergentQueue> {
        let QueueParams {
            lambda,
            mu,
            capacity_k,
            ..
        } = *params;
        if lambda == 0.0 {
            let k = capacity_k as usize;
            let mut neg = vec![0.0; k];
            let p0 = if mu == 0.0 || k == 0 { 1.0 } else { 0.0 };
            if p0 == 0.0 {
                neg[k - 1] = 1.0;
            }
            return Ok(Self {
                branch: Branch::DriversExceed,
                p0,
                neg,
                pos: Vec::new(),
                neg_tail_mass: 0.0,
            });
        }
        let (s_pos, pos_products) = positive_series(params)?;
        match branch_of(lambda, mu) {
            Branch::RidersExceed => {
                // Eq. 9: p0 = [λ/(λ−μ) + S]⁻¹; negative side geometric with
                // ratio μ/λ < 1 (Eq. 6).
                let p0 = 1.0 / (lambda / (lambda - mu) + s_pos);
                let ratio = mu / lambda;
                let mut neg = Vec::new();
                let mut term = p0;
                let mut stored = 0.0;
                while term > 1e-16 * p0.max(1e-300) && neg.len() < 100_000 {
                    term *= ratio;
                    if term <= 0.0 {
                        break;
                    }
                    neg.push(term);
                    stored += term;
                }
                let total_neg = if mu == 0.0 {
                    0.0
                } else {
                    p0 * mu / (lambda - mu)
                };
                let pos = pos_products.iter().map(|r| p0 * r).collect();
                Ok(Self {
                    branch: Branch::RidersExceed,
                    p0,
                    neg,
                    pos,
                    neg_tail_mass: (total_neg - stored).max(0.0),
                })
            }
            Branch::DriversExceed => {
                // Eq. 12 rewritten for numerical stability: normalize by
                // θ^K (θ = μ/λ > 1 so θ^{K+1} overflows for large K).
                // p_{−i} = θ^{i−K} / D, p0 = θ^{−K} / D with
                // D = Σ_{j=0..K} θ^{−j} + S·θ^{−K}.
                let theta = mu / lambda;
                let k = capacity_k;
                let inv = 1.0 / theta;
                let mut denom = 0.0f64;
                let mut inv_pow = 1.0f64; // θ^{-j}
                for _ in 0..=k {
                    denom += inv_pow;
                    inv_pow *= inv;
                }
                let theta_neg_k = theta.powi(-(k.min(100_000) as i32));
                let denom = denom + s_pos * theta_neg_k;
                let p0 = theta_neg_k / denom;
                let mut neg = Vec::with_capacity(k as usize);
                // p_{−i} for i = 1..=K equals θ^{i−K}/D.
                for i in 1..=k {
                    let e = i as i64 - k as i64; // ≤ 0 until i = K
                    neg.push(theta.powi(e as i32) / denom);
                }
                let pos = pos_products.iter().map(|r| p0 * r).collect();
                Ok(Self {
                    branch: Branch::DriversExceed,
                    p0,
                    neg,
                    pos,
                    neg_tail_mass: 0.0,
                })
            }
            Branch::Balanced => {
                // Eq. 15: p0 = [K + 1 + S]⁻¹ and all capped states share p0.
                let k = capacity_k;
                let p0 = 1.0 / (k as f64 + 1.0 + s_pos);
                let neg = vec![p0; k as usize];
                let pos = pos_products.iter().map(|r| p0 * r).collect();
                Ok(Self {
                    branch: Branch::Balanced,
                    p0,
                    neg,
                    pos,
                    neg_tail_mass: 0.0,
                })
            }
        }
    }

    /// The branch that was applied.
    pub fn branch(&self) -> Branch {
        self.branch
    }

    /// `p_0`, the probability of an empty region.
    pub fn p0(&self) -> f64 {
        self.p0
    }

    /// Probability of state `n` (positive = waiting riders, negative =
    /// congested drivers). States beyond the stored truncation return 0;
    /// use [`SteadyState::total_mass`] to see how much tail was truncated.
    pub fn probability(&self, n: i64) -> f64 {
        if n == 0 {
            self.p0
        } else if n > 0 {
            self.pos.get((n - 1) as usize).copied().unwrap_or(0.0)
        } else {
            self.neg.get((-n - 1) as usize).copied().unwrap_or(0.0)
        }
    }

    /// Total stored probability mass plus the analytically tracked tail;
    /// ≈ 1 up to floating-point error.
    pub fn total_mass(&self) -> f64 {
        self.p0 + self.neg.iter().sum::<f64>() + self.pos.iter().sum::<f64>() + self.neg_tail_mass
    }

    /// Number of stored negative states.
    pub fn neg_len(&self) -> usize {
        self.neg.len()
    }

    /// Number of stored positive states.
    pub fn pos_len(&self) -> usize {
        self.pos.len()
    }

    /// Mean queue state `E[n]` (riders positive, drivers negative),
    /// ignoring any truncated tail mass.
    pub fn mean_state(&self) -> f64 {
        let neg: f64 = self
            .neg
            .iter()
            .enumerate()
            .map(|(i, p)| -((i + 1) as f64) * p)
            .sum();
        let pos: f64 = self
            .pos
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum();
        neg + pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{QueueParams, Reneging};
    use proptest::prelude::{prop_assert, proptest};

    fn exp_params(lambda: f64, mu: f64, k: u64) -> QueueParams {
        QueueParams::new(lambda, mu, k, Reneging::Exp { beta: 0.2 })
    }

    #[test]
    fn mass_sums_to_one_across_branches() {
        for (l, m, k) in [
            (2.0, 1.0, 10),
            (1.0, 2.0, 10),
            (1.5, 1.5, 8),
            (0.3, 0.1, 4),
            (0.1, 5.0, 50),
            (1.0, 1.0 + 1e-12, 5),
        ] {
            let ss = SteadyState::compute(&exp_params(l, m, k)).unwrap();
            let mass = ss.total_mass();
            assert!((mass - 1.0).abs() < 1e-9, "λ={l} μ={m} K={k}: mass {mass}");
        }
    }

    #[test]
    fn flow_balance_holds_on_positive_side() {
        let p = exp_params(2.0, 1.0, 10);
        let ss = SteadyState::compute(&p).unwrap();
        // μ_n p_n = λ p_{n−1} (Eq. 5).
        for n in 1..=10i64 {
            let lhs = p.death_rate(n as u64) * ss.probability(n);
            let rhs = p.lambda * ss.probability(n - 1);
            assert!(
                (lhs - rhs).abs() < 1e-12 * rhs.max(1e-300),
                "n={n}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn flow_balance_holds_on_negative_side() {
        let p = exp_params(1.0, 3.0, 12);
        let ss = SteadyState::compute(&p).unwrap();
        // For n ≤ 0 the death rate is plain μ: μ p_n = λ p_{n−1}.
        for n in (-11i64)..=0 {
            let lhs = p.mu * ss.probability(n);
            let rhs = p.lambda * ss.probability(n - 1);
            assert!(
                (lhs - rhs).abs() < 1e-12 * lhs.max(1e-300),
                "n={n}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn branch_selection() {
        assert_eq!(branch_of(2.0, 1.0), Branch::RidersExceed);
        assert_eq!(branch_of(1.0, 2.0), Branch::DriversExceed);
        assert_eq!(branch_of(1.0, 1.0), Branch::Balanced);
        assert_eq!(branch_of(1.0, 1.0 + 1e-12), Branch::Balanced);
    }

    #[test]
    fn no_reneging_diverges_when_riders_dominate() {
        let p = QueueParams::new(2.0, 1.0, 5, Reneging::None);
        assert_eq!(SteadyState::compute(&p).unwrap_err(), DivergentQueue);
        let p = QueueParams::new(1.0, 1.0, 5, Reneging::None);
        assert!(SteadyState::compute(&p).is_err());
    }

    #[test]
    fn no_reneging_converges_when_drivers_dominate() {
        let p = QueueParams::new(1.0, 2.0, 5, Reneging::None);
        let ss = SteadyState::compute(&p).unwrap();
        assert!((ss.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_lambda_puts_mass_at_cap() {
        let p = exp_params(0.0, 1.0, 5);
        let ss = SteadyState::compute(&p).unwrap();
        assert_eq!(ss.probability(-5), 1.0);
        assert_eq!(ss.probability(0), 0.0);
        assert!((ss.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_mu_with_riders_has_no_driver_side() {
        let p = exp_params(1.0, 0.0, 5);
        let ss = SteadyState::compute(&p).unwrap();
        assert_eq!(ss.branch(), Branch::RidersExceed);
        assert_eq!(ss.probability(-1), 0.0);
        assert!((ss.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_capacity_is_numerically_stable() {
        // θ = 2, K = 5000: naive θ^{K+1} overflows; the normalized scheme
        // must stay finite with mass 1.
        let p = exp_params(0.5, 1.0, 5_000);
        let ss = SteadyState::compute(&p).unwrap();
        assert!(ss.total_mass().is_finite());
        assert!((ss.total_mass() - 1.0).abs() < 1e-6);
        // Mass concentrates deep on the driver side.
        assert!(ss.probability(-5_000) > ss.probability(-1));
    }

    #[test]
    fn heavier_reneging_shortens_rider_queue() {
        let soft = QueueParams::new(3.0, 1.0, 5, Reneging::Exp { beta: 0.05 });
        let hard = QueueParams::new(3.0, 1.0, 5, Reneging::Exp { beta: 1.0 });
        let s = SteadyState::compute(&soft).unwrap();
        let h = SteadyState::compute(&hard).unwrap();
        assert!(h.mean_state() < s.mean_state());
    }

    proptest! {
        #[test]
        fn mass_is_one_for_random_params(
            lambda in 0.01f64..20.0,
            mu in 0.0f64..20.0,
            k in 0u64..200,
            beta in 0.01f64..2.0,
        ) {
            let p = QueueParams::new(lambda, mu, k, Reneging::Exp { beta });
            let ss = SteadyState::compute(&p).unwrap();
            prop_assert!((ss.total_mass() - 1.0).abs() < 1e-6);
            prop_assert!(ss.p0() >= 0.0 && ss.p0() <= 1.0);
        }
    }
}
