//! Parameters of a region queue.

/// Reneging behaviour of waiting riders (the paper's §4.1).
///
/// The paper adopts the state-dependent reneging function suggested by
/// Shortle et al.: `π(n) = e^{βn} / μ` for states with `n > 0` waiting
/// riders, where `β` is fitted from historical reneging records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reneging {
    /// No reneging. With `λ ≥ μ` the positive side of the chain has no
    /// steady state; [`crate::steady::SteadyState`] reports divergence.
    /// Provided for tests and ablations only — the paper's riders are
    /// always impatient.
    None,
    /// `π(n) = e^{β·n} / μ` (Eq. 4). Requires `β > 0`.
    Exp {
        /// Growth rate of impatience with queue length.
        beta: f64,
    },
}

impl Reneging {
    /// The reneging rate `π(n)` for a state with `n > 0` waiting riders,
    /// given the driver rate `mu`.
    ///
    /// Returns 0 for `n == 0` or [`Reneging::None`]. When `mu` is zero the
    /// paper's `e^{βn}/μ` is unbounded; it is evaluated with `μ` clamped to
    /// a tiny positive value so that the chain stays well-defined (an empty
    /// region with no rejoining drivers sheds riders almost instantly,
    /// which matches intuition).
    pub fn rate(&self, n: u64, mu: f64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        match *self {
            Reneging::None => 0.0,
            Reneging::Exp { beta } => {
                let mu = mu.max(1e-12);
                (beta * n as f64).exp() / mu
            }
        }
    }
}

/// Parameters of one region's double-sided queue over a scheduling window.
///
/// Rates are *per second* everywhere in this crate; the expected idle time
/// comes back in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueParams {
    /// Rider (order) arrival rate λ, per second (Eq. 18 in the paper
    /// estimates it from predicted and currently waiting riders).
    pub lambda: f64,
    /// Driver rejoin rate μ, per second (Eq. 19).
    pub mu: f64,
    /// Maximum number of drivers that can congest on the driver side of
    /// the queue during the scheduling window (the paper's `K`, §4.2.2).
    pub capacity_k: u64,
    /// Rider reneging behaviour.
    pub reneging: Reneging,
}

impl QueueParams {
    /// Creates parameters, validating finiteness and non-negativity.
    ///
    /// # Panics
    /// Panics if a rate is negative/NaN or `β ≤ 0` for exponential
    /// reneging.
    pub fn new(lambda: f64, mu: f64, capacity_k: u64, reneging: Reneging) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "QueueParams: lambda must be finite and non-negative, got {lambda}"
        );
        assert!(
            mu.is_finite() && mu >= 0.0,
            "QueueParams: mu must be finite and non-negative, got {mu}"
        );
        if let Reneging::Exp { beta } = reneging {
            assert!(
                beta > 0.0 && beta.is_finite(),
                "QueueParams: beta must be positive, got {beta}"
            );
        }
        Self {
            lambda,
            mu,
            capacity_k,
            reneging,
        }
    }

    /// The death rate `μ_n` of state `n > 0`: `μ + π(n)` (Eq. 4).
    pub fn death_rate(&self, n: u64) -> f64 {
        self.mu + self.reneging.rate(n, self.mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reneging_grows_exponentially() {
        let r = Reneging::Exp { beta: 0.5 };
        let mu = 2.0;
        assert_eq!(r.rate(0, mu), 0.0);
        let r1 = r.rate(1, mu);
        let r2 = r.rate(2, mu);
        let r3 = r.rate(3, mu);
        assert!((r2 / r1 - 0.5f64.exp()).abs() < 1e-12);
        assert!((r3 / r2 - 0.5f64.exp()).abs() < 1e-12);
        assert!((r1 - (0.5f64).exp() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn none_never_reneges() {
        assert_eq!(Reneging::None.rate(100, 1.0), 0.0);
    }

    #[test]
    fn death_rate_adds_reneging_above_zero() {
        let p = QueueParams::new(1.0, 2.0, 5, Reneging::Exp { beta: 0.1 });
        assert!(p.death_rate(1) > p.mu);
        assert!(p.death_rate(5) > p.death_rate(1));
    }

    #[test]
    fn zero_mu_reneging_is_finite() {
        let r = Reneging::Exp { beta: 0.3 };
        assert!(r.rate(3, 0.0).is_finite());
        assert!(r.rate(3, 0.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn non_positive_beta_panics() {
        QueueParams::new(1.0, 1.0, 1, Reneging::Exp { beta: 0.0 });
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn negative_lambda_panics() {
        QueueParams::new(-1.0, 1.0, 1, Reneging::None);
    }
}
