//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate the paper's *timing* results (the batch running
//! times of Figures 7b–10b) and microbenchmark each substrate. Fixtures
//! here build representative batch states without running a full day.

#![forbid(unsafe_code)]

use mrvd_core::DemandOracle;
use mrvd_demand::{count_trips, DemandSeries, NycLikeConfig, NycLikeGenerator, TripRecord};
use mrvd_sim::{
    AvailableDriver, BatchViews, BusyDriver, DriverId, RegionCounts, RiderId, WaitingRider,
};
use mrvd_spatial::{Grid, Point, RegionIndex};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A self-contained batch state: everything needed to build a
/// [`mrvd_sim::BatchContext`] repeatedly inside a bench loop.
pub struct BatchFixture {
    /// Waiting riders.
    pub riders: Vec<WaitingRider>,
    /// Available drivers.
    pub drivers: Vec<AvailableDriver>,
    /// Busy drivers with rejoin info.
    pub busy: Vec<BusyDriver>,
    /// The grid.
    pub grid: Grid,
    /// Batch timestamp.
    pub now_ms: u64,
    /// Realized counts of the day (for oracles).
    pub series: DemandSeries,
}

impl BatchFixture {
    /// Builds a rush-hour batch: `n_riders` waiting around the demand
    /// hotspots, `n_avail` available and `n_busy` busy drivers.
    pub fn rush_hour(n_riders: usize, n_avail: usize, n_busy: usize, seed: u64) -> Self {
        let gen = NycLikeGenerator::new(NycLikeConfig {
            orders_per_day: 100_000.0,
            seed,
            ..NycLikeConfig::default()
        });
        let trips = gen.generate_day_trips(0);
        let grid = gen.grid().clone();
        let series = count_trips(&trips, &grid);
        let now_ms = 8 * 3_600_000u64 + 30 * 60_000;
        // Riders: trips posted shortly before `now`.
        let recent: Vec<&TripRecord> = trips
            .iter()
            .filter(|t| t.request_ms <= now_ms && t.request_ms + 180_000 > now_ms)
            .collect();
        assert!(!recent.is_empty(), "fixture needs rush-hour trips");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let riders: Vec<WaitingRider> = (0..n_riders)
            .map(|i| {
                let t = recent[i % recent.len()];
                WaitingRider {
                    id: RiderId(i as u32),
                    pickup: t.pickup,
                    dropoff: t.dropoff,
                    request_ms: t.request_ms,
                    deadline_ms: now_ms + rng.gen_range(5_000..180_000),
                }
            })
            .collect();
        let drivers: Vec<AvailableDriver> = (0..n_avail)
            .map(|i| {
                let t = &trips[rng.gen_range(0..trips.len())];
                AvailableDriver {
                    id: DriverId(i as u32),
                    pos: t.pickup,
                    available_since_ms: now_ms.saturating_sub(rng.gen_range(0..300_000)),
                }
            })
            .collect();
        let busy: Vec<BusyDriver> = (0..n_busy)
            .map(|i| {
                let t = &trips[rng.gen_range(0..trips.len())];
                BusyDriver {
                    id: DriverId((n_avail + i) as u32),
                    dropoff_ms: now_ms + rng.gen_range(10_000..900_000),
                    dropoff_pos: t.dropoff,
                }
            })
            .collect();
        Self {
            riders,
            drivers,
            busy,
            grid,
            now_ms,
            series,
        }
    }

    /// A real-demand oracle over the fixture's day.
    pub fn oracle(&self) -> DemandOracle {
        DemandOracle::real(self.series.clone(), 0)
    }

    /// Re-anchors every rider onto a driver's position with a generous
    /// pickup deadline, guaranteeing candidates (and thus assignments)
    /// in benchmark batches. Shared by the rate-path measurement sites
    /// (the `rate_estimation` bench and the `delta` subcommand's
    /// microbench) so both time the same regime. Call before
    /// [`BatchFixture::region_counts`].
    ///
    /// # Panics
    /// Panics if the fixture has no drivers.
    pub fn anchor_riders_to_drivers(&mut self) {
        assert!(!self.drivers.is_empty(), "no drivers to anchor riders to");
        let n = self.drivers.len();
        for (i, r) in self.riders.iter_mut().enumerate() {
            r.pickup = self.drivers[i % n].pos;
            r.deadline_ms = self.now_ms + 150_000;
        }
    }

    /// A live availability index mirroring the fixture's drivers — what
    /// the engine would hand a policy via `BatchContext::avail_index`.
    pub fn live_index(&self) -> RegionIndex<DriverId> {
        let mut ix = RegionIndex::new(self.grid.clone());
        for d in &self.drivers {
            ix.insert(d.id, d.pos);
        }
        ix
    }

    /// Live batch views mirroring the fixture's state — what the engine
    /// would hand a policy via `BatchContext::views`.
    pub fn batch_views(&self) -> BatchViews {
        let mut v = BatchViews::new();
        for r in &self.riders {
            v.add_waiting(*r);
        }
        for d in &self.drivers {
            v.add_available(*d);
        }
        for b in &self.busy {
            v.add_busy(*b);
        }
        v.clear_dirty();
        v
    }

    /// Live per-region counts mirroring the fixture's views — what the
    /// engine would hand a policy via `BatchContext::region_counts`.
    pub fn region_counts(&self) -> RegionCounts {
        let mut c = RegionCounts::new(self.grid.num_regions());
        for r in &self.riders {
            c.add_waiting(self.grid.region_of(r.pickup));
        }
        for d in &self.drivers {
            c.add_available(self.grid.region_of(d.pos));
        }
        for b in &self.busy {
            c.add_rejoining(self.grid.region_of(b.dropoff_pos), b.dropoff_ms);
        }
        c
    }
}

/// A small deterministic day for end-to-end benches: trips, initial
/// driver positions, grid and realized counts.
pub fn small_day(
    orders: f64,
    drivers: usize,
    seed: u64,
) -> (Vec<TripRecord>, Vec<Point>, Grid, DemandSeries) {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: orders,
        seed,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let pos = mrvd_demand::sample_driver_positions(&trips, drivers, &mut rng);
    let grid = gen.grid().clone();
    let series = count_trips(&trips, &grid);
    (trips, pos, grid, series)
}
