//! Prediction substrate benchmarks: training cost of each model on a
//! 3-week history and per-slot inference latency (the online dispatcher
//! calls `predict` up to once per 30-minute slot).

use criterion::{criterion_group, criterion_main, Criterion};
use mrvd_demand::{NycLikeConfig, NycLikeGenerator, SLOTS_PER_DAY};
use mrvd_prediction::{
    DeepStConfig, DeepStNet, Gbrt, GbrtConfig, HistoricalAverage, LinearRegression, Predictor,
};

fn bench_training(c: &mut Criterion) {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 50_000.0,
        seed: 3,
        ..NycLikeConfig::default()
    });
    let series = gen.generate_counts(22);
    let train_days = 21;
    let mut g = c.benchmark_group("fit");
    g.sample_size(10);
    g.bench_function("linreg", |b| {
        b.iter(|| {
            let mut m = LinearRegression::new();
            m.fit(&series, train_days);
            m
        })
    });
    g.bench_function("gbrt_20trees", |b| {
        b.iter(|| {
            let mut m = Gbrt::new(GbrtConfig {
                n_trees: 20,
                ..GbrtConfig::default()
            });
            m.fit(&series, train_days);
            m
        })
    });
    g.bench_function("deepst_1epoch", |b| {
        b.iter(|| {
            let mut m = DeepStNet::new(
                16,
                16,
                SLOTS_PER_DAY,
                DeepStConfig {
                    epochs: 1,
                    min_history_days: 7,
                    ..DeepStConfig::default()
                },
            );
            m.fit(&series, train_days);
            m
        })
    });
    g.finish();

    // Inference latency.
    let mut lr = LinearRegression::new();
    lr.fit(&series, train_days);
    let mut deepst = DeepStNet::new(
        16,
        16,
        SLOTS_PER_DAY,
        DeepStConfig {
            epochs: 1,
            min_history_days: 7,
            ..DeepStConfig::default()
        },
    );
    deepst.fit(&series, train_days);
    let ha = HistoricalAverage;
    let mut g = c.benchmark_group("predict_slot");
    g.bench_function("ha", |b| b.iter(|| ha.predict(&series, 21, 17)));
    g.bench_function("linreg", |b| b.iter(|| lr.predict(&series, 21, 17)));
    g.bench_function("deepst", |b| b.iter(|| deepst.predict(&series, 21, 17)));
    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
