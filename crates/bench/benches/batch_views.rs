//! Per-batch view maintenance cost: the engine's incrementally updated
//! [`BatchViews`] (a handful of O(1) slot updates at event times, zero
//! per-batch work) against the full waiting/available/busy scans it
//! replaced (`rebuild_reference`, which walks every rider and the whole
//! fleet each executed batch). Both produce the same memberships; the
//! difference is pure engine overhead per executed batch, which is what
//! dominates fine-Δ days where most batches carry one or two changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrvd_bench::BatchFixture;
use mrvd_sim::BatchViews;

fn bench_views(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_view_maintenance");
    g.sample_size(20);
    // One waiting rider over growing fleets: the sparse-change regime of
    // sub-second Δ, where the scan cost is pure overhead. Busy drivers
    // scale with the fleet (they are scanned too).
    for &(riders, avail, busy) in &[
        (1usize, 150usize, 30usize),
        (1, 4_000, 200),
        (1, 10_000, 500),
    ] {
        let f = BatchFixture::rush_hour(riders, avail, busy, 7);
        let size = format!("{riders}r/{avail}d/{busy}b");
        // The old engine: rebuild all three views from scratch scans of
        // the rider pool and the fleet, every executed batch.
        g.bench_with_input(BenchmarkId::new("scan-rebuild", &size), &f, |b, f| {
            let mut views = BatchViews::new();
            b.iter(|| {
                views.rebuild_reference(
                    f.riders.iter().copied(),
                    f.drivers.iter().copied(),
                    f.busy.iter().copied(),
                );
                views.waiting().len() + views.available().len() + views.busy().len()
            })
        });
        // The live engine: per executed batch the views absorb the few
        // event-time mutations (here one assignment round-trip: the
        // rider leaves, a driver goes busy and rejoins) and the batch
        // itself just drains the dirty counter.
        g.bench_with_input(BenchmarkId::new("incremental", &size), &f, |b, f| {
            let mut views = f.batch_views();
            let rider = f.riders[0];
            let driver = f.drivers[0];
            let busy = mrvd_sim::BusyDriver {
                id: driver.id,
                dropoff_ms: f.now_ms + 600_000,
                dropoff_pos: rider.dropoff,
            };
            b.iter(|| {
                views.remove_waiting(rider.id);
                views.remove_available(driver.id);
                views.add_busy(busy);
                views.remove_busy(driver.id);
                views.add_available(driver);
                views.add_waiting(rider);
                let dirtied = views.entries_dirtied();
                views.clear_dirty();
                dirtied
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_views);
criterion_main!(benches);
