//! Microbenchmarks of the queueing analysis (§4): steady-state
//! computation and the closed-form expected idle time on all three
//! branches. This is the arithmetic executed 256× per batch inside
//! Algorithm 2, so its cost bounds the framework's overhead (Table 3's
//! machinery).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mrvd_queueing::{expected_idle_time, QueueParams, Reneging, SteadyState};

fn bench_expected_idle_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("expected_idle_time");
    let cases = [
        (
            "riders_exceed",
            QueueParams::new(0.05, 0.01, 20, Reneging::Exp { beta: 0.05 }),
        ),
        (
            "drivers_exceed",
            QueueParams::new(0.01, 0.05, 20, Reneging::Exp { beta: 0.05 }),
        ),
        (
            "balanced",
            QueueParams::new(0.02, 0.02, 20, Reneging::Exp { beta: 0.05 }),
        ),
        (
            "large_k",
            QueueParams::new(0.01, 0.05, 2_000, Reneging::Exp { beta: 0.05 }),
        ),
    ];
    for (name, params) in cases {
        g.bench_function(name, |b| {
            b.iter(|| expected_idle_time(black_box(&params)).expect("converges"))
        });
    }
    g.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let params = QueueParams::new(0.03, 0.02, 50, Reneging::Exp { beta: 0.05 });
    c.bench_function("steady_state_compute", |b| {
        b.iter(|| SteadyState::compute(black_box(&params)).expect("converges"))
    });
}

fn bench_region_table(c: &mut Criterion) {
    // The full per-batch ET table: 256 regions with mixed rates.
    let params: Vec<QueueParams> = (0..256)
        .map(|k| {
            let lambda = 0.001 + (k % 17) as f64 * 0.003;
            let mu = 0.001 + (k % 11) as f64 * 0.004;
            QueueParams::new(
                lambda,
                mu,
                5 + (k % 40) as u64,
                Reneging::Exp { beta: 0.05 },
            )
        })
        .collect();
    c.bench_function("et_table_256_regions", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &params {
                acc += expected_idle_time(black_box(p)).expect("converges");
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_expected_idle_time,
    bench_steady_state,
    bench_region_table
);
criterion_main!(benches);
