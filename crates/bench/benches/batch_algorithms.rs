//! Per-batch running time of every dispatching algorithm — the quantity
//! the paper plots in Figures 7(b)–10(b). The batch state is a fixed
//! rush-hour snapshot; the rider-pool size is swept like the paper's
//! driver sweep (more drivers ⇒ more riders served per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrvd_bench::BatchFixture;
use mrvd_core::{DispatchConfig, Ltg, Near, Polar, PolarConfig, QueueingPolicy, Rand};
use mrvd_sim::{BatchContext, DispatchPolicy};
use mrvd_spatial::ConstantSpeedModel;

fn ctx<'a>(f: &'a BatchFixture, travel: &'a ConstantSpeedModel) -> BatchContext<'a> {
    BatchContext {
        now_ms: f.now_ms,
        riders: &f.riders,
        drivers: &f.drivers,
        busy: &f.busy,
        travel,
        grid: &f.grid,
        avail_index: None,
        region_counts: None,
        views: None,
    }
}

fn bench_policies(c: &mut Criterion) {
    let travel = ConstantSpeedModel::default();
    let mut g = c.benchmark_group("batch_assign");
    g.sample_size(20);
    for &(riders, avail, busy) in &[
        (200usize, 20usize, 500usize),
        (600, 60, 1500),
        (1200, 120, 3000),
    ] {
        let f = BatchFixture::rush_hour(riders, avail, busy, 7);
        let size = format!("{riders}r/{avail}d");
        g.bench_with_input(BenchmarkId::new("IRG", &size), &f, |b, f| {
            let mut p = QueueingPolicy::irg(DispatchConfig::default(), f.oracle());
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
        g.bench_with_input(BenchmarkId::new("LS", &size), &f, |b, f| {
            let mut p = QueueingPolicy::ls(DispatchConfig::default(), f.oracle());
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
        g.bench_with_input(BenchmarkId::new("SHORT", &size), &f, |b, f| {
            let mut p = QueueingPolicy::short(DispatchConfig::default(), f.oracle());
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
        g.bench_with_input(BenchmarkId::new("LTG", &size), &f, |b, f| {
            let mut p = Ltg::default();
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
        g.bench_with_input(BenchmarkId::new("NEAR", &size), &f, |b, f| {
            let mut p = Near::default();
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
        g.bench_with_input(BenchmarkId::new("RAND", &size), &f, |b, f| {
            let mut p = Rand::new(3);
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
        g.bench_with_input(BenchmarkId::new("POLAR", &size), &f, |b, f| {
            let mut p = Polar::new(
                PolarConfig::default(),
                &f.oracle(),
                &f.grid,
                f.drivers.len(),
            );
            b.iter(|| p.assign(&ctx(f, &travel)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
