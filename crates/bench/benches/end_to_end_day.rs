//! End-to-end throughput: one full simulated day (scaled down) per
//! policy — the macro number behind every revenue figure. Useful for
//! spotting regressions in the simulator or candidate search.

use criterion::{criterion_group, criterion_main, Criterion};
use mrvd_bench::small_day;
use mrvd_core::{DemandOracle, DispatchConfig, Near, QueueingPolicy};
use mrvd_sim::{DriverSchedule, SimConfig, Simulator};
use mrvd_spatial::ConstantSpeedModel;

fn bench_day(c: &mut Criterion) {
    let (trips, drivers, grid, series) = small_day(10_000.0, 120, 5);
    let travel = ConstantSpeedModel::default();
    let mut g = c.benchmark_group("full_day_10k_orders");
    g.sample_size(10);
    g.bench_function("IRG-R", |b| {
        b.iter(|| {
            let mut policy = QueueingPolicy::irg(
                DispatchConfig::default(),
                DemandOracle::real(series.clone(), 0),
            );
            let sim = Simulator::new(SimConfig::default(), &travel, &grid);
            sim.run(&trips, &drivers, &mut policy)
        })
    });
    g.bench_function("NEAR", |b| {
        b.iter(|| {
            let mut policy = Near::default();
            let sim = Simulator::new(SimConfig::default(), &travel, &grid);
            sim.run(&trips, &drivers, &mut policy)
        })
    });
    // The legacy per-Δ loop on the same day: the gap to "NEAR" above is
    // what the event core's quiescent-slot skipping buys end to end.
    g.bench_function("NEAR (reference loop)", |b| {
        b.iter(|| {
            let mut policy = Near::default();
            let sim = Simulator::new(SimConfig::default(), &travel, &grid);
            sim.run_scheduled_reference(
                &trips,
                &drivers,
                &DriverSchedule::constant(drivers.len()),
                &mut policy,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_day);
criterion_main!(benches);
