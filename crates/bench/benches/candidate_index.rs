//! Candidate-generation cost: the engine-maintained live index
//! (incremental insert/remove at event times, zero per-batch setup)
//! against the per-batch retarget-and-rebuild it replaced. Both paths
//! produce identical candidate sets; the difference is pure maintenance
//! overhead, which is what the incremental index eliminates from the
//! dispatch hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrvd_bench::BatchFixture;
use mrvd_core::{valid_candidates_with, CandidateScratch};
use mrvd_sim::{BatchContext, DriverId};
use mrvd_spatial::{ConstantSpeedModel, RegionIndex};

fn ctx<'a>(
    f: &'a BatchFixture,
    travel: &'a ConstantSpeedModel,
    avail_index: Option<&'a RegionIndex<DriverId>>,
) -> BatchContext<'a> {
    BatchContext {
        now_ms: f.now_ms,
        riders: &f.riders,
        drivers: &f.drivers,
        busy: &f.busy,
        travel,
        grid: &f.grid,
        avail_index,
        region_counts: None,
        views: None,
    }
}

fn bench_candidates(c: &mut Criterion) {
    let travel = ConstantSpeedModel::default();
    let mut g = c.benchmark_group("candidate_generation");
    g.sample_size(20);
    // Few riders over a large fleet is the regime where the per-batch
    // rebuild dominates useful work (e.g. fine-grained Δ: most executed
    // batches carry a handful of state changes).
    for &(riders, avail) in &[(1usize, 4000usize), (5, 500), (20, 2000), (50, 8000)] {
        let f = BatchFixture::rush_hour(riders, avail, 0, 7);
        let mut live: RegionIndex<DriverId> = RegionIndex::new(f.grid.clone());
        for d in &f.drivers {
            live.insert(d.id, d.pos);
        }
        let size = format!("{riders}r/{avail}d");
        g.bench_with_input(BenchmarkId::new("rebuild", &size), &f, |b, f| {
            let mut scratch = CandidateScratch::new();
            b.iter(|| valid_candidates_with(&ctx(f, &travel, None), 32, &mut scratch))
        });
        g.bench_with_input(BenchmarkId::new("live-index", &size), &f, |b, f| {
            let mut scratch = CandidateScratch::new();
            b.iter(|| valid_candidates_with(&ctx(f, &travel, Some(&live)), 32, &mut scratch))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
