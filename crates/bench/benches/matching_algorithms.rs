//! Bipartite matching substrate benchmarks: greedy vs Kuhn–Munkres vs
//! Hopcroft–Karp over growing instance sizes (POLAR's blueprint solves a
//! 256-region instance offline; the per-batch matchers are greedy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrvd_matching::{greedy_max_weight, hopcroft_karp, max_weight_matching};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn make_edges(n: usize, density: f64, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for l in 0..n {
        for r in 0..n {
            if rng.gen_bool(density) {
                edges.push((l, r, rng.gen_range(0.1..100.0)));
            }
        }
    }
    edges
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.sample_size(20);
    for &n in &[50usize, 128, 256] {
        let edges = make_edges(n, 0.2, 11);
        g.bench_with_input(BenchmarkId::new("greedy", n), &edges, |b, e| {
            b.iter(|| greedy_max_weight(n, n, e))
        });
        g.bench_with_input(BenchmarkId::new("kuhn_munkres", n), &edges, |b, e| {
            b.iter(|| max_weight_matching(n, n, e))
        });
        let adj: Vec<Vec<usize>> = {
            let mut adj = vec![Vec::new(); n];
            for &(l, r, _) in &edges {
                adj[l].push(r);
            }
            adj
        };
        g.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &adj, |b, a| {
            b.iter(|| hopcroft_karp(n, n, a))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
