//! Rate-estimation cost on the dispatch hot path: the incremental lazy
//! `RateTracker` (live per-region counts from the engine, idle times
//! solved only for touched regions) against the verbatim eager
//! `estimate_rates` reference (full rider/driver/busy scans + a
//! 256-region queueing solve per batch). Both paths produce bit-identical
//! assignments — the difference is pure estimation overhead, which is
//! what dominates IRG/LS/SHORT batches once candidate generation runs
//! off the live index (the fine-Δ regime of `BENCH_delta.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrvd_bench::BatchFixture;
use mrvd_core::{DispatchConfig, QueueingPolicy};
use mrvd_sim::{BatchContext, DispatchPolicy};
use mrvd_spatial::ConstantSpeedModel;

fn bench_rate_paths(c: &mut Criterion) {
    let travel = ConstantSpeedModel::default();
    let mut g = c.benchmark_group("irg_batch_by_rate_path");
    g.sample_size(20);
    // (riders, available, busy): the sparse-change fine-Δ regime first,
    // then denser batches where candidate work grows alongside.
    for &(riders, avail, busy) in &[(1usize, 4000usize, 200usize), (5, 500, 50), (20, 2000, 400)] {
        let mut fixture = BatchFixture::rush_hour(riders, avail, busy, 7);
        // Anchored riders guarantee every batch assigns (the same
        // regime the `delta` subcommand's microbench reports).
        fixture.anchor_riders_to_drivers();
        let live_index = fixture.live_index();
        let counts = fixture.region_counts();
        let views = fixture.batch_views();
        let ctx = BatchContext {
            now_ms: fixture.now_ms,
            riders: views.waiting(),
            drivers: views.available(),
            busy: views.busy(),
            travel: &travel,
            grid: &fixture.grid,
            avail_index: Some(&live_index),
            region_counts: Some(&counts),
            views: Some(&views),
        };
        let size = format!("{riders}r/{avail}d/{busy}b");
        g.bench_with_input(BenchmarkId::new("reference", &size), &(), |b, ()| {
            let mut policy = QueueingPolicy::irg(
                DispatchConfig {
                    reference_rates: true,
                    ..DispatchConfig::default()
                },
                fixture.oracle(),
            );
            b.iter(|| policy.assign(&ctx))
        });
        g.bench_with_input(BenchmarkId::new("tracker", &size), &(), |b, ()| {
            let mut policy = QueueingPolicy::irg(DispatchConfig::default(), fixture.oracle());
            b.iter(|| policy.assign(&ctx))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rate_paths);
criterion_main!(benches);
