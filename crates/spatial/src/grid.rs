//! Rectangular region partition ("regions/grids" in the paper's §2).
//!
//! The paper divides the NYC extent (−74.03°..−73.77° lon,
//! 40.58°..40.92° lat) evenly into 16×16 grids; each grid cell is one
//! region `a_k` with its own double-sided queue.

use crate::geo::Point;

/// Identifier of a region (a cell of the [`Grid`]).
///
/// Regions are numbered row-major: `id = row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The raw index as a `usize`, for indexing per-region tables.
    #[inline]
    pub fn idx(self) -> usize {
        // lint:allow(D005): u32 → usize widens on every supported target
        self.0 as usize
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The paper's experimental extent of New York City:
/// longitude −74.03°..−73.77°, latitude 40.58°..40.92°.
pub const NYC_EXTENT: (Point, Point) = (Point::new(-74.03, 40.58), Point::new(-73.77, 40.92));

/// An even rectangular partition of a lon/lat bounding box into
/// `cols × rows` regions.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    min: Point,
    max: Point,
    cols: u32,
    rows: u32,
}

impl Grid {
    /// Creates a grid over `[min, max]` with the given cell counts.
    ///
    /// # Panics
    /// Panics if the box is degenerate, a cell count is zero, or the
    /// region count `rows × cols` does not fit a `u32` (region ids are
    /// `u32`, so `row * cols + col` must never overflow).
    pub fn new(min: Point, max: Point, cols: u32, rows: u32) -> Self {
        assert!(
            max.lon > min.lon && max.lat > min.lat,
            "Grid: degenerate box"
        );
        assert!(cols > 0 && rows > 0, "Grid: cols and rows must be positive");
        assert!(
            (cols as u64) * (rows as u64) <= u32::MAX as u64,
            "Grid: region count {cols}×{rows} overflows u32 region ids"
        );
        Self {
            min,
            max,
            cols,
            rows,
        }
    }

    /// The paper's default grid: 16×16 over the NYC extent.
    pub fn nyc_16x16() -> Self {
        Self::new(NYC_EXTENT.0, NYC_EXTENT.1, 16, 16)
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of regions.
    pub fn num_regions(&self) -> usize {
        // The constructor guarantees cols × rows ≤ u32::MAX, but widen
        // before multiplying so the arithmetic itself cannot overflow.
        // lint:allow(D005): u32 → usize widens on every supported target
        self.cols as usize * self.rows as usize
    }

    /// Bounding box minimum corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Bounding box maximum corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Maps a point to its region, clamping points outside the box into the
    /// nearest edge cell (trips slightly out of extent still belong to a
    /// border region, as in the paper's preprocessing).
    pub fn region_of(&self, p: Point) -> RegionId {
        let fx = (p.lon - self.min.lon) / (self.max.lon - self.min.lon);
        let fy = (p.lat - self.min.lat) / (self.max.lat - self.min.lat);
        let col = ((fx * self.cols as f64) as i64).clamp(0, self.cols as i64 - 1);
        let row = ((fy * self.rows as f64) as i64).clamp(0, self.rows as i64 - 1);
        let col = u32::try_from(col).expect("clamped into grid bounds");
        let row = u32::try_from(row).expect("clamped into grid bounds");
        RegionId(row * self.cols + col)
    }

    /// `(col, row)` coordinates of a region.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn coords(&self, id: RegionId) -> (u32, u32) {
        assert!(id.idx() < self.num_regions(), "Grid: region out of range");
        (id.0 % self.cols, id.0 / self.cols)
    }

    /// Region id at `(col, row)`; `None` when outside the grid.
    pub fn at(&self, col: i64, row: i64) -> Option<RegionId> {
        if col < 0 || row < 0 || col >= self.cols as i64 || row >= self.rows as i64 {
            None
        } else {
            let col = u32::try_from(col).expect("bounds-checked above");
            let row = u32::try_from(row).expect("bounds-checked above");
            Some(RegionId(row * self.cols + col))
        }
    }

    /// Geographic center of a region.
    pub fn center(&self, id: RegionId) -> Point {
        let (c, r) = self.coords(id);
        let w = (self.max.lon - self.min.lon) / self.cols as f64;
        let h = (self.max.lat - self.min.lat) / self.rows as f64;
        Point::new(
            self.min.lon + (c as f64 + 0.5) * w,
            self.min.lat + (r as f64 + 0.5) * h,
        )
    }

    /// Geographic bounding box `[min, max)` of a region.
    pub fn cell_box(&self, id: RegionId) -> (Point, Point) {
        let (c, r) = self.coords(id);
        let w = (self.max.lon - self.min.lon) / self.cols as f64;
        let h = (self.max.lat - self.min.lat) / self.rows as f64;
        (
            Point::new(self.min.lon + c as f64 * w, self.min.lat + r as f64 * h),
            Point::new(
                self.min.lon + (c as f64 + 1.0) * w,
                self.min.lat + (r as f64 + 1.0) * h,
            ),
        )
    }

    /// All region ids, in row-major order.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        let n = u32::try_from(self.num_regions()).expect("constructor bounds regions to u32");
        (0..n).map(RegionId)
    }

    /// Regions at exactly Chebyshev distance `ring` from `id`
    /// (`ring == 0` yields `id` itself). Used to expand candidate searches
    /// outward until the pickup deadline bounds the radius.
    pub fn ring(&self, id: RegionId, ring: u32) -> Vec<RegionId> {
        let (c, r) = self.coords(id);
        let (c, r) = (c as i64, r as i64);
        let d = ring as i64;
        if d == 0 {
            return vec![id];
        }
        let mut out = Vec::new();
        for col in (c - d)..=(c + d) {
            for &row in &[r - d, r + d] {
                if let Some(x) = self.at(col, row) {
                    out.push(x);
                }
            }
        }
        for row in (r - d + 1)..=(r + d - 1) {
            for &col in &[c - d, c + d] {
                if let Some(x) = self.at(col, row) {
                    out.push(x);
                }
            }
        }
        out
    }

    /// The 8-neighbourhood (plus fewer at borders) of a region.
    pub fn neighbors(&self, id: RegionId) -> Vec<RegionId> {
        self.ring(id, 1)
    }

    /// Maximum possible Chebyshev ring distance between any two cells.
    pub fn max_ring(&self) -> u32 {
        self.cols.max(self.rows) - 1
    }

    /// Approximate width and height of one cell in meters, measured at the
    /// grid center (used to convert a travel-time radius into a ring count).
    pub fn cell_size_m(&self) -> (f64, f64) {
        let cy = 0.5 * (self.min.lat + self.max.lat);
        let w = Point::new(self.min.lon, cy).distance_m(&Point::new(self.max.lon, cy))
            / self.cols as f64;
        let h = Point::new(self.min.lon, self.min.lat)
            .distance_m(&Point::new(self.min.lon, self.max.lat))
            / self.rows as f64;
        (w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nyc() -> Grid {
        Grid::nyc_16x16()
    }

    #[test]
    fn paper_grid_has_256_regions() {
        assert_eq!(nyc().num_regions(), 256);
    }

    #[test]
    fn region_center_round_trips() {
        let g = nyc();
        for id in g.regions() {
            assert_eq!(g.region_of(g.center(id)), id);
        }
    }

    #[test]
    fn out_of_extent_points_clamp_to_border() {
        let g = nyc();
        assert_eq!(g.region_of(Point::new(-75.0, 40.0)), RegionId(0));
        let far = g.region_of(Point::new(-70.0, 41.5));
        assert_eq!(far, RegionId(255));
    }

    #[test]
    fn coords_and_at_are_inverses() {
        let g = Grid::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 5, 7);
        for id in g.regions() {
            let (c, r) = g.coords(id);
            assert_eq!(g.at(c as i64, r as i64), Some(id));
        }
        assert_eq!(g.at(-1, 0), None);
        assert_eq!(g.at(5, 0), None);
        assert_eq!(g.at(0, 7), None);
    }

    #[test]
    fn ring_sizes_match_chebyshev_geometry() {
        let g = nyc();
        let center = g.at(8, 8).unwrap();
        assert_eq!(g.ring(center, 0), vec![center]);
        assert_eq!(g.ring(center, 1).len(), 8);
        assert_eq!(g.ring(center, 2).len(), 16);
        // A corner cell sees a truncated ring.
        let corner = g.at(0, 0).unwrap();
        assert_eq!(g.ring(corner, 1).len(), 3);
    }

    #[test]
    fn rings_partition_the_grid() {
        let g = Grid::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 9, 9);
        let center = g.at(4, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for ring in 0..=g.max_ring() {
            for id in g.ring(center, ring) {
                assert!(seen.insert(id), "{id} appeared in two rings");
            }
        }
        assert_eq!(seen.len(), g.num_regions());
    }

    #[test]
    fn nyc_cell_size_is_about_1_4_by_2_4_km() {
        let (w, h) = nyc().cell_size_m();
        assert!((1_200.0..1_600.0).contains(&w), "w {w}");
        assert!((2_200.0..2_500.0).contains(&h), "h {h}");
    }

    #[test]
    #[should_panic(expected = "overflows u32 region ids")]
    fn constructor_rejects_region_count_overflow() {
        Grid::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 1 << 17, 1 << 16);
    }

    #[test]
    fn largest_admissible_grid_constructs() {
        // 65535 × 65535 = 4 294 836 225 ≤ u32::MAX: the constructor bound
        // is exactly the id-arithmetic bound, not something tighter.
        let g = Grid::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 65_535, 65_535);
        assert_eq!(g.num_regions(), 65_535usize * 65_535);
        let last = RegionId((g.num_regions() - 1) as u32);
        assert_eq!(g.coords(last), (65_534, 65_534));
    }

    #[test]
    fn center_round_trips_on_a_200x200_grid() {
        // City-scale audit: every region's center maps back to it and
        // coords/at stay inverses — 40 000 regions, u32 id arithmetic.
        let g = Grid::new(NYC_EXTENT.0, NYC_EXTENT.1, 200, 200);
        for id in g.regions() {
            assert_eq!(g.region_of(g.center(id)), id);
            let (c, r) = g.coords(id);
            assert_eq!(g.at(c as i64, r as i64), Some(id));
        }
    }

    #[test]
    fn region_of_is_total_for_degenerate_points_on_a_city_scale_grid() {
        // NaN casts to 0 and clamps to the first cell; infinities and
        // extreme magnitudes saturate and clamp to a border cell. None
        // may panic or produce an out-of-range id.
        let g = Grid::new(NYC_EXTENT.0, NYC_EXTENT.1, 200, 200);
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
        ];
        for &lon in &specials {
            for &lat in &specials {
                let id = g.region_of(Point::new(lon, lat));
                assert!(id.idx() < g.num_regions(), "({lon}, {lat}) → {id}");
            }
        }
        // NaN-adjacent boundary nudges: one ulp either side of interior
        // cell boundaries must land in one of the two adjacent cells.
        let (lo, _) = g.cell_box(g.at(100, 100).unwrap());
        for (lon, lat) in [
            (f64::from_bits(lo.lon.to_bits() - 1), lo.lat),
            (f64::from_bits(lo.lon.to_bits() + 1), lo.lat),
            (lo.lon, f64::from_bits(lo.lat.to_bits() - 1)),
            (lo.lon, f64::from_bits(lo.lat.to_bits() + 1)),
        ] {
            let id = g.region_of(Point::new(lon, lat));
            let (c, r) = g.coords(id);
            assert!((99..=100).contains(&c), "col {c}");
            assert!((99..=100).contains(&r), "row {r}");
        }
    }

    proptest! {
        #[test]
        fn region_of_is_total(lon in -80.0f64..-70.0, lat in 38.0f64..43.0) {
            let g = nyc();
            let id = g.region_of(Point::new(lon, lat));
            prop_assert!(id.idx() < g.num_regions());
        }

        /// City-scale grids: centers round-trip through `region_of`, and
        /// `coords`/`at` stay inverses, for arbitrary grid shapes beyond
        /// the paper's 16×16 (up to 256×256 here; the dedicated 200×200
        /// test covers the full sweep deterministically).
        #[test]
        fn city_scale_center_round_trips(
            cols in 64u32..=256,
            rows in 64u32..=256,
            raw in 0u32..1_000_000,
        ) {
            let g = Grid::new(NYC_EXTENT.0, NYC_EXTENT.1, cols, rows);
            let id = RegionId(raw % g.num_regions() as u32);
            prop_assert_eq!(g.region_of(g.center(id)), id);
            let (c, r) = g.coords(id);
            prop_assert_eq!(g.at(c as i64, r as i64), Some(id));
        }

        /// Out-of-box points clamp to a border cell on city-scale grids.
        #[test]
        fn city_scale_out_of_box_clamps_to_border(
            cols in 64u32..=256,
            rows in 64u32..=256,
            lon in -180.0f64..180.0,
            lat in -89.0f64..89.0,
        ) {
            let g = Grid::new(NYC_EXTENT.0, NYC_EXTENT.1, cols, rows);
            let id = g.region_of(Point::new(lon, lat));
            prop_assert!(id.idx() < g.num_regions());
            let (c, r) = g.coords(id);
            if lon < g.min().lon {
                prop_assert_eq!(c, 0);
            }
            if lon > g.max().lon {
                prop_assert_eq!(c, cols - 1);
            }
            if lat < g.min().lat {
                prop_assert_eq!(r, 0);
            }
            if lat > g.max().lat {
                prop_assert_eq!(r, rows - 1);
            }
        }

        #[test]
        fn points_in_cell_box_map_back(id in 0u32..256) {
            let g = nyc();
            let rid = RegionId(id);
            let (lo, hi) = g.cell_box(rid);
            // Strictly inside the box.
            let p = Point::new(0.5 * (lo.lon + hi.lon), 0.5 * (lo.lat + hi.lat));
            prop_assert_eq!(g.region_of(p), rid);
        }
    }
}
