//! Per-region bucket index for candidate queries, with incremental
//! maintenance.
//!
//! The dispatcher repeatedly asks "which available drivers could reach this
//! rider before the deadline?". A full scan per rider is O(riders × drivers)
//! per batch; bucketing items by region and expanding over grid rings until
//! the deadline bounds the radius keeps the candidate set small, which is
//! the standard practical optimization noted in DESIGN.md.
//!
//! Between consecutive batch timestamps almost nothing moves: drivers only
//! change position at dropoffs, and only change availability at
//! assignments, dropoffs and shift changes. The index therefore supports
//! *incremental* maintenance — [`RegionIndex::insert`],
//! [`RegionIndex::remove`]/[`RegionIndex::remove_at`] and
//! [`RegionIndex::move_item`] applied at true event times — alongside the
//! from-scratch [`RegionIndex::rebuild_reference`] path kept for
//! differential testing. A dirty-region set ([`RegionIndex::dirty_regions`])
//! records which buckets changed since the last
//! [`RegionIndex::clear_dirty`], and [`RegionIndex::ops_applied`] counts
//! every applied mutation, so callers can observe how sparse the
//! batch-to-batch state change really is.

use crate::geo::Point;
use crate::grid::{Grid, RegionId};

/// An index of items bucketed by their grid region.
///
/// `T` is typically a driver id. Items carry their exact position so that
/// callers can apply precise travel-time filters after the coarse ring
/// search.
///
/// # Example
///
/// ```
/// use mrvd_spatial::{Grid, Point, RegionIndex};
///
/// let mut ix = RegionIndex::new(Grid::nyc_16x16());
/// let midtown = Point::new(-73.98, 40.75);
/// let harlem = Point::new(-73.94, 40.81);
/// ix.insert(1u32, midtown);
/// ix.insert(2u32, harlem);
///
/// // Ring-bounded radius query: only the midtown driver is within 2 km.
/// let near: Vec<u32> = ix
///     .within_radius(midtown, 2_000.0, usize::MAX)
///     .into_iter()
///     .map(|(id, _)| id)
///     .collect();
/// assert_eq!(near, vec![1]);
///
/// // Incremental maintenance: the driver drops off in Harlem and the
/// // index follows without a rebuild.
/// assert!(ix.move_item(1u32, midtown, harlem));
/// assert_eq!(ix.within_radius(midtown, 2_000.0, usize::MAX).len(), 0);
/// assert_eq!(ix.within_radius(harlem, 2_000.0, usize::MAX).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RegionIndex<T> {
    grid: Grid,
    buckets: Vec<Vec<(T, Point)>>,
    len: usize,
    /// Regions whose bucket contents changed since the last
    /// [`RegionIndex::clear_dirty`], deduplicated via `dirty_flag`.
    dirty: Vec<RegionId>,
    dirty_flag: Vec<bool>,
    ops: u64,
}

impl<T: Copy> RegionIndex<T> {
    /// An empty index over `grid`.
    pub fn new(grid: Grid) -> Self {
        let buckets = vec![Vec::new(); grid.num_regions()];
        let dirty_flag = vec![false; grid.num_regions()];
        Self {
            grid,
            buckets,
            len: 0,
            dirty: Vec::new(),
            dirty_flag,
            ops: 0,
        }
    }

    fn mark_dirty(&mut self, r: RegionId) {
        if !self.dirty_flag[r.idx()] {
            self.dirty_flag[r.idx()] = true;
            self.dirty.push(r);
        }
    }

    /// Inserts `item` at position `p`.
    pub fn insert(&mut self, item: T, p: Point) {
        let r = self.grid.region_of(p);
        self.buckets[r.idx()].push((item, p));
        self.len += 1;
        self.ops += 1;
        self.mark_dirty(r);
    }

    /// Removes every copy of `item` from region `r`'s bucket; returns how
    /// many were removed. (Items are few per bucket, so a linear sweep is
    /// cheaper than a secondary map.)
    pub fn remove(&mut self, item: T, r: RegionId) -> usize
    where
        T: PartialEq,
    {
        let bucket = &mut self.buckets[r.idx()];
        let before = bucket.len();
        bucket.retain(|(x, _)| *x != item);
        let removed = before - bucket.len();
        self.len -= removed;
        if removed > 0 {
            self.ops += removed as u64;
            self.mark_dirty(r);
        }
        removed
    }

    /// Removes every copy of `item` from the bucket of the region
    /// containing `p` (the caller's record of where the item was
    /// inserted); returns how many were removed.
    pub fn remove_at(&mut self, item: T, p: Point) -> usize
    where
        T: PartialEq,
    {
        let r = self.grid.region_of(p);
        self.remove(item, r)
    }

    /// Moves `item` from its recorded position `from` to `to`: removes it
    /// from `from`'s region and re-inserts it at `to`. Returns whether the
    /// item was found at `from` (if not, nothing is inserted — the index
    /// never invents items).
    pub fn move_item(&mut self, item: T, from: Point, to: Point) -> bool
    where
        T: PartialEq,
    {
        if self.remove_at(item, from) == 0 {
            return false;
        }
        self.insert(item, to);
        true
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears all buckets, keeping capacity. Non-empty regions are marked
    /// dirty (their contents changed to nothing).
    pub fn clear(&mut self) {
        for i in 0..self.buckets.len() {
            if !self.buckets[i].is_empty() {
                self.buckets[i].clear();
                let id = u32::try_from(i).expect("bucket count bounded by u32 region ids");
                self.mark_dirty(RegionId(id));
            }
        }
        self.len = 0;
    }

    /// Re-points the index at `grid` and clears it, reusing the bucket
    /// allocations whenever the region count is unchanged. Callers that
    /// rebuild an index every batch over the same grid pay only the
    /// clear, not `num_regions` fresh `Vec`s. The dirty set is reset:
    /// after a retarget the caller is starting from scratch, so
    /// per-region change tracking has no baseline to diff against.
    pub fn retarget(&mut self, grid: &Grid) {
        // Drain the dirty set while its entries still index the old
        // grid's flag vector.
        self.clear_dirty();
        if self.grid != *grid {
            self.buckets.resize(grid.num_regions(), Vec::new());
            self.dirty_flag.resize(grid.num_regions(), false);
            self.grid = grid.clone();
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }

    /// Clears and refills the index from `items` — the from-scratch path
    /// the per-batch rebuild used before incremental maintenance existed,
    /// kept as the differential-testing reference: after any sequence of
    /// [`RegionIndex::insert`] / [`RegionIndex::remove`] /
    /// [`RegionIndex::move_item`] calls, the incrementally maintained
    /// index must hold exactly the items a `rebuild_reference` over the
    /// ground-truth set would produce (bucket *order* may differ; bucket
    /// *contents* may not).
    pub fn rebuild_reference<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (T, Point)>,
    {
        self.clear();
        for (item, p) in items {
            self.insert(item, p);
        }
    }

    /// Regions whose contents changed since the last
    /// [`RegionIndex::clear_dirty`], in first-dirtied order.
    pub fn dirty_regions(&self) -> &[RegionId] {
        &self.dirty
    }

    /// Resets the dirty-region set (typically after a consumer has
    /// refreshed whatever it derives from the dirtied buckets).
    pub fn clear_dirty(&mut self) {
        for r in self.dirty.drain(..) {
            self.dirty_flag[r.idx()] = false;
        }
    }

    /// Total mutations applied over the index's lifetime: one per insert,
    /// one per removed copy, two per successful move (its remove + its
    /// insert). Rebuilds count their constituent operations.
    pub fn ops_applied(&self) -> u64 {
        self.ops
    }

    /// Items in one region.
    pub fn in_region(&self, r: RegionId) -> &[(T, Point)] {
        &self.buckets[r.idx()]
    }

    /// The grid this index is built over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Visits items in expanding rings around `center` (ring 0 first).
    ///
    /// `visit` returns `true` to keep expanding after the current ring is
    /// exhausted, `false` to stop early — callers stop once they have
    /// enough candidates or the ring distance exceeds what the pickup
    /// deadline allows.
    pub fn visit_rings<F>(&self, center: RegionId, max_ring: u32, mut visit: F)
    where
        F: FnMut(u32, &[(T, Point)]) -> bool,
    {
        let limit = max_ring.min(self.grid.max_ring());
        for ring in 0..=limit {
            let mut keep_going = true;
            for r in self.grid.ring(center, ring) {
                keep_going &= visit(ring, &self.buckets[r.idx()]);
            }
            if !keep_going {
                return;
            }
        }
    }

    /// Collects up to `cap` items whose straight-line distance to `p` is at
    /// most `radius_m`, searching outward by rings. The result is not
    /// sorted; callers order by their own criterion (travel time, cost…).
    /// A binding cap keeps the `cap` nearest qualifying items, ties broken
    /// by item then position — never a prefix in bucket order, which would
    /// depend on the index's churn history.
    pub fn within_radius(&self, p: Point, radius_m: f64, cap: usize) -> Vec<(T, Point)>
    where
        T: Ord,
    {
        let mut out = Vec::new();
        self.within_radius_into(p, radius_m, cap, &mut out);
        out
    }

    /// Like [`RegionIndex::within_radius`], appending into a caller-held
    /// buffer so per-query allocations amortize away. `out` is cleared
    /// first.
    pub fn within_radius_into(&self, p: Point, radius_m: f64, cap: usize, out: &mut Vec<(T, Point)>)
    where
        T: Ord,
    {
        out.clear();
        if cap == 0 {
            return;
        }
        let center = self.grid.region_of(p);
        let (cw, ch) = self.grid.cell_size_m();
        let cell = cw.min(ch);
        // Ring k is at least (k−1) cells away from p, so once
        // (ring−1)·cell > radius no further item can qualify.
        // lint:allow(D005): f64 → u32 saturates by design and the grid bounds the ring walk
        let max_ring = (radius_m / cell).ceil() as u32 + 1;
        self.visit_rings(center, max_ring, |_, items| {
            for &(item, q) in items {
                if p.distance_m(&q) <= radius_m {
                    out.push((item, q));
                }
            }
            // A binding cap stops the expansion only at a ring boundary:
            // every bucket of the current ring still contributes, so the
            // collected set never depends on bucket or visit order.
            out.len() < cap
        });
        if out.len() > cap {
            // Deterministic cut: keep the `cap` nearest, ids (then
            // position bits) breaking distance ties.
            out.sort_unstable_by(|a, b| {
                p.distance_m(&a.1)
                    .total_cmp(&p.distance_m(&b.1))
                    .then_with(|| a.0.cmp(&b.0))
                    .then_with(|| {
                        (a.1.lon.to_bits(), a.1.lat.to_bits())
                            .cmp(&(b.1.lon.to_bits(), b.1.lat.to_bits()))
                    })
            });
            out.truncate(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid() -> Grid {
        Grid::nyc_16x16()
    }

    /// Order-normalized bucket contents: `(region, [(item, pos bits)])`.
    type Canonical<T> = Vec<(u32, Vec<(T, (u64, u64))>)>;

    /// Bucket contents per region, order-normalized — the canonical form
    /// the incremental-vs-rebuild equivalence compares.
    fn canonical<T: Copy + Ord>(ix: &RegionIndex<T>) -> Canonical<T> {
        (0..ix.grid().num_regions() as u32)
            .map(|r| {
                let mut items: Vec<(T, (u64, u64))> = ix
                    .in_region(RegionId(r))
                    .iter()
                    .map(|&(t, p)| (t, (p.lon.to_bits(), p.lat.to_bits())))
                    .collect();
                items.sort_unstable();
                (r, items)
            })
            .filter(|(_, items)| !items.is_empty())
            .collect()
    }

    #[test]
    fn insert_and_query_region() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        ix.insert(7u32, p);
        let r = ix.grid().region_of(p);
        assert_eq!(ix.in_region(r), &[(7, p)]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn remove_deletes_only_target() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        ix.insert(1u32, p);
        ix.insert(2u32, p);
        let r = ix.grid().region_of(p);
        assert_eq!(ix.remove(1, r), 1);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.in_region(r), &[(2, p)]);
        assert_eq!(ix.remove(99, r), 0);
    }

    #[test]
    fn remove_at_uses_the_position_region() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        let q = Point::new(-73.8, 40.85);
        ix.insert(1u32, p);
        ix.insert(1u32, q);
        assert_eq!(ix.remove_at(1, p), 1);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.in_region(ix.grid().region_of(q)), &[(1, q)]);
    }

    #[test]
    fn move_item_relocates_and_reports_missing() {
        let mut ix = RegionIndex::new(grid());
        let from = Point::new(-73.9, 40.75);
        let to = Point::new(-73.8, 40.85);
        ix.insert(5u32, from);
        assert!(ix.move_item(5, from, to));
        assert_eq!(ix.len(), 1);
        assert!(ix.in_region(ix.grid().region_of(from)).is_empty());
        assert_eq!(ix.in_region(ix.grid().region_of(to)), &[(5, to)]);
        // Unknown item: no-op, and nothing is invented at `to`.
        assert!(!ix.move_item(6, from, to));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn dirty_set_tracks_touched_regions_without_duplicates() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        let q = Point::new(-73.8, 40.85);
        assert!(ix.dirty_regions().is_empty());
        ix.insert(1u32, p);
        ix.insert(2u32, p); // same region → still one dirty entry
        ix.insert(3u32, q);
        let rp = ix.grid().region_of(p);
        let rq = ix.grid().region_of(q);
        assert_eq!(ix.dirty_regions(), &[rp, rq]);
        ix.clear_dirty();
        assert!(ix.dirty_regions().is_empty());
        // A failed remove dirties nothing; a successful one does.
        ix.remove(99, rp);
        assert!(ix.dirty_regions().is_empty());
        ix.remove(1, rp);
        assert_eq!(ix.dirty_regions(), &[rp]);
        // A move dirties both endpoints.
        ix.clear_dirty();
        ix.move_item(3, q, p);
        assert_eq!(ix.dirty_regions(), &[rq, rp]);
    }

    #[test]
    fn ops_count_every_applied_mutation() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        let q = Point::new(-73.8, 40.85);
        assert_eq!(ix.ops_applied(), 0);
        ix.insert(1u32, p); // 1
        ix.insert(2u32, p); // 2
        ix.remove(99, ix.grid().region_of(p)); // miss: still 2
        assert_eq!(ix.ops_applied(), 2);
        ix.remove_at(1, p); // 3
        ix.move_item(2, p, q); // remove + insert: 5
        assert_eq!(ix.ops_applied(), 5);
    }

    #[test]
    fn rebuild_reference_replaces_contents() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        let q = Point::new(-73.8, 40.85);
        ix.insert(1u32, p);
        ix.rebuild_reference([(2u32, q), (3u32, q)]);
        assert_eq!(ix.len(), 2);
        assert!(ix.in_region(ix.grid().region_of(p)).is_empty());
        assert_eq!(ix.in_region(ix.grid().region_of(q)), &[(2, q), (3, q)]);
    }

    #[test]
    fn within_radius_finds_all_and_only_nearby() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = grid();
        let mut ix = RegionIndex::new(g.clone());
        let mut pts = Vec::new();
        for i in 0..500u32 {
            let p = Point::new(rng.gen_range(-74.03..-73.77), rng.gen_range(40.58..40.92));
            ix.insert(i, p);
            pts.push(p);
        }
        let q = Point::new(-73.9, 40.75);
        let radius = 3_000.0;
        let got: std::collections::HashSet<u32> = ix
            .within_radius(q, radius, usize::MAX)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let expect: std::collections::HashSet<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance_m(p) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn retarget_clears_and_reuses_buckets() {
        let g = grid();
        let mut ix = RegionIndex::new(g.clone());
        let p = Point::new(-73.9, 40.75);
        ix.insert(1u32, p);
        assert_eq!(ix.len(), 1);
        // Same grid: contents cleared, index usable again.
        ix.retarget(&g);
        assert!(ix.is_empty());
        assert!(ix.dirty_regions().is_empty());
        ix.insert(2u32, p);
        assert_eq!(ix.in_region(ix.grid().region_of(p)), &[(2, p)]);
        // Different grid: bucket count follows the new region count.
        let g2 = Grid::new(Point::new(-74.03, 40.58), Point::new(-73.77, 40.92), 4, 4);
        ix.retarget(&g2);
        assert!(ix.is_empty());
        assert_eq!(ix.grid(), &g2);
        ix.insert(3u32, p);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn within_radius_into_reuses_buffer_and_matches_alloc_variant() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        for i in 0..20u32 {
            ix.insert(i, p);
        }
        let mut buf = vec![(99u32, p)]; // stale content must be cleared
        ix.within_radius_into(p, 100.0, usize::MAX, &mut buf);
        assert_eq!(buf.len(), 20);
        assert_eq!(ix.within_radius(p, 100.0, usize::MAX), buf);
    }

    #[test]
    fn cap_limits_results() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        for i in 0..50u32 {
            ix.insert(i, p);
        }
        assert_eq!(ix.within_radius(p, 100.0, 10).len(), 10);
        assert!(ix.within_radius(p, 100.0, 0).is_empty());
    }

    #[test]
    fn binding_cap_is_deterministic_across_bucket_orders() {
        // Regression: the old cap cut truncated in bucket order, so a
        // live index (whose bucket order reflects churn history) and a
        // rebuilt one could return *different candidate sets* under a
        // binding cap. The cut must depend only on (distance, id).
        let g = grid();
        let p = Point::new(-73.905, 40.75);
        // Five items in one region at strictly increasing distances.
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(-73.905 + i as f64 * 0.0004, 40.75))
            .collect();
        let r = g.region_of(p);
        assert!(
            pts.iter().all(|q| g.region_of(*q) == r),
            "fixture points must share a region"
        );
        // Live index: remove + re-insert item 0 leaves it at the tail.
        let mut live = RegionIndex::new(g.clone());
        for (i, &q) in pts.iter().enumerate() {
            live.insert(i as u32, q);
        }
        live.remove_at(0, pts[0]);
        live.insert(0, pts[0]);
        let mut rebuilt = RegionIndex::new(g.clone());
        rebuilt.rebuild_reference(pts.iter().enumerate().map(|(i, &q)| (i as u32, q)));
        // The bucket orders genuinely differ…
        assert_ne!(live.in_region(r), rebuilt.in_region(r));
        // …yet a binding cap returns the identical nearest set.
        let ids = |v: Vec<(u32, Point)>| {
            let mut ids: Vec<u32> = v.into_iter().map(|(i, _)| i).collect();
            ids.sort_unstable();
            ids
        };
        let a = ids(live.within_radius(p, 10_000.0, 3));
        let b = ids(rebuilt.within_radius(p, 10_000.0, 3));
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 2], "the cut keeps the nearest cap items");
        // A non-binding cap still returns everything in range.
        assert_eq!(ids(live.within_radius(p, 10_000.0, 5)).len(), 5);
    }

    #[test]
    fn binding_cap_breaks_distance_ties_by_id() {
        // All items equidistant (same point): the kept set must be the
        // lowest ids regardless of insertion order.
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        for i in (0..20u32).rev() {
            ix.insert(i, p);
        }
        let mut got: Vec<u32> = ix
            .within_radius(p, 100.0, 4)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn visit_rings_stops_on_false() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        ix.insert(0u32, p);
        let mut rings_seen = Vec::new();
        ix.visit_rings(ix.grid().region_of(p), 5, |ring, _| {
            rings_seen.push(ring);
            ring < 2
        });
        assert!(rings_seen.iter().all(|&r| r <= 2));
        assert!(rings_seen.contains(&2));
        assert!(!rings_seen.contains(&3));
    }

    proptest! {
        #[test]
        fn radius_query_matches_linear_scan(seed in 0u64..30, radius in 500.0f64..8_000.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = grid();
            let mut ix = RegionIndex::new(g);
            let mut pts = Vec::new();
            for i in 0..120u32 {
                let p = Point::new(
                    rng.gen_range(-74.03..-73.77),
                    rng.gen_range(40.58..40.92),
                );
                ix.insert(i, p);
                pts.push(p);
            }
            let q = Point::new(rng.gen_range(-74.03..-73.77), rng.gen_range(40.58..40.92));
            let got: std::collections::HashSet<u32> =
                ix.within_radius(q, radius, usize::MAX).into_iter().map(|(i, _)| i).collect();
            let expect: std::collections::HashSet<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.distance_m(p) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, expect);
        }

        /// The tentpole equivalence: an incrementally maintained index
        /// must stay equal to a from-scratch rebuild of its ground truth
        /// under random insert/remove/move sequences — same per-region
        /// contents, same length, and a dirty set that covers every
        /// region whose bucket changed.
        #[test]
        fn incremental_ops_match_rebuild_reference(seed in 0u64..40, n_ops in 10usize..120) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1E7);
            let g = grid();
            let mut inc: RegionIndex<u32> = RegionIndex::new(g.clone());
            let mut truth: Vec<(u32, Point)> = Vec::new();
            let pt = |rng: &mut StdRng| Point::new(
                rng.gen_range(-74.03..-73.77),
                rng.gen_range(40.58..40.92),
            );
            let mut next_id = 0u32;
            for _ in 0..n_ops {
                inc.clear_dirty();
                let before = canonical(&inc);
                match rng.gen_range(0u32..4) {
                    // Insert a fresh item.
                    0 | 1 => {
                        let p = pt(&mut rng);
                        truth.push((next_id, p));
                        inc.insert(next_id, p);
                        next_id += 1;
                    }
                    // Remove a (possibly absent) item.
                    2 => {
                        if truth.is_empty() {
                            // Removing from an empty ground truth is a
                            // no-op by construction.
                            inc.remove_at(9999, pt(&mut rng));
                        } else {
                            let k = rng.gen_range(0..truth.len());
                            let (id, p) = truth.swap_remove(k);
                            prop_assert_eq!(inc.remove_at(id, p), 1);
                        }
                    }
                    // Move an item (a driver dropping off elsewhere).
                    _ => {
                        if !truth.is_empty() {
                            let k = rng.gen_range(0..truth.len());
                            let to = pt(&mut rng);
                            let (id, from) = truth[k];
                            prop_assert!(inc.move_item(id, from, to));
                            truth[k] = (id, to);
                        }
                    }
                }
                // The incremental index equals a fresh rebuild of the
                // ground truth…
                let mut rebuilt: RegionIndex<u32> = RegionIndex::new(g.clone());
                rebuilt.rebuild_reference(truth.iter().copied());
                prop_assert_eq!(canonical(&inc), canonical(&rebuilt));
                prop_assert_eq!(inc.len(), truth.len());
                // …and every region whose canonical contents changed this
                // step is in the dirty set.
                let after = canonical(&inc);
                let changed: Vec<u32> = {
                    let get = |c: &Canonical<u32>, r: u32|
                        c.iter().find(|(k, _)| *k == r).map(|(_, v)| v.clone());
                    let mut regions: Vec<u32> =
                        before.iter().chain(after.iter()).map(|(r, _)| *r).collect();
                    regions.sort_unstable();
                    regions.dedup();
                    regions
                        .into_iter()
                        .filter(|&r| get(&before, r) != get(&after, r))
                        .collect()
                };
                for r in changed {
                    prop_assert!(
                        inc.dirty_regions().contains(&RegionId(r)),
                        "region {} changed but was not dirtied", r
                    );
                }
            }
        }
    }
}
