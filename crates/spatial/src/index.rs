//! Per-region bucket index for candidate queries.
//!
//! The dispatcher repeatedly asks "which available drivers could reach this
//! rider before the deadline?". A full scan per rider is O(riders × drivers)
//! per batch; bucketing items by region and expanding over grid rings until
//! the deadline bounds the radius keeps the candidate set small, which is
//! the standard practical optimization noted in DESIGN.md.

use crate::geo::Point;
use crate::grid::{Grid, RegionId};

/// An index of items bucketed by their grid region.
///
/// `T` is typically a driver id. Items carry their exact position so that
/// callers can apply precise travel-time filters after the coarse ring
/// search.
#[derive(Debug, Clone)]
pub struct RegionIndex<T> {
    grid: Grid,
    buckets: Vec<Vec<(T, Point)>>,
    len: usize,
}

impl<T: Copy> RegionIndex<T> {
    /// An empty index over `grid`.
    pub fn new(grid: Grid) -> Self {
        let buckets = vec![Vec::new(); grid.num_regions()];
        Self {
            grid,
            buckets,
            len: 0,
        }
    }

    /// Inserts `item` at position `p`.
    pub fn insert(&mut self, item: T, p: Point) {
        let r = self.grid.region_of(p);
        self.buckets[r.idx()].push((item, p));
        self.len += 1;
    }

    /// Removes every copy of `item` from region `r`'s bucket; returns how
    /// many were removed. (Items are few per bucket, so a linear sweep is
    /// cheaper than a secondary map.)
    pub fn remove(&mut self, item: T, r: RegionId) -> usize
    where
        T: PartialEq,
    {
        let bucket = &mut self.buckets[r.idx()];
        let before = bucket.len();
        bucket.retain(|(x, _)| *x != item);
        let removed = before - bucket.len();
        self.len -= removed;
        removed
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears all buckets, keeping capacity.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }

    /// Re-points the index at `grid` and clears it, reusing the bucket
    /// allocations whenever the region count is unchanged. Callers that
    /// rebuild an index every batch over the same grid pay only the
    /// clear, not `num_regions` fresh `Vec`s.
    pub fn retarget(&mut self, grid: &Grid) {
        if self.grid != *grid {
            self.buckets.resize(grid.num_regions(), Vec::new());
            self.grid = grid.clone();
        }
        self.clear();
    }

    /// Items in one region.
    pub fn in_region(&self, r: RegionId) -> &[(T, Point)] {
        &self.buckets[r.idx()]
    }

    /// The grid this index is built over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Visits items in expanding rings around `center` (ring 0 first).
    ///
    /// `visit` returns `true` to keep expanding after the current ring is
    /// exhausted, `false` to stop early — callers stop once they have
    /// enough candidates or the ring distance exceeds what the pickup
    /// deadline allows.
    pub fn visit_rings<F>(&self, center: RegionId, max_ring: u32, mut visit: F)
    where
        F: FnMut(u32, &[(T, Point)]) -> bool,
    {
        let limit = max_ring.min(self.grid.max_ring());
        for ring in 0..=limit {
            let mut keep_going = true;
            for r in self.grid.ring(center, ring) {
                keep_going &= visit(ring, &self.buckets[r.idx()]);
            }
            if !keep_going {
                return;
            }
        }
    }

    /// Collects up to `cap` items whose straight-line distance to `p` is at
    /// most `radius_m`, searching outward by rings. The result is not
    /// sorted; callers order by their own criterion (travel time, cost…).
    pub fn within_radius(&self, p: Point, radius_m: f64, cap: usize) -> Vec<(T, Point)> {
        let mut out = Vec::new();
        self.within_radius_into(p, radius_m, cap, &mut out);
        out
    }

    /// Like [`RegionIndex::within_radius`], appending into a caller-held
    /// buffer so per-query allocations amortize away. `out` is cleared
    /// first.
    pub fn within_radius_into(
        &self,
        p: Point,
        radius_m: f64,
        cap: usize,
        out: &mut Vec<(T, Point)>,
    ) {
        out.clear();
        if cap == 0 {
            return;
        }
        let center = self.grid.region_of(p);
        let (cw, ch) = self.grid.cell_size_m();
        let cell = cw.min(ch);
        // Ring k is at least (k−1) cells away from p, so once
        // (ring−1)·cell > radius no further item can qualify.
        let max_ring = (radius_m / cell).ceil() as u32 + 1;
        self.visit_rings(center, max_ring, |_, items| {
            for &(item, q) in items {
                if p.distance_m(&q) <= radius_m {
                    out.push((item, q));
                    if out.len() >= cap {
                        return false;
                    }
                }
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid() -> Grid {
        Grid::nyc_16x16()
    }

    #[test]
    fn insert_and_query_region() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        ix.insert(7u32, p);
        let r = ix.grid().region_of(p);
        assert_eq!(ix.in_region(r), &[(7, p)]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn remove_deletes_only_target() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        ix.insert(1u32, p);
        ix.insert(2u32, p);
        let r = ix.grid().region_of(p);
        assert_eq!(ix.remove(1, r), 1);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.in_region(r), &[(2, p)]);
        assert_eq!(ix.remove(99, r), 0);
    }

    #[test]
    fn within_radius_finds_all_and_only_nearby() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = grid();
        let mut ix = RegionIndex::new(g.clone());
        let mut pts = Vec::new();
        for i in 0..500u32 {
            let p = Point::new(rng.gen_range(-74.03..-73.77), rng.gen_range(40.58..40.92));
            ix.insert(i, p);
            pts.push(p);
        }
        let q = Point::new(-73.9, 40.75);
        let radius = 3_000.0;
        let got: std::collections::HashSet<u32> = ix
            .within_radius(q, radius, usize::MAX)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let expect: std::collections::HashSet<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance_m(p) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn retarget_clears_and_reuses_buckets() {
        let g = grid();
        let mut ix = RegionIndex::new(g.clone());
        let p = Point::new(-73.9, 40.75);
        ix.insert(1u32, p);
        assert_eq!(ix.len(), 1);
        // Same grid: contents cleared, index usable again.
        ix.retarget(&g);
        assert!(ix.is_empty());
        ix.insert(2u32, p);
        assert_eq!(ix.in_region(ix.grid().region_of(p)), &[(2, p)]);
        // Different grid: bucket count follows the new region count.
        let g2 = Grid::new(Point::new(-74.03, 40.58), Point::new(-73.77, 40.92), 4, 4);
        ix.retarget(&g2);
        assert!(ix.is_empty());
        assert_eq!(ix.grid(), &g2);
        ix.insert(3u32, p);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn within_radius_into_reuses_buffer_and_matches_alloc_variant() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        for i in 0..20u32 {
            ix.insert(i, p);
        }
        let mut buf = vec![(99u32, p)]; // stale content must be cleared
        ix.within_radius_into(p, 100.0, usize::MAX, &mut buf);
        assert_eq!(buf.len(), 20);
        assert_eq!(ix.within_radius(p, 100.0, usize::MAX), buf);
    }

    #[test]
    fn cap_limits_results() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        for i in 0..50u32 {
            ix.insert(i, p);
        }
        assert_eq!(ix.within_radius(p, 100.0, 10).len(), 10);
        assert!(ix.within_radius(p, 100.0, 0).is_empty());
    }

    #[test]
    fn visit_rings_stops_on_false() {
        let mut ix = RegionIndex::new(grid());
        let p = Point::new(-73.9, 40.75);
        ix.insert(0u32, p);
        let mut rings_seen = Vec::new();
        ix.visit_rings(ix.grid().region_of(p), 5, |ring, _| {
            rings_seen.push(ring);
            ring < 2
        });
        assert!(rings_seen.iter().all(|&r| r <= 2));
        assert!(rings_seen.contains(&2));
        assert!(!rings_seen.contains(&3));
    }

    proptest! {
        #[test]
        fn radius_query_matches_linear_scan(seed in 0u64..30, radius in 500.0f64..8_000.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = grid();
            let mut ix = RegionIndex::new(g);
            let mut pts = Vec::new();
            for i in 0..120u32 {
                let p = Point::new(
                    rng.gen_range(-74.03..-73.77),
                    rng.gen_range(40.58..40.92),
                );
                ix.insert(i, p);
                pts.push(p);
            }
            let q = Point::new(rng.gen_range(-74.03..-73.77), rng.gen_range(40.58..40.92));
            let got: std::collections::HashSet<u32> =
                ix.within_radius(q, radius, usize::MAX).into_iter().map(|(i, _)| i).collect();
            let expect: std::collections::HashSet<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.distance_m(p) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}
