//! Road networks `G = ⟨V, E⟩` with non-negative travel costs
//! (the paper's §2 formalism) and shortest-path queries.
//!
//! The paper's experiments use grid distances, but the problem is defined on
//! a road network, so the crate ships a real graph implementation: adjacency
//! lists, Dijkstra (single-source and early-exit point-to-point), and a
//! synthetic Manhattan-lattice generator for examples and tests.

use crate::geo::Point;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a road-network vertex.
pub type VertexId = u32;

/// A directed road network with non-negative edge costs.
///
/// Costs are in abstract units chosen by the builder — the MRVD stack uses
/// seconds of travel time, matching the paper's use of travel cost as travel
/// time throughout.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    positions: Vec<Point>,
    adj: Vec<Vec<(VertexId, f64)>>,
}

impl RoadNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self {
            positions: Vec::new(),
            adj: Vec::new(),
        }
    }

    /// Adds a vertex at `p` and returns its id.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        self.positions.push(p);
        self.adj.push(Vec::new());
        (self.positions.len() - 1) as VertexId
    }

    /// Adds a directed edge `u → v` with the given cost.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist or the cost is negative/NaN.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, cost: f64) {
        assert!((u as usize) < self.adj.len(), "add_edge: unknown source");
        assert!((v as usize) < self.adj.len(), "add_edge: unknown target");
        assert!(cost >= 0.0 && cost.is_finite(), "add_edge: bad cost {cost}");
        self.adj[u as usize].push((v, cost));
    }

    /// Adds edges in both directions with the same cost.
    pub fn add_edge_undirected(&mut self, u: VertexId, v: VertexId, cost: f64) {
        self.add_edge(u, v, cost);
        self.add_edge(v, u, cost);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Position of a vertex.
    ///
    /// # Panics
    /// Panics if the vertex does not exist.
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v as usize]
    }

    /// The vertex nearest to `p` by great-circle distance
    /// (linear scan; snapping is not on the hot path).
    ///
    /// Returns `None` for an empty network.
    pub fn nearest_vertex(&self, p: Point) -> Option<VertexId> {
        self.positions
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                // Explicit tie-break on equal distances: the highest
                // vertex id wins, which is exactly what `min_by` alone
                // did on equal keys (it keeps the last minimum), so the
                // snap stays bit-identical while no longer depending on
                // that implicit behavior.
                a.distance_m(&p)
                    .partial_cmp(&b.distance_m(&p))
                    .expect("distance is never NaN")
                    .then(j.cmp(i))
            })
            .map(|(i, _)| i as VertexId)
    }

    /// Single-source Dijkstra: cost from `src` to every vertex
    /// (`f64::INFINITY` when unreachable).
    ///
    /// # Panics
    /// Panics if `src` does not exist.
    pub fn dijkstra(&self, src: VertexId) -> Vec<f64> {
        assert!((src as usize) < self.adj.len(), "dijkstra: unknown source");
        let mut dist = vec![f64::INFINITY; self.adj.len()];
        dist[src as usize] = 0.0;
        let mut heap: BinaryHeap<Reverse<(OrdF64, VertexId)>> = BinaryHeap::new();
        heap.push(Reverse((OrdF64(0.0), src)));
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((OrdF64(nd), v)));
                }
            }
        }
        dist
    }

    /// Point-to-point shortest path cost with early exit;
    /// `f64::INFINITY` when unreachable.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn shortest_path_cost(&self, src: VertexId, dst: VertexId) -> f64 {
        assert!((src as usize) < self.adj.len(), "unknown source");
        assert!((dst as usize) < self.adj.len(), "unknown target");
        if src == dst {
            return 0.0;
        }
        let mut dist = vec![f64::INFINITY; self.adj.len()];
        dist[src as usize] = 0.0;
        let mut heap: BinaryHeap<Reverse<(OrdF64, VertexId)>> = BinaryHeap::new();
        heap.push(Reverse((OrdF64(0.0), src)));
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if u == dst {
                return d;
            }
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((OrdF64(nd), v)));
                }
            }
        }
        f64::INFINITY
    }

    /// Generates a `cols × rows` Manhattan-style lattice over the given box.
    ///
    /// Every vertex connects to its 4-neighbours; each undirected street
    /// segment gets cost `great-circle length / speed_mps`, perturbed by a
    /// factor drawn uniformly from `[1, 1 + jitter]` to model congestion
    /// (jitter 0 gives exact grid travel times).
    ///
    /// # Panics
    /// Panics if `cols`/`rows` < 2, `speed_mps <= 0`, or `jitter < 0`.
    pub fn manhattan_lattice<R: Rng + ?Sized>(
        rng: &mut R,
        min: Point,
        max: Point,
        cols: u32,
        rows: u32,
        speed_mps: f64,
        jitter: f64,
    ) -> Self {
        assert!(
            cols >= 2 && rows >= 2,
            "lattice needs at least 2x2 vertices"
        );
        assert!(speed_mps > 0.0, "speed must be positive");
        assert!(jitter >= 0.0, "jitter must be non-negative");
        let mut net = Self::new();
        for r in 0..rows {
            for c in 0..cols {
                let lon = min.lon + (max.lon - min.lon) * c as f64 / (cols - 1) as f64;
                let lat = min.lat + (max.lat - min.lat) * r as f64 / (rows - 1) as f64;
                net.add_vertex(Point::new(lon, lat));
            }
        }
        let vid = |c: u32, r: u32| (r * cols + c) as VertexId;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    let (u, v) = (vid(c, r), vid(c + 1, r));
                    let len = net.position(u).distance_m(&net.position(v));
                    let f = 1.0 + rng.gen::<f64>() * jitter;
                    net.add_edge_undirected(u, v, len / speed_mps * f);
                }
                if r + 1 < rows {
                    let (u, v) = (vid(c, r), vid(c, r + 1));
                    let len = net.position(u).distance_m(&net.position(v));
                    let f = 1.0 + rng.gen::<f64>() * jitter;
                    net.add_edge_undirected(u, v, len / speed_mps * f);
                }
            }
        }
        net
    }
}

impl Default for RoadNetwork {
    fn default() -> Self {
        Self::new()
    }
}

/// Total order on finite non-NaN floats for use in the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("costs are never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest};
    use rand::{rngs::StdRng, SeedableRng};

    fn diamond() -> RoadNetwork {
        // 0 →(1) 1 →(1) 3, 0 →(4) 2 →(0.5) 3
        let mut n = RoadNetwork::new();
        for i in 0..4 {
            n.add_vertex(Point::new(i as f64, 0.0));
        }
        n.add_edge(0, 1, 1.0);
        n.add_edge(1, 3, 1.0);
        n.add_edge(0, 2, 4.0);
        n.add_edge(2, 3, 0.5);
        n
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let n = diamond();
        let d = n.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 4.0, 2.0]);
        assert_eq!(n.shortest_path_cost(0, 3), 2.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut n = diamond();
        let lonely = n.add_vertex(Point::new(9.0, 9.0));
        assert!(n.shortest_path_cost(0, lonely).is_infinite());
        assert!(n.dijkstra(0)[lonely as usize].is_infinite());
        // But the reverse direction from the lonely vertex to itself is 0.
        assert_eq!(n.shortest_path_cost(lonely, lonely), 0.0);
    }

    #[test]
    fn lattice_is_connected_and_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = RoadNetwork::manhattan_lattice(
            &mut rng,
            Point::new(-74.03, 40.58),
            Point::new(-73.77, 40.92),
            8,
            8,
            8.0,
            0.3,
        );
        assert_eq!(n.num_vertices(), 64);
        // 2 * (cols-1)*rows + 2 * cols*(rows-1) directed edges.
        assert_eq!(n.num_edges(), 2 * (7 * 8) * 2);
        let d = n.dijkstra(0);
        assert!(d.iter().all(|x| x.is_finite()), "lattice must be connected");
        // Path cost to the far corner is at least straight-line time.
        let far = (n.num_vertices() - 1) as VertexId;
        let line = n.position(0).distance_m(&n.position(far)) / 8.0;
        assert!(d[far as usize] >= line * 0.99);
    }

    #[test]
    fn nearest_vertex_snaps() {
        let n = diamond();
        assert_eq!(n.nearest_vertex(Point::new(0.1, 0.0)), Some(0));
        assert_eq!(n.nearest_vertex(Point::new(2.9, 0.1)), Some(3));
        assert_eq!(
            RoadNetwork::new().nearest_vertex(Point::new(0.0, 0.0)),
            None
        );
    }

    #[test]
    fn nearest_vertex_ties_break_to_highest_id() {
        // Co-located vertices produce exactly equal distances: the
        // explicit tie-break must reproduce what bare `min_by` did
        // before it (keep the *last* minimum, i.e. the highest id).
        let mut n = RoadNetwork::new();
        n.add_vertex(Point::new(1.0, 1.0));
        n.add_vertex(Point::new(1.0, 1.0));
        n.add_vertex(Point::new(1.0, 1.0));
        n.add_vertex(Point::new(5.0, 5.0));
        assert_eq!(n.nearest_vertex(Point::new(1.0, 1.0)), Some(2));
        // Equidistant distinct positions tie the same way.
        let mut m = RoadNetwork::new();
        m.add_vertex(Point::new(0.0, 1.0));
        m.add_vertex(Point::new(0.0, -1.0));
        assert_eq!(m.nearest_vertex(Point::new(0.0, 0.0)), Some(1));
    }

    #[test]
    fn dijkstra_matches_floyd_warshall_on_small_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n_v = 8usize;
            let mut net = RoadNetwork::new();
            for i in 0..n_v {
                net.add_vertex(Point::new(i as f64, 0.0));
            }
            let mut fw = vec![vec![f64::INFINITY; n_v]; n_v];
            for (i, row) in fw.iter_mut().enumerate() {
                row[i] = 0.0;
            }
            for _ in 0..20 {
                let u = rng.gen_range(0..n_v);
                let v = rng.gen_range(0..n_v);
                if u == v {
                    continue;
                }
                let w = rng.gen_range(0.1..10.0);
                net.add_edge(u as VertexId, v as VertexId, w);
                if w < fw[u][v] {
                    fw[u][v] = w;
                }
            }
            for k in 0..n_v {
                for i in 0..n_v {
                    for j in 0..n_v {
                        let alt = fw[i][k] + fw[k][j];
                        if alt < fw[i][j] {
                            fw[i][j] = alt;
                        }
                    }
                }
            }
            for (src, fw_row) in fw.iter().enumerate() {
                let d = net.dijkstra(src as VertexId);
                for dst in 0..n_v {
                    let (a, b) = (d[dst], fw_row[dst]);
                    assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                        "src {src} dst {dst}: dijkstra {a}, fw {b}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn point_to_point_matches_full_dijkstra(seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = RoadNetwork::manhattan_lattice(
                &mut rng,
                Point::new(0.0, 0.0),
                Point::new(0.1, 0.1),
                5,
                4,
                10.0,
                0.5,
            );
            let src = rng.gen_range(0..net.num_vertices()) as VertexId;
            let dst = rng.gen_range(0..net.num_vertices()) as VertexId;
            let full = net.dijkstra(src)[dst as usize];
            let p2p = net.shortest_path_cost(src, dst);
            prop_assert!((full - p2p).abs() < 1e-9);
        }
    }
}
