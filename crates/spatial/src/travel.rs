//! Travel-cost models.
//!
//! The paper treats travel cost as travel time ("when we know the travel
//! speed of vehicles, we can convert one to another", §2) and evaluates on
//! grid distances. [`TravelModel`] abstracts the cost oracle so the
//! dispatcher works identically over the constant-speed haversine model
//! (the evaluation setting) and a road network (the §2 formalism).

use crate::geo::Point;
use crate::road::RoadNetwork;

/// Milliseconds of simulated time; the whole stack uses integer
/// milliseconds to keep event ordering exact.
pub type Millis = u64;

/// A travel-cost oracle: time to drive between two points.
pub trait TravelModel: Send + Sync {
    /// Travel time from `from` to `to` in milliseconds.
    fn travel_time_ms(&self, from: Point, to: Point) -> Millis;

    /// Travel time in fractional seconds (the paper's revenue unit at α=1).
    fn travel_time_s(&self, from: Point, to: Point) -> f64 {
        self.travel_time_ms(from, to) as f64 / 1000.0
    }

    /// An upper bound on achievable speed (m/s straight-line): if
    /// `haversine(a, b) > bound · t` then `travel_time(a, b) > t`.
    /// Lets spatial indexes convert a time budget into a search radius.
    /// `None` (the default) means no bound is known and callers must scan.
    fn speed_bound_mps(&self) -> Option<f64> {
        None
    }
}

/// Constant-speed straight-line travel: `time = haversine / speed`.
///
/// This is the evaluation model of the paper (grid space, uniform speed).
/// The default speed of 5 m/s (18 km/h) matches average Manhattan taxi
/// speeds and calibrates the NYC-like workload to the paper's regime:
/// mean ride ≈ 13–14 minutes and a 3K-driver fleet near saturation
/// (its revenue of ~2.35×10⁸ s over 3K drivers is ~90% busy time).
#[derive(Debug, Clone, Copy)]
pub struct ConstantSpeedModel {
    speed_mps: f64,
}

impl ConstantSpeedModel {
    /// Creates a model with the given speed in meters/second.
    ///
    /// # Panics
    /// Panics unless `speed_mps` is positive and finite.
    pub fn new(speed_mps: f64) -> Self {
        assert!(
            speed_mps > 0.0 && speed_mps.is_finite(),
            "ConstantSpeedModel: speed must be positive, got {speed_mps}"
        );
        Self { speed_mps }
    }

    /// The configured speed in meters/second.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }
}

impl Default for ConstantSpeedModel {
    /// 5 m/s = 18 km/h, the average Manhattan taxi speed.
    fn default() -> Self {
        Self::new(5.0)
    }
}

impl TravelModel for ConstantSpeedModel {
    fn travel_time_ms(&self, from: Point, to: Point) -> Millis {
        let secs = from.distance_m(&to) / self.speed_mps;
        (secs * 1000.0).round() as Millis
    }

    fn speed_bound_mps(&self) -> Option<f64> {
        Some(self.speed_mps)
    }
}

/// Travel over a road network: both endpoints snap to their nearest
/// vertices and the cost is the shortest-path time between them, plus the
/// straight-line time of the two snap legs.
///
/// Edge costs of the underlying network must be in **seconds**.
pub struct RoadNetworkModel {
    network: RoadNetwork,
    snap_speed_mps: f64,
}

impl RoadNetworkModel {
    /// Wraps a road network whose edge costs are seconds of travel;
    /// `snap_speed_mps` prices the off-network legs to the snap vertices.
    ///
    /// # Panics
    /// Panics if the network is empty or the snap speed is not positive.
    pub fn new(network: RoadNetwork, snap_speed_mps: f64) -> Self {
        assert!(
            network.num_vertices() > 0,
            "RoadNetworkModel: network must not be empty"
        );
        assert!(
            snap_speed_mps > 0.0 && snap_speed_mps.is_finite(),
            "RoadNetworkModel: snap speed must be positive"
        );
        Self {
            network,
            snap_speed_mps,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }
}

impl TravelModel for RoadNetworkModel {
    fn travel_time_ms(&self, from: Point, to: Point) -> Millis {
        let u = self
            .network
            .nearest_vertex(from)
            .expect("network is non-empty");
        let v = self
            .network
            .nearest_vertex(to)
            .expect("network is non-empty");
        let snap_s = (from.distance_m(&self.network.position(u))
            + to.distance_m(&self.network.position(v)))
            / self.snap_speed_mps;
        let path_s = self.network.shortest_path_cost(u, v);
        let total_s = if path_s.is_finite() {
            path_s + snap_s
        } else {
            // Disconnected networks fall back to straight-line travel so the
            // simulation never deadlocks on an unreachable rider.
            from.distance_m(&to) / self.snap_speed_mps
        };
        (total_s * 1000.0).round() as Millis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constant_speed_scales_with_distance() {
        let m = ConstantSpeedModel::new(10.0);
        let a = Point::new(-74.0, 40.7);
        let b = Point::new(-73.9, 40.7);
        let t = m.travel_time_ms(a, b);
        let d = a.distance_m(&b);
        assert_eq!(t, (d / 10.0 * 1000.0).round() as u64);
        // Doubling speed halves the time (up to rounding).
        let fast = ConstantSpeedModel::new(20.0);
        let t2 = fast.travel_time_ms(a, b);
        assert!((t as f64 / t2 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn travel_time_zero_for_same_point() {
        let m = ConstantSpeedModel::default();
        let p = Point::new(-73.9, 40.8);
        assert_eq!(m.travel_time_ms(p, p), 0);
    }

    #[test]
    fn road_model_is_at_least_straight_line() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = RoadNetwork::manhattan_lattice(
            &mut rng,
            Point::new(-74.03, 40.58),
            Point::new(-73.77, 40.92),
            10,
            10,
            8.0,
            0.0,
        );
        let m = RoadNetworkModel::new(net, 8.0);
        let straight = ConstantSpeedModel::new(8.0);
        let a = Point::new(-74.0, 40.6);
        let b = Point::new(-73.8, 40.9);
        // Manhattan routing cannot beat the straight line at equal speed
        // (allow 1% slack for snapping/rounding).
        assert!(m.travel_time_ms(a, b) as f64 >= straight.travel_time_ms(a, b) as f64 * 0.99);
    }

    #[test]
    fn disconnected_network_falls_back_to_straight_line() {
        let mut net = RoadNetwork::new();
        net.add_vertex(Point::new(-74.0, 40.6));
        net.add_vertex(Point::new(-73.8, 40.9));
        // No edges: unreachable.
        let m = RoadNetworkModel::new(net, 8.0);
        let a = Point::new(-74.0, 40.6);
        let b = Point::new(-73.8, 40.9);
        let expect = (a.distance_m(&b) / 8.0 * 1000.0).round() as u64;
        assert_eq!(m.travel_time_ms(a, b), expect);
    }
}
