//! Geographic points and great-circle distances.

/// A geographic location in degrees (WGS-84 lon/lat, like the NYC TLC data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Longitude in degrees, increasing eastward.
    pub lon: f64,
    /// Latitude in degrees, increasing northward.
    pub lat: f64,
}

impl Point {
    /// Creates a point from longitude and latitude in degrees.
    pub const fn new(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// Great-circle distance to `other` in meters.
    pub fn distance_m(&self, other: &Point) -> f64 {
        haversine_m(*self, *other)
    }
}

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Haversine great-circle distance between two points, in meters.
///
/// Accurate to ~0.5% (the sphericity error), which is far below the noise
/// of urban travel times; the paper's grid spans ~30 km so planar error
/// would also be acceptable, but haversine keeps the crate generally
/// usable.
pub fn haversine_m(a: Point, b: Point) -> f64 {
    let to_rad = std::f64::consts::PI / 180.0;
    let (lat1, lat2) = (a.lat * to_rad, b.lat * to_rad);
    let dlat = (b.lat - a.lat) * to_rad;
    let dlon = (b.lon - a.lon) * to_rad;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = Point::new(-73.98, 40.75);
        assert_eq!(haversine_m(p, p), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = Point::new(-73.98, 40.75);
        let b = Point::new(-73.90, 40.70);
        assert!((haversine_m(a, b) - haversine_m(b, a)).abs() < 1e-9);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let d = haversine_m(a, b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn longitude_shrinks_with_latitude() {
        // One degree of longitude at 40.7°N is ~cos(40.7°)·111 km ≈ 84 km.
        let a = Point::new(-74.0, 40.7);
        let b = Point::new(-73.0, 40.7);
        let d = haversine_m(a, b);
        assert!((d - 84_300.0).abs() < 500.0, "got {d}");
    }

    #[test]
    fn nyc_box_diagonal_is_plausible() {
        // The paper's box: (−74.03..−73.77, 40.58..40.92): diagonal ≈ 43 km.
        let a = Point::new(-74.03, 40.58);
        let b = Point::new(-73.77, 40.92);
        let d = haversine_m(a, b);
        assert!((30_000.0..60_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn triangle_inequality_on_sample_points() {
        let pts = [
            Point::new(-74.0, 40.6),
            Point::new(-73.9, 40.8),
            Point::new(-73.8, 40.7),
        ];
        let ab = haversine_m(pts[0], pts[1]);
        let bc = haversine_m(pts[1], pts[2]);
        let ac = haversine_m(pts[0], pts[2]);
        assert!(ac <= ab + bc + 1e-6);
    }
}
