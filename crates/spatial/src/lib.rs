//! Spatial substrate for the MRVD reproduction.
//!
//! The paper manages riders and drivers on a lat/lon plane partitioned into
//! a 16×16 grid of regions over New York City and measures travel cost as
//! travel time (distance / speed). This crate provides:
//!
//! * [`geo`] — geographic points and haversine distances;
//! * [`grid`] — the rectangular region partition (`Grid`, `RegionId`),
//!   neighbourhood rings, and the paper's NYC extent;
//! * [`travel`] — the [`travel::TravelModel`] trait with a constant-speed
//!   haversine implementation (the paper's setting) and a road-network
//!   shortest-path implementation (the paper's §2 graph formalism);
//! * [`road`] — road-network graphs `G = ⟨V, E⟩` with Dijkstra shortest
//!   paths and a synthetic Manhattan-lattice generator;
//! * [`index`] — a per-region bucket index for radius-limited candidate
//!   queries (used by the dispatcher to find drivers near a rider), with
//!   incremental insert/remove/move maintenance, a dirty-region set and
//!   an op counter so the simulation engine can keep one live index in
//!   sync across batches instead of rebuilding it (drivers only move at
//!   dropoffs; consecutive batches share almost all spatial state).
//!
//! In the paper's notation: [`Point`]s are the rider pickups `s_i` /
//! dropoffs `e_i` and driver positions, a [`Grid`] cell is one region
//! `a_k` of the §2 partition, and a [`travel::TravelModel`] is the travel
//! cost function `cost(·, ·)` of Eq. 1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod geo;
pub mod grid;
pub mod index;
pub mod road;
pub mod travel;

pub use geo::{haversine_m, Point};
pub use grid::{Grid, RegionId, NYC_EXTENT};
pub use index::RegionIndex;
pub use road::RoadNetwork;
pub use travel::{ConstantSpeedModel, Millis, RoadNetworkModel, TravelModel};
