//! Offline stand-in for `criterion`: a small wall-clock benchmark
//! harness exposing the API subset the `mrvd-bench` benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`]).
//!
//! The build environment has no registry access, so this lives in-tree.
//! It does honest timing (warmup, then timed batches, median-of-samples
//! reporting) but none of real criterion's statistics, plotting, or
//! baseline storage. `--bench` / `--test` CLI args are accepted and
//! ignored except that `--test` (or `CRITERION_SMOKE=1`) switches to one
//! iteration per benchmark, which is what `cargo test --benches` runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; one per bench binary.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let smoke =
            args.iter().any(|a| a == "--test") || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion {
            sample_size: 10,
            smoke,
        }
    }
}

impl Criterion {
    /// Accepts real criterion's CLI configuration entry point; the shim
    /// already read the args it honors in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            smoke: self.smoke,
            _parent: self,
        }
    }

    /// Times a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, self.smoke, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.smoke, f);
        self
    }

    /// Times `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.smoke, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `<function>/<parameter>`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Passed to the closure; `iter` times the routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target_iters: u64,
}

impl Bencher {
    /// Runs `routine` `target_iters` times, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters_done += self.target_iters;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, smoke: bool, mut f: F) {
    if smoke {
        // `cargo test --benches` mode: execute once to prove it runs.
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target_iters: 1,
        };
        f(&mut b);
        println!("{label}: smoke ok");
        return;
    }

    // Warmup and iteration-count calibration: aim for samples of ~50 ms,
    // capped so slow end-to-end benches still finish promptly.
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        target_iters: 1,
    };
    f(&mut b);
    let per_iter = if b.iters_done > 0 {
        b.elapsed / b.iters_done as u32
    } else {
        Duration::ZERO
    };
    let target_iters = if per_iter.is_zero() {
        1_000
    } else {
        (Duration::from_millis(50).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target_iters,
        };
        f(&mut b);
        if b.iters_done > 0 {
            samples.push(b.elapsed.as_secs_f64() / b.iters_done as f64);
        }
    }
    if samples.is_empty() {
        println!("{label}: no samples (closure never called iter)");
        return;
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{label}: median {} (min {}, max {}, {} samples × {} iters)",
        format_duration(Duration::from_secs_f64(median)),
        format_duration(Duration::from_secs_f64(lo)),
        format_duration(Duration::from_secs_f64(hi)),
        samples.len(),
        target_iters,
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        std::env::set_var("CRITERION_SMOKE", "1");
        let mut c = Criterion::default().configure_from_args();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(500)), "500.00 µs");
        assert_eq!(format_duration(Duration::from_millis(500)), "500.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
