//! Offline stand-in for `serde_json`: the [`json!`] macro, a [`Value`]
//! tree, [`to_string_pretty`] and a [`from_str`] parser — the subset the
//! workspace uses to dump tables/figures and to load declarative scenario
//! specs. No registry access in the build environment, so this lives
//! in-tree as a path dependency. Object keys keep insertion order;
//! non-finite floats serialize as `null` like real `serde_json`.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as the originating Rust number).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or finite float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Finite float (non-finite floats become [`Value::Null`]).
    Float(f64),
}

/// Serialization or parse failure. The in-tree `Value` tree is always
/// serializable, so serialization never constructs one; [`from_str`]
/// returns it with a message describing the first syntax error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (integers widen); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v as f64),
            Value::Number(Number::UInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer; `None` otherwise. Floats are
    /// never integers (matching real `serde_json`), so `42.0` is `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice; `None` on non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool; `None` on non-bools.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice; `None` on non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// Supports the full JSON grammar the serializer emits: objects, arrays,
/// strings with `\"\\/bfnrt` and `\uXXXX` escapes, numbers (integers stay
/// integers, anything with `.`/`e` becomes a float), booleans and `null`.
/// Trailing non-whitespace input is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(v)
}

/// Containers may nest at most this deep (real `serde_json`'s default is
/// also 128); past it the parser errors instead of blowing the stack on
/// hostile input like `"[".repeat(1 << 20)`.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let v = self.parse_object_body();
        self.depth -= 1;
        v
    }

    fn parse_object_body(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let v = self.parse_array_body();
        self.depth -= 1;
        v
    }

    fn parse_array_body(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // output (the serializer never emits them);
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
            Ok(Value::Number(Number::Float(v)))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Number(Number::Int(v)))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::Number(Number::UInt(v)))
        } else {
            Err(self.err("malformed number"))
        }
    }
}

/// Conversion into a [`Value`] — the role `serde::Serialize` plays for
/// real `serde_json`, flattened into one trait.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Number(Number::Int(v)),
            Err(_) => Value::Number(Number::UInt(*self)),
        }
    }
}

impl ToJson for usize {
    fn to_json_value(&self) -> Value {
        (*self as u64).to_json_value()
    }
}

macro_rules! to_json_float {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    Value::Null
                }
            }
        }
    )*};
}

to_json_float!(f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from JSON-looking syntax: `json!(null)`,
/// `json!([a, b])`, `json!({ "k": v, .. })`, or any expression whose type
/// implements [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json_value(&$elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json_value(&$other) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            // Round-trippable shortest float; keep a `.0` so integers
            // written as floats still read back as floats.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a value as two-space-indented JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_json_value(), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_collections_serialize() {
        assert_eq!(to_string_pretty(&json!(null)).unwrap(), "null");
        assert_eq!(to_string_pretty(&json!(true)).unwrap(), "true");
        assert_eq!(to_string_pretty(&json!(3)).unwrap(), "3");
        assert_eq!(to_string_pretty(&json!(2.5)).unwrap(), "2.5");
        assert_eq!(to_string_pretty(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(
            to_string_pretty(&json!("hi\n\"x\"")).unwrap(),
            "\"hi\\n\\\"x\\\"\""
        );
        let v = vec![1.0, 2.0];
        assert_eq!(json!(v.clone()), Value::Array(vec![json!(1.0), json!(2.0)]));
        assert_eq!(json!(["a", "b"]), json!(vec!["a", "b"]));
    }

    #[test]
    fn objects_keep_insertion_order() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let v = json!({ "zeta": 1, "alpha": rows, "nested": json!({ "k": [1, 2] }) });
        let s = to_string_pretty(&v).unwrap();
        let zeta = s.find("zeta").unwrap();
        let alpha = s.find("alpha").unwrap();
        assert!(zeta < alpha, "insertion order lost:\n{s}");
        assert!(s.contains("\"k\": [\n      1,\n      2\n    ]"), "{s}");
    }

    #[test]
    fn parser_round_trips_serializer_output() {
        let v = json!({
            "name": "rain",
            "factor": 0.5,
            "windows": [json!({ "start": 0, "end": 3_600_000 })],
            "enabled": true,
            "note": json!(null),
            "big": u64::MAX,
            "neg": -42,
            "text": "a\n\"b\"\tc\\d",
        });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parser_handles_scalars_and_whitespace() {
        assert_eq!(from_str(" null ").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-3").unwrap(), json!(-3));
        assert_eq!(from_str("2.5e2").unwrap(), json!(250.0));
        assert_eq!(from_str("\"\\u0041x\"").unwrap(), json!("Ax"));
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1..2",
            "\"unterminated",
            "[] []",
            "nul",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(200_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
        // Exactly at the limit still parses.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(from_str(&ok).is_ok());
        let over = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert!(from_str(&over).is_err());
    }

    #[test]
    fn as_u64_rejects_floats_like_real_serde_json() {
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("42.0").unwrap().as_u64(), None);
        assert_eq!(json!(2.0).as_u64(), None);
    }

    #[test]
    fn accessors_read_fields() {
        let v = from_str("{\"a\": 1, \"b\": [2.5, \"x\"], \"c\": false}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        let arr = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(v.get("c").and_then(Value::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert!(v.get("a").unwrap().as_str().is_none());
        assert_eq!(json!(2.5).as_u64(), None);
    }

    #[test]
    fn references_and_u64_serialize() {
        let n: u64 = u64::MAX;
        let r = &n;
        assert_eq!(to_string_pretty(&json!(r)).unwrap(), u64::MAX.to_string());
        let s = String::from("x");
        let v = json!({ "s": &s, "opt": Some(1), "none": Option::<i32>::None });
        assert!(to_string_pretty(&v).unwrap().contains("\"none\": null"));
    }
}
