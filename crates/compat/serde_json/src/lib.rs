//! Offline stand-in for `serde_json`: the [`json!`] macro, a [`Value`]
//! tree, and [`to_string_pretty`] — the subset `mrvd-experiments` uses to
//! dump tables and figures. No registry access in the build environment,
//! so this lives in-tree as a path dependency. Object keys keep insertion
//! order; non-finite floats serialize as `null` like real `serde_json`.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as the originating Rust number).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or finite float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Finite float (non-finite floats become [`Value::Null`]).
    Float(f64),
}

/// Serialization failure. The in-tree `Value` tree is always
/// serializable, so this is never constructed; it exists so call sites
/// can keep real `serde_json`'s `Result` signature and `.expect(..)`.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] — the role `serde::Serialize` plays for
/// real `serde_json`, flattened into one trait.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Number(Number::Int(v)),
            Err(_) => Value::Number(Number::UInt(*self)),
        }
    }
}

impl ToJson for usize {
    fn to_json_value(&self) -> Value {
        (*self as u64).to_json_value()
    }
}

macro_rules! to_json_float {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    Value::Null
                }
            }
        }
    )*};
}

to_json_float!(f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from JSON-looking syntax: `json!(null)`,
/// `json!([a, b])`, `json!({ "k": v, .. })`, or any expression whose type
/// implements [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json_value(&$elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json_value(&$other) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            // Round-trippable shortest float; keep a `.0` so integers
            // written as floats still read back as floats.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a value as two-space-indented JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_json_value(), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_collections_serialize() {
        assert_eq!(to_string_pretty(&json!(null)).unwrap(), "null");
        assert_eq!(to_string_pretty(&json!(true)).unwrap(), "true");
        assert_eq!(to_string_pretty(&json!(3)).unwrap(), "3");
        assert_eq!(to_string_pretty(&json!(2.5)).unwrap(), "2.5");
        assert_eq!(to_string_pretty(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(
            to_string_pretty(&json!("hi\n\"x\"")).unwrap(),
            "\"hi\\n\\\"x\\\"\""
        );
        let v = vec![1.0, 2.0];
        assert_eq!(json!(v.clone()), Value::Array(vec![json!(1.0), json!(2.0)]));
        assert_eq!(json!(["a", "b"]), json!(vec!["a", "b"]));
    }

    #[test]
    fn objects_keep_insertion_order() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let v = json!({ "zeta": 1, "alpha": rows, "nested": json!({ "k": [1, 2] }) });
        let s = to_string_pretty(&v).unwrap();
        let zeta = s.find("zeta").unwrap();
        let alpha = s.find("alpha").unwrap();
        assert!(zeta < alpha, "insertion order lost:\n{s}");
        assert!(s.contains("\"k\": [\n      1,\n      2\n    ]"), "{s}");
    }

    #[test]
    fn references_and_u64_serialize() {
        let n: u64 = u64::MAX;
        let r = &n;
        assert_eq!(to_string_pretty(&json!(r)).unwrap(), u64::MAX.to_string());
        let s = String::from("x");
        let v = json!({ "s": &s, "opt": Some(1), "none": Option::<i32>::None });
        assert!(to_string_pretty(&v).unwrap().contains("\"none\": null"));
    }
}
