//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it actually uses as a path dependency: `StdRng`
//! (xoshiro256++ seeded via SplitMix64), [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom`]. Streams are deterministic per seed but are NOT
//! bit-compatible with crates.io `rand`; nothing in the workspace relies
//! on the exact stream, only on seedability and statistical quality.

/// A source of random `u64`s. Object-safety is not needed anywhere in the
/// workspace, so this is the whole core trait.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Samples a value of `Self` from uniform bits (the `Standard`
/// distribution of real `rand`, flattened into one trait).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type a uniform range sample can produce. The single generic
/// [`SampleRange`] impl below funnels through this trait so integer
/// literal inference unifies the way it does with real `rand`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// A range that a uniform value can be drawn from (`lo..hi` and
/// `lo..=hi` for the numeric types the workspace uses).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// Uniform `u64` in `[0, n)` by rejection, so small ranges stay unbiased
/// enough for the chi-square tests downstream.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = uniform_u64_below(rng, span + 1);
                    (lo as i128 + off as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    let off = uniform_u64_below(rng, span);
                    (lo as i128 + off as i128) as $t
                }
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded by SplitMix64 so that any `u64` seed yields a well-mixed
    /// non-zero state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
        use super::RngCore;
        let _ = c.next_u32();
    }

    #[test]
    fn unit_floats_are_in_range_and_mean_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_int_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [0u32; 6];
        for _ in 0..6_000 {
            seen[rng.gen_range(0..6usize)] += 1;
        }
        for (v, &c) in seen.iter().enumerate() {
            assert!(c > 800, "value {v} drawn only {c} times");
        }
        for _ in 0..1_000 {
            let x = rng.gen_range(1..=9usize);
            assert!((1..=9).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
