//! Offline stand-in for `proptest`: the [`proptest!`] macro backed by a
//! fixed-seed sampling loop instead of real shrinking/persistence. Each
//! generated test draws [`CASES`] inputs from its strategies with a
//! deterministic [`rand::rngs::StdRng`], so runs are reproducible and
//! fast — the "fast seeded smoke" flavor of property testing. Supported
//! strategy surface: primitive ranges (`0u64..150`, `-1e3f64..1e3`),
//! tuples of strategies, and [`collection::vec`].

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Inputs drawn per property test (real proptest defaults to 256; the
/// tier-1 suite trades depth for wall-clock here).
pub const CASES: usize = 64;

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + Clone> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the test modules import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                use $crate::Strategy as _;
                // Seed folds in the test name so sibling tests explore
                // different input streams, deterministically.
                let mut __seed: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
                }
                let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..$crate::CASES {
                    $( let $arg = ($strat).sample(&mut __rng); )*
                    $body
                }
            }
        )*
    };
}
