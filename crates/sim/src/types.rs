//! Identifier and time types shared across the simulator.

/// Simulated time in integer milliseconds (exact event ordering, no
/// floating-point drift over a day).
pub type Millis = u64;

/// Identifier of a rider (order). Unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RiderId(pub u32);

impl RiderId {
    /// The raw index (riders are numbered densely from 0 in trip order).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a driver. Unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriverId(pub u32);

impl DriverId {
    /// The raw index (drivers are numbered densely from 0).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RiderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Display for DriverId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}
