//! Struct-of-arrays fleet state for the event engine.
//!
//! At city scale (10K–50K drivers) the engine's hot transitions touch
//! one field of one driver at a time — a tag flip at dropoff, a
//! position at assignment, a retire flag at a shift change. The
//! array-of-structs `Vec<DriverState>` interleaves a 3-variant enum's
//! payloads (~32 bytes each) plus a separate retire-flag vector, so
//! every touch drags unrelated fields through cache. [`Fleet`] splits
//! the state into parallel arrays — one tag byte, one position, one
//! timestamp, one retire flag per driver — extending the slot
//! discipline `BatchViews` introduced in the views layer to the fleet
//! itself. The enum survives as `engine::DriverState` for the reference
//! loop's literal per-Δ scan.
//!
//! Field meaning depends on the tag:
//!
//! | tag       | `pos`              | `time`                 |
//! |-----------|--------------------|------------------------|
//! | Available | current position   | available since (ms)   |
//! | Busy      | ride dropoff point | dropoff time (ms)      |
//! | Offline   | parked position    | unused                 |

use mrvd_spatial::Point;

use crate::types::Millis;

/// A driver's coarse state; payload lives in the [`Fleet`] arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tag {
    /// On shift and idle.
    Available,
    /// Driving a rider; `pos` holds the dropoff point, `time` the
    /// dropoff timestamp.
    Busy,
    /// Off shift (never shown to policies); `pos` remembers where the
    /// driver parked so a later shift change resumes there.
    Offline,
}

/// Struct-of-arrays driver state (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct Fleet {
    tag: Vec<Tag>,
    pos: Vec<Point>,
    time: Vec<Millis>,
    /// Busy drivers marked here retire (go offline) at their dropoff.
    retiring: Vec<bool>,
}

impl Fleet {
    /// Seeds the fleet from spawn positions: the first `initial_online`
    /// drivers start available at t = 0, the rest wait offline.
    pub fn new(pool: &[Point], initial_online: usize) -> Self {
        Self {
            tag: (0..pool.len())
                .map(|i| {
                    if i < initial_online {
                        Tag::Available
                    } else {
                        Tag::Offline
                    }
                })
                .collect(),
            pos: pool.to_vec(),
            time: vec![0; pool.len()],
            retiring: vec![false; pool.len()],
        }
    }

    /// Number of drivers in the pool.
    pub fn len(&self) -> usize {
        self.tag.len()
    }

    /// The driver's coarse state.
    pub fn tag(&self, i: usize) -> Tag {
        self.tag[i]
    }

    /// The driver's position payload (see the module table).
    pub fn pos(&self, i: usize) -> Point {
        self.pos[i]
    }

    /// The driver's timestamp payload (see the module table).
    pub fn time(&self, i: usize) -> Millis {
        self.time[i]
    }

    /// Whether the driver is marked to retire at its next dropoff.
    pub fn is_retiring(&self, i: usize) -> bool {
        self.retiring[i]
    }

    /// Marks or clears the retire-at-dropoff flag.
    pub fn set_retiring(&mut self, i: usize, v: bool) {
        self.retiring[i] = v;
    }

    /// Puts the driver on shift and idle at `pos` since `since_ms`.
    pub fn set_available(&mut self, i: usize, pos: Point, since_ms: Millis) {
        self.tag[i] = Tag::Available;
        self.pos[i] = pos;
        self.time[i] = since_ms;
    }

    /// Puts the driver on a ride ending at `dropoff` at `until_ms`.
    pub fn set_busy(&mut self, i: usize, dropoff: Point, until_ms: Millis) {
        self.tag[i] = Tag::Busy;
        self.pos[i] = dropoff;
        self.time[i] = until_ms;
    }

    /// Takes the driver off shift, parked wherever `pos` currently
    /// points (its last dropoff or idle position).
    pub fn set_offline(&mut self, i: usize) {
        self.tag[i] = Tag::Offline;
    }

    /// Number of drivers on shift and not pending retirement — the
    /// quantity shift reconciliation compares against its target.
    pub fn online(&self) -> usize {
        self.tag
            .iter()
            .zip(&self.retiring)
            .filter(|(t, &r)| **t != Tag::Offline && !r)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(-73.97 + i as f64 * 0.001, 40.75))
            .collect()
    }

    #[test]
    fn seeding_splits_online_and_offline() {
        let f = Fleet::new(&pool(5), 3);
        assert_eq!(f.len(), 5);
        assert_eq!(f.online(), 3);
        for i in 0..3 {
            assert_eq!(f.tag(i), Tag::Available);
            assert_eq!(f.time(i), 0);
        }
        for i in 3..5 {
            assert_eq!(f.tag(i), Tag::Offline);
        }
    }

    #[test]
    fn transitions_round_trip_payloads() {
        let mut f = Fleet::new(&pool(2), 2);
        let dropoff = Point::new(-73.90, 40.80);
        f.set_busy(0, dropoff, 42_000);
        assert_eq!(f.tag(0), Tag::Busy);
        assert_eq!(f.pos(0), dropoff);
        assert_eq!(f.time(0), 42_000);
        assert_eq!(f.online(), 2, "busy drivers are still on shift");
        f.set_retiring(0, true);
        assert!(f.is_retiring(0));
        assert_eq!(f.online(), 1, "retiring drivers leave the online count");
        f.set_retiring(0, false);
        f.set_available(0, dropoff, 42_000);
        assert_eq!(f.tag(0), Tag::Available);
        assert_eq!(f.time(0), 42_000);
        f.set_offline(0);
        assert_eq!(f.tag(0), Tag::Offline);
        assert_eq!(f.pos(0), dropoff, "offline parks at the last position");
        assert_eq!(f.online(), 1);
    }
}
