//! The dispatch-policy interface between the simulator and the
//! assignment algorithms of `mrvd-core`.

use mrvd_spatial::{Grid, Point, RegionIndex, TravelModel};

use crate::counts::RegionCounts;
use crate::types::{DriverId, Millis, RiderId};
use crate::views::BatchViews;

/// A rider currently waiting for a pickup.
#[derive(Debug, Clone, Copy)]
pub struct WaitingRider {
    /// Order id.
    pub id: RiderId,
    /// Pickup location `s_i`.
    pub pickup: Point,
    /// Destination `e_i`.
    pub dropoff: Point,
    /// Posting time `t_i`.
    pub request_ms: Millis,
    /// Pickup deadline `τ_i`: a driver must *arrive* at `pickup` by this
    /// time (Definition 3).
    pub deadline_ms: Millis,
}

/// A driver currently available for assignment.
#[derive(Debug, Clone, Copy)]
pub struct AvailableDriver {
    /// Driver id.
    pub id: DriverId,
    /// Current position (the dropoff of the last order, or the initial
    /// position).
    pub pos: Point,
    /// When the driver became available — batch time minus this is the
    /// driver's running idle interval ψ.
    pub available_since_ms: Millis,
}

/// A driver currently delivering an order, exposed so policies can count
/// the upcoming rejoined drivers `|D̂_k|` per region (Algorithm 1, line 6).
#[derive(Debug, Clone, Copy)]
pub struct BusyDriver {
    /// Driver id.
    pub id: DriverId,
    /// When the driver will drop off and rejoin.
    pub dropoff_ms: Millis,
    /// Where the driver will rejoin.
    pub dropoff_pos: Point,
}

/// Everything a policy sees at one batch timestamp.
pub struct BatchContext<'a> {
    /// The batch timestamp `t̄`.
    pub now_ms: Millis,
    /// Riders waiting (arrived, unassigned, deadline not passed).
    pub riders: &'a [WaitingRider],
    /// Available drivers.
    pub drivers: &'a [AvailableDriver],
    /// Busy drivers with known rejoin time/place.
    pub busy: &'a [BusyDriver],
    /// The travel-cost oracle.
    pub travel: &'a dyn TravelModel,
    /// The region partition.
    pub grid: &'a Grid,
    /// The engine's incrementally maintained spatial index of the
    /// available drivers, when one is live (`None` under the legacy
    /// reference loop and in hand-built contexts).
    ///
    /// When present, it is guaranteed to be consistent with
    /// [`BatchContext::drivers`]: same driver set, same positions, built
    /// over [`BatchContext::grid`]; [`BatchContext::driver_slot`]
    /// translates index hits back to slice positions. Candidate
    /// generation uses it to skip the per-batch index rebuild (drivers
    /// only move at dropoffs, so consecutive batches share almost all
    /// spatial state).
    pub avail_index: Option<&'a RegionIndex<DriverId>>,
    /// The engine's incrementally maintained per-region batch-state
    /// counts, when live (`None` under the legacy reference loop and in
    /// hand-built contexts).
    ///
    /// When present, it is guaranteed to be consistent with the views:
    /// waiting counts mirror [`BatchContext::riders`] by pickup region,
    /// available counts mirror [`BatchContext::drivers`] by position
    /// region, and the rejoin-time multisets mirror [`BatchContext::busy`]
    /// by dropoff region, all over [`BatchContext::grid`]. Rate
    /// estimation uses it to skip the per-batch rider/driver/busy scans
    /// (see `mrvd-core`'s `RateTracker`).
    pub region_counts: Option<&'a RegionCounts>,
    /// The engine's incrementally maintained batch views, when live
    /// (`None` under the legacy reference loop and in hand-built
    /// contexts).
    ///
    /// When present, [`BatchContext::riders`], [`BatchContext::drivers`]
    /// and [`BatchContext::busy`] are exactly its waiting / available /
    /// busy slices, and its id→slot maps answer membership and slot
    /// queries in `O(1)` ([`BatchContext::driver_slot`] uses the
    /// available-driver map). Note the slices are **not** id-sorted: the
    /// views keep slots stable under `swap_remove`, and every policy
    /// breaks ties on rider/driver ids so its output is invariant to the
    /// view order.
    pub views: Option<&'a BatchViews>,
}

impl BatchContext<'_> {
    /// Whether `driver` can reach `rider`'s pickup before the deadline —
    /// the paper's validity predicate (Definition 3).
    pub fn is_valid_pair(&self, rider: &WaitingRider, driver: &AvailableDriver) -> bool {
        let t = self.travel.travel_time_ms(driver.pos, rider.pickup);
        self.now_ms + t <= rider.deadline_ms
    }

    /// Position of `id` in [`BatchContext::drivers`] — `O(1)` through the
    /// live views' id→slot map when the engine supplied one, a linear
    /// scan in hand-built contexts. Returns `None` for drivers not in
    /// the batch (busy, offline, unknown).
    pub fn driver_slot(&self, id: DriverId) -> Option<usize> {
        if let Some(views) = self.views {
            let slot = views.avail_slot(id);
            debug_assert_eq!(
                slot,
                self.drivers.iter().position(|d| d.id == id),
                "live views diverged from BatchContext::drivers"
            );
            return slot;
        }
        self.drivers.iter().position(|d| d.id == id)
    }
}

/// One rider–driver assignment produced by a policy.
#[derive(Debug, Clone, Copy)]
pub struct Assignment {
    /// The assigned rider.
    pub rider: RiderId,
    /// The assigned driver.
    pub driver: DriverId,
    /// The policy's estimate of the driver's idle time after dropping the
    /// rider off (seconds) — the queueing policies fill this for the
    /// Table 3 estimation study; baselines leave it `None`.
    pub estimated_idle_s: Option<f64>,
}

/// A batch dispatching algorithm.
///
/// Implementations must return *valid* pairs (each rider/driver at most
/// once, driver able to reach the pickup by the deadline); the simulator
/// asserts this.
pub trait DispatchPolicy {
    /// Display name (matches the paper's figure legends: "IRG-P", "LS-R",
    /// "LTG", "NEAR", "RAND", "POLAR", "SHORT", "UPPER").
    fn name(&self) -> String;

    /// Computes the assignments for one batch.
    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment>;

    /// Whether this policy requires "teleport pickup" semantics (the
    /// UPPER revenue bound ignores pickup distances, §6.3). The simulator
    /// then makes pickups instantaneous and relaxes validity to
    /// `deadline ≥ now`.
    fn teleports_pickup(&self) -> bool {
        false
    }

    /// Whether the engine must invoke [`DispatchPolicy::assign`] at
    /// *every* batch tick while riders are waiting, even when no arrival,
    /// renege, dropoff or shift change happened since the previous tick.
    ///
    /// The event-driven engine skips quiescent ticks: it only calls the
    /// policy when the batch state changed since the last invocation (or
    /// when the last invocation assigned someone, since candidate budgets
    /// may then admit previously truncated pairs). That is exact for
    /// policies that are pure functions of the [`BatchContext`] and
    /// assign whenever a valid pair exists — every policy in this
    /// workspace except RAND. Policies whose observable behaviour depends
    /// on *how many times* `assign` was called (e.g. a seeded RNG drawing
    /// per invocation) — or on simulation time crossing a threshold
    /// *between* events (e.g. "hold a pair back until the rider waited
    /// 30 s") — must return `true` here so their call streams stay
    /// aligned with the paper's literal per-Δ loop. Ticks with an empty
    /// waiting set are still skippable then: no valid policy can assign
    /// anyone, and a well-behaved implementation draws nothing.
    ///
    /// The answer must be constant over the policy's lifetime; the engine
    /// samples it once per run.
    fn invoke_every_batch(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::ConstantSpeedModel;

    #[test]
    fn validity_respects_deadline() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(10.0);
        let rider = WaitingRider {
            id: RiderId(0),
            pickup: Point::new(-73.98, 40.75),
            dropoff: Point::new(-73.95, 40.78),
            request_ms: 0,
            deadline_ms: 60_000,
        };
        let near = AvailableDriver {
            id: DriverId(0),
            pos: Point::new(-73.981, 40.751),
            available_since_ms: 0,
        };
        let far = AvailableDriver {
            id: DriverId(1),
            pos: Point::new(-73.80, 40.60),
            available_since_ms: 0,
        };
        let ctx = BatchContext {
            now_ms: 30_000,
            riders: &[],
            drivers: &[],
            busy: &[],
            travel: &travel,
            grid: &grid,
            avail_index: None,
            region_counts: None,
            views: None,
        };
        assert!(ctx.is_valid_pair(&rider, &near));
        assert!(!ctx.is_valid_pair(&rider, &far));
    }

    #[test]
    fn driver_slot_finds_drivers_in_any_view_order() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(10.0);
        // Deliberately not id-sorted: the live views permute slots.
        let drivers: Vec<AvailableDriver> = [7u32, 0, 3]
            .iter()
            .map(|&i| AvailableDriver {
                id: DriverId(i),
                pos: Point::new(-73.98, 40.75),
                available_since_ms: 0,
            })
            .collect();
        let mut views = BatchViews::new();
        for d in &drivers {
            views.add_available(*d);
        }
        for views in [None, Some(&views)] {
            let ctx = BatchContext {
                now_ms: 0,
                riders: &[],
                drivers: &drivers,
                busy: &[],
                travel: &travel,
                grid: &grid,
                avail_index: None,
                region_counts: None,
                views,
            };
            assert_eq!(ctx.driver_slot(DriverId(7)), Some(0));
            assert_eq!(ctx.driver_slot(DriverId(0)), Some(1));
            assert_eq!(ctx.driver_slot(DriverId(3)), Some(2));
            assert_eq!(ctx.driver_slot(DriverId(5)), None);
        }
    }
}
