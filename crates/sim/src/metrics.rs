//! Simulation outputs.

use mrvd_spatial::RegionId;
use mrvd_stats::SummaryStats;

use crate::types::{DriverId, Millis, RiderId};

/// One completed assignment, with everything the evaluation joins on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignmentRecord {
    /// The served rider.
    pub rider: RiderId,
    /// The serving driver.
    pub driver: DriverId,
    /// Batch timestamp at which the pair was formed.
    pub batch_ms: Millis,
    /// When the driver reached the pickup (≤ the rider's deadline).
    pub pickup_ms: Millis,
    /// When the rider was dropped off (driver rejoins here).
    pub dropoff_ms: Millis,
    /// Revenue `α · cost(s_i, e_i)` in cost units (seconds at α = 1).
    pub revenue: f64,
    /// The driver's idle interval ψ that *ended* with this assignment:
    /// batch time minus the driver's availability start, in ms.
    pub driver_idle_ms: Millis,
    /// Region of the rider's destination (where the driver will rejoin).
    pub dropoff_region: RegionId,
    /// The policy's idle-time estimate for after this dropoff (seconds),
    /// when the policy provides one.
    pub estimated_idle_s: Option<f64>,
}

/// One reneged rider, charged at the exact deadline.
///
/// The batch loop of the paper's Algorithm 1 only *observes* reneges at
/// the next batch boundary, quantizing their timestamps by up to Δ; the
/// event-driven engine records the true `deadline_ms` instead (the
/// quantity Alwan–Ata–Zhou's abandonment dynamics depend on). The legacy
/// reference loop still reports the quantized batch timestamp here —
/// that difference is pinned by a regression test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenegeRecord {
    /// The rider who gave up.
    pub rider: RiderId,
    /// When the rider posted the order.
    pub request_ms: Millis,
    /// When the rider left the platform (the exact pickup deadline under
    /// the event engine; the first batch timestamp past it under the
    /// legacy reference loop).
    pub renege_ms: Millis,
}

impl RenegeRecord {
    /// How long the rider waited before giving up, in seconds.
    pub fn wait_s(&self) -> f64 {
        (self.renege_ms - self.request_ms) as f64 / 1000.0
    }
}

/// Aggregate result of one simulated day.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Policy display name.
    pub policy: String,
    /// Total revenue `Σ α·cost(s_i, e_i)` over served riders (Eq. 1).
    pub total_revenue: f64,
    /// Number of served riders.
    pub served: usize,
    /// Number of riders who reneged (deadline passed unassigned).
    pub reneged: usize,
    /// Total riders that entered the platform.
    pub total_riders: usize,
    /// Riders still waiting when the horizon ended.
    pub still_waiting: usize,
    /// Wall-clock seconds spent inside `DispatchPolicy::assign`, per
    /// executed batch.
    pub batch_time: SummaryStats,
    /// Number of batch slots in the horizon, `⌈horizon / Δ⌉` — the
    /// batches the paper's literal loop would run.
    pub batches: usize,
    /// Batch slots at which the policy actually ran; the event-driven
    /// engine skips slots where nothing changed since the previous
    /// invocation, so this is ≤ [`SimResult::batches`].
    pub ticks_executed: usize,
    /// State-transition events the engine applied at their true times
    /// (admissions, reneges, dropoffs, shift changes). Zero under the
    /// legacy reference loop, which scans instead of queueing events.
    pub events_processed: usize,
    /// Mutations applied to the live availability index (one per insert,
    /// one per remove, two per move) while maintaining it incrementally
    /// across the whole run. Zero under the legacy reference loop, which
    /// has no live index — policies rebuild their own every batch.
    pub index_ops: usize,
    /// Cumulative count of regions whose index bucket changed between
    /// consecutive *executed* batches (the dirty-set size drained at each
    /// policy invocation). Low numbers relative to
    /// `ticks_executed × num_regions` are what make incremental
    /// maintenance pay off.
    pub index_regions_dirtied: usize,
    /// Policy invocations that were handed the live index instead of
    /// having to rebuild a candidate index from scratch — equals
    /// [`SimResult::ticks_executed`] under the event engine, zero under
    /// the legacy reference loop.
    pub index_rebuilds_avoided: usize,
    /// Mutations applied to the live per-region batch-state counts
    /// ([`crate::RegionCounts`]: waiting/available/rejoining) while
    /// maintaining them incrementally across the whole run. Zero under
    /// the legacy reference loop, which has no live counts — policies
    /// re-scan the batch views instead.
    pub counts_ops: usize,
    /// Cumulative count of regions whose live batch-state counts changed
    /// between consecutive *executed* batches (the counts' dirty-set size
    /// drained at each policy invocation). Low numbers relative to
    /// `ticks_executed × num_regions` are what make incremental rate
    /// estimation pay off.
    pub counts_regions_dirtied: usize,
    /// Mutations applied to the live batch views ([`crate::BatchViews`]:
    /// the waiting/available/busy slices policies see) while maintaining
    /// them incrementally across the whole run. Zero under the legacy
    /// reference loop, which rebuilds the views by full scans every batch.
    pub views_ops: usize,
    /// Cumulative count of view entries touched between consecutive
    /// *executed* batches (adds plus swap_remove targets and relocated
    /// fillers, drained at each policy invocation). Low numbers relative
    /// to `ticks_executed × world size` are what make the incremental
    /// views pay off.
    pub views_entries_dirtied: usize,
    /// Policy invocations that were handed the live views instead of the
    /// engine rebuilding them from full rider/fleet scans — equals
    /// [`SimResult::ticks_executed`] under the event engine, zero under
    /// the legacy reference loop.
    pub views_rebuilds_avoided: usize,
    /// Complete assignment log (chronological).
    pub assignments: Vec<AssignmentRecord>,
    /// Complete renege log (chronological).
    pub reneges: Vec<RenegeRecord>,
}

impl SimResult {
    /// Served riders as a fraction of all riders.
    pub fn service_rate(&self) -> f64 {
        if self.total_riders == 0 {
            0.0
        } else {
            self.served as f64 / self.total_riders as f64
        }
    }

    /// Mean wall-clock time per batch slot, in seconds: total policy
    /// time over all `⌈horizon/Δ⌉` slots, charging skipped slots their
    /// true cost of zero. This keeps the number comparable with the
    /// legacy loop (which executed every slot, measuring ≈0 on the empty
    /// ones) and across policies with different skip rates — the
    /// denominator is the batch grid, not the executed subset.
    pub fn mean_batch_time_s(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_time.mean() * self.batch_time.count() as f64 / self.batches as f64
        }
    }

    /// Mean wall-clock time per *executed* batch, in seconds — what one
    /// dispatch round costs when the policy actually runs.
    pub fn mean_executed_batch_time_s(&self) -> f64 {
        self.batch_time.mean()
    }

    /// Batch slots the engine skipped because nothing changed.
    pub fn ticks_skipped(&self) -> usize {
        self.batches - self.ticks_executed
    }

    /// Fraction of batch slots skipped (0 under the legacy loop).
    pub fn skip_rate(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ticks_skipped() as f64 / self.batches as f64
        }
    }

    /// Mean time reneged riders waited before giving up, in seconds —
    /// exact under the event engine, quantized up by ≤ Δ under the
    /// legacy reference loop.
    pub fn mean_renege_wait_s(&self) -> f64 {
        if self.reneges.is_empty() {
            return 0.0;
        }
        self.reneges.iter().map(RenegeRecord::wait_s).sum::<f64>() / self.reneges.len() as f64
    }

    /// Joins each assignment's idle-time *estimate* with the *realized*
    /// idle interval that followed it: for consecutive assignments
    /// `(i, i+1)` of the same driver, the estimate attached at `i`
    /// (made for the dropoff region of order `i`) is realized as order
    /// `i+1`'s `driver_idle_ms`. Returns `(estimated_s, real_s)` pairs —
    /// the data behind the paper's Table 3 and Figure 6.
    pub fn idle_estimate_pairs(&self) -> Vec<(f64, f64)> {
        self.idle_estimate_pairs_by_region()
            .into_iter()
            .map(|(_, e, r)| (e, r))
            .collect()
    }

    /// Like [`SimResult::idle_estimate_pairs`], tagged with the region in
    /// which the driver idled (the dropoff region of the first order of
    /// each pair) — the per-region breakdown of Figure 6.
    pub fn idle_estimate_pairs_by_region(&self) -> Vec<(RegionId, f64, f64)> {
        // Assignment indices per driver, in chronological order (the log
        // itself is chronological). BTreeMap: the pairs are emitted
        // per-driver in ascending driver id, so the output order is a
        // function of the log alone — a HashMap here leaked hash order
        // into the Figure 6 data.
        let mut per_driver: std::collections::BTreeMap<DriverId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, a) in self.assignments.iter().enumerate() {
            per_driver.entry(a.driver).or_default().push(i);
        }
        let mut pairs = Vec::new();
        for seq in per_driver.values() {
            for w in seq.windows(2) {
                let (cur, next) = (&self.assignments[w[0]], &self.assignments[w[1]]);
                if let Some(est) = cur.estimated_idle_s {
                    let real_ms = next.batch_ms - next.driver_idle_ms; // = availability start
                    debug_assert_eq!(real_ms, cur.dropoff_ms);
                    pairs.push((cur.dropoff_region, est, next.driver_idle_ms as f64 / 1000.0));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::RegionId;

    fn rec(
        driver: u32,
        batch_ms: Millis,
        idle_ms: Millis,
        dropoff_ms: Millis,
        est: Option<f64>,
    ) -> AssignmentRecord {
        AssignmentRecord {
            rider: RiderId(0),
            driver: DriverId(driver),
            batch_ms,
            pickup_ms: batch_ms,
            dropoff_ms,
            revenue: 1.0,
            driver_idle_ms: idle_ms,
            dropoff_region: RegionId(0),
            estimated_idle_s: est,
        }
    }

    #[test]
    fn idle_pairs_join_consecutive_assignments() {
        let result = SimResult {
            policy: "test".into(),
            total_revenue: 0.0,
            served: 2,
            reneged: 0,
            total_riders: 2,
            still_waiting: 0,
            batch_time: SummaryStats::new(),
            batches: 2,
            ticks_executed: 2,
            events_processed: 0,
            index_ops: 0,
            index_regions_dirtied: 0,
            index_rebuilds_avoided: 0,
            counts_ops: 0,
            counts_regions_dirtied: 0,
            views_ops: 0,
            views_entries_dirtied: 0,
            views_rebuilds_avoided: 0,
            assignments: vec![
                // Driver 0: drops off at 100_000, estimated idle 30 s,
                // next assignment at batch 140_000 → realized 40 s.
                rec(0, 10_000, 10_000, 100_000, Some(30.0)),
                rec(0, 140_000, 40_000, 200_000, Some(9.0)),
                // Driver 1: one assignment only → no pair.
                rec(1, 15_000, 15_000, 90_000, Some(5.0)),
            ],
            reneges: vec![],
        };
        let pairs = result.idle_estimate_pairs();
        assert_eq!(pairs, vec![(30.0, 40.0)]);
    }

    #[test]
    fn baselines_without_estimates_yield_no_pairs() {
        let result = SimResult {
            policy: "RAND".into(),
            total_revenue: 0.0,
            served: 2,
            reneged: 0,
            total_riders: 2,
            still_waiting: 0,
            batch_time: SummaryStats::new(),
            batches: 2,
            ticks_executed: 2,
            events_processed: 0,
            index_ops: 0,
            index_regions_dirtied: 0,
            index_rebuilds_avoided: 0,
            counts_ops: 0,
            counts_regions_dirtied: 0,
            views_ops: 0,
            views_entries_dirtied: 0,
            views_rebuilds_avoided: 0,
            assignments: vec![
                rec(0, 10_000, 10_000, 100_000, None),
                rec(0, 140_000, 40_000, 200_000, None),
            ],
            reneges: vec![],
        };
        assert!(result.idle_estimate_pairs().is_empty());
    }

    #[test]
    fn idle_pairs_are_emitted_in_driver_id_order() {
        // Assignments logged with interleaved driver ids: the per-region
        // pairs must come out grouped by ascending driver id regardless
        // of log interleaving — the ordering a HashMap grouping leaked
        // hash state into before the BTreeMap conversion.
        let result = SimResult {
            policy: "test".into(),
            total_revenue: 0.0,
            served: 6,
            reneged: 0,
            total_riders: 6,
            still_waiting: 0,
            batch_time: SummaryStats::new(),
            batches: 4,
            ticks_executed: 4,
            events_processed: 0,
            index_ops: 0,
            index_regions_dirtied: 0,
            index_rebuilds_avoided: 0,
            counts_ops: 0,
            counts_regions_dirtied: 0,
            views_ops: 0,
            views_entries_dirtied: 0,
            views_rebuilds_avoided: 0,
            assignments: vec![
                rec(7, 10_000, 10_000, 100_000, Some(30.0)),
                rec(2, 12_000, 12_000, 110_000, Some(20.0)),
                rec(5, 14_000, 14_000, 120_000, Some(10.0)),
                rec(2, 150_000, 40_000, 210_000, Some(1.0)),
                rec(7, 160_000, 60_000, 220_000, Some(2.0)),
                rec(5, 170_000, 50_000, 230_000, Some(3.0)),
            ],
            reneges: vec![],
        };
        let pairs = result.idle_estimate_pairs();
        // Driver 2's pair first, then 5's, then 7's.
        assert_eq!(pairs, vec![(20.0, 40.0), (10.0, 50.0), (30.0, 60.0)]);

        // Same join rebuilt through an unordered grouping yields the
        // same multiset — only the emission order was at stake.
        let mut by_driver: std::collections::HashMap<DriverId, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, a) in result.assignments.iter().enumerate() {
            by_driver.entry(a.driver).or_default().push(i);
        }
        let mut reference: Vec<(f64, f64)> = Vec::new();
        for seq in by_driver.values() {
            for w in seq.windows(2) {
                let (cur, next) = (&result.assignments[w[0]], &result.assignments[w[1]]);
                if let Some(est) = cur.estimated_idle_s {
                    reference.push((est, next.driver_idle_ms as f64 / 1000.0));
                }
            }
        }
        reference.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut sorted = pairs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(sorted, reference);
    }

    #[test]
    fn batch_time_mean_is_normalized_over_all_slots() {
        let mut bt = SummaryStats::new();
        bt.push(0.002);
        bt.push(0.004);
        let result = SimResult {
            policy: "x".into(),
            total_revenue: 0.0,
            served: 0,
            reneged: 0,
            total_riders: 0,
            still_waiting: 0,
            batch_time: bt,
            batches: 6,
            ticks_executed: 2,
            events_processed: 0,
            index_ops: 0,
            index_regions_dirtied: 0,
            index_rebuilds_avoided: 0,
            counts_ops: 0,
            counts_regions_dirtied: 0,
            views_ops: 0,
            views_entries_dirtied: 0,
            views_rebuilds_avoided: 0,
            assignments: vec![],
            reneges: vec![],
        };
        // 6 ms of policy time spread over 6 slots (4 skipped at zero
        // cost) → 1 ms per slot, 3 ms per executed batch.
        assert!((result.mean_batch_time_s() - 0.001).abs() < 1e-12);
        assert!((result.mean_executed_batch_time_s() - 0.003).abs() < 1e-12);
        assert_eq!(result.ticks_skipped(), 4);
    }

    #[test]
    fn service_rate_is_fraction_served() {
        let result = SimResult {
            policy: "x".into(),
            total_revenue: 0.0,
            served: 3,
            reneged: 1,
            total_riders: 4,
            still_waiting: 0,
            batch_time: SummaryStats::new(),
            batches: 0,
            ticks_executed: 0,
            events_processed: 0,
            index_ops: 0,
            index_regions_dirtied: 0,
            index_rebuilds_avoided: 0,
            counts_ops: 0,
            counts_regions_dirtied: 0,
            views_ops: 0,
            views_entries_dirtied: 0,
            views_rebuilds_avoided: 0,
            assignments: vec![],
            reneges: vec![],
        };
        assert_eq!(result.service_rate(), 0.75);
    }
}
