//! Parallel intra-interval event drains over the sharded queue.
//!
//! Between two batch timestamps the engine only *pops* events — the
//! dropoff/deadline arms never push, and cross-shard handoff (an
//! assignment pushing a dropoff into another region's shard) happens
//! only at batch timestamps, where dispatch is already a barrier. The
//! set of due events is therefore fixed the moment a drain starts, and
//! each shard's due prefix can be popped by a different worker with no
//! coordination beyond the barrier itself.
//!
//! Byte-identity with the sequential loop comes from *where* the split
//! is placed: workers only pop keys into per-worker buffers
//! ([`DrainOut`]); the merge concatenates the buffers and sorts — event
//! keys are globally unique, so the sort is a total order and the
//! merged stream is exactly the sequential pop order — and the caller
//! applies every state transition on the main thread, through the same
//! code the sequential loop runs. No counter, view slot layout or dirty
//! list can diverge, for any worker count.
//!
//! [`ShardSlots`] is the shared half (shard heaps behind mutexes, one
//! atomic head-time filter per shard, one output slot per worker);
//! [`ParallelQueue`] is the main-thread half owning the lazy tournament
//! over shard heads (the same structure as
//! [`ShardedEventQueue`](crate::shard::ShardedEventQueue)) plus the
//! persistent [`BroadcastPool`] the drains are broadcast on. Outside a
//! drain all locks are uncontended, so push/peek/pop stay cheap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use mrvd_stats::BroadcastPool;

use crate::shard::EventKey;
use crate::types::Millis;

/// One worker's drain output: the keys it popped (each shard's due
/// prefix, in shard order) and which shards it popped from (so the
/// merge can restore their tournament entries).
#[derive(Debug, Default)]
struct DrainOut {
    keys: Vec<EventKey>,
    touched: Vec<u32>,
}

/// Recover from a poisoned lock: shard heaps and drain buffers are
/// only mutated under short push/pop critical sections that cannot
/// panic halfway, so the state behind a poisoned lock is consistent.
fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The shared (worker-visible) half of the parallel event queue: the
/// per-shard heaps, a per-shard head-time filter, and one drain-output
/// slot per worker.
#[derive(Debug)]
pub(crate) struct ShardSlots {
    shards: Vec<Mutex<BinaryHeap<Reverse<EventKey>>>>,
    /// `head_time[s]` is exactly the time of shard `s`'s minimum key,
    /// or `u64::MAX` iff the shard is empty — maintained on every push,
    /// pop and drain. Lets a drain worker skip a shard with nothing due
    /// without taking its lock (`Relaxed` suffices: every cross-thread
    /// handoff is bracketed by the pool barrier's lock).
    head_time: Vec<AtomicU64>,
    outs: Vec<Mutex<DrainOut>>,
}

impl ShardSlots {
    /// Empty slots for `shards` shards drained by `workers` workers.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(shards: usize, workers: usize) -> Self {
        assert!(shards > 0, "ShardSlots: need at least one shard");
        assert!(workers > 0, "ShardSlots: need at least one worker");
        assert!(
            shards <= u32::MAX as usize,
            "ShardSlots: shard count overflows u32"
        );
        Self {
            shards: (0..shards).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            head_time: (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            outs: (0..workers)
                .map(|_| Mutex::new(DrainOut::default()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker `w`'s half of a drain round: pop every key `< cutoff`
    /// from the worker's static contiguous shard block into its output
    /// slot. Run by every pool worker under one broadcast; the blocks
    /// partition the shards, so each shard is drained exactly once.
    pub fn drain_worker(&self, w: usize, cutoff: EventKey) {
        let (n, wk) = (self.shards.len(), self.outs.len());
        // lint:allow(C002): w < workers by construction — BroadcastPool runs one job per worker id 0..workers == outs.len()
        let mut out = relock(self.outs[w].lock());
        debug_assert!(out.keys.is_empty() && out.touched.is_empty());
        let (lo, hi) = (w * n / wk, (w + 1) * n / wk);
        let block = self
            .shards
            .iter()
            .zip(&self.head_time)
            .enumerate()
            .skip(lo)
            .take(hi - lo);
        for (s, (shard, head)) in block {
            // `head_time` is exact, so a strictly-later head has
            // nothing due; an equal-time head still gets checked
            // against the full key under the lock.
            if head.load(Ordering::Relaxed) > cutoff.0 {
                continue;
            }
            let mut heap = relock(shard.lock());
            let before = out.keys.len();
            while let Some(&Reverse(key)) = heap.peek() {
                if key >= cutoff {
                    break;
                }
                heap.pop();
                out.keys.push(key);
            }
            if out.keys.len() > before {
                head.store(
                    heap.peek().map_or(u64::MAX, |&Reverse(k)| k.0),
                    Ordering::Relaxed,
                );
                // lint:allow(C002): s < shards.len() <= u32::MAX, asserted in ShardSlots::new
                out.touched.push(s as u32);
            }
        }
    }
}

/// The main-thread half of the parallel event queue (see module docs):
/// the lazy tournament over shard heads, the event count, and the
/// persistent worker pool drains are broadcast on. Exposes the same
/// push/peek/pop surface as the sequential layouts — uncontended locks
/// outside a drain — plus the batched [`ParallelQueue::drain_due`].
pub(crate) struct ParallelQueue<'p> {
    slots: &'p ShardSlots,
    pool: BroadcastPool<EventKey>,
    /// Tournament heap of `(time, priority, id, shard)` shard-head
    /// candidates, lazily invalidated exactly like
    /// [`ShardedEventQueue`](crate::shard::ShardedEventQueue)'s.
    head: BinaryHeap<Reverse<(Millis, u8, u32, u32)>>,
    len: usize,
    /// Merge scratch, reused across drains.
    merged: Vec<EventKey>,
}

impl<'p> ParallelQueue<'p> {
    /// A queue over `slots`, draining on `pool` (whose workers must be
    /// running `slots.drain_worker`).
    pub fn new(slots: &'p ShardSlots, pool: BroadcastPool<EventKey>) -> Self {
        Self {
            slots,
            pool,
            head: BinaryHeap::new(),
            len: 0,
            merged: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slots.num_shards()
    }

    /// Queues `key` on `shard`.
    pub fn push(&mut self, key: EventKey, shard: usize) {
        let mut heap = relock(self.slots.shards[shard].lock());
        heap.push(Reverse(key));
        let is_head = heap.peek() == Some(&Reverse(key));
        drop(heap);
        if is_head {
            self.slots.head_time[shard].store(key.0, Ordering::Relaxed);
            self.head.push(Reverse((key.0, key.1, key.2, shard as u32)));
        }
        self.len += 1;
    }

    /// The globally smallest queued key, discarding stale tournament
    /// entries on the way.
    pub fn peek(&mut self) -> Option<EventKey> {
        while let Some(&Reverse((t, pri, id, s))) = self.head.peek() {
            // lint:allow(C002): tournament entries are only ever built from in-range shard indices (push/pop/drain_due)
            let heap = relock(self.slots.shards[s as usize].lock());
            if heap.peek() == Some(&Reverse((t, pri, id))) {
                return Some((t, pri, id));
            }
            drop(heap);
            self.head.pop();
        }
        debug_assert_eq!(self.len, 0, "live events but an empty tournament");
        None
    }

    /// Removes and returns the globally smallest queued key.
    pub fn pop(&mut self) -> Option<EventKey> {
        let key = self.peek()?;
        // `peek` left a validated entry on top of the tournament.
        let Some(Reverse((_, _, _, s))) = self.head.pop() else {
            unreachable!("peek returned a key but the tournament is empty");
        };
        let mut heap = relock(self.slots.shards[s as usize].lock());
        let popped = heap.pop();
        debug_assert_eq!(popped, Some(Reverse(key)));
        let new_head = heap.peek().map(|&Reverse(k)| k);
        drop(heap);
        self.slots.head_time[s as usize]
            .store(new_head.map_or(u64::MAX, |k| k.0), Ordering::Relaxed);
        if let Some((t, pri, id)) = new_head {
            self.head.push(Reverse((t, pri, id, s)));
        }
        self.len -= 1;
        Some(key)
    }

    /// Pops every key `< cutoff` and applies them in global key order:
    /// the due prefixes of all shards are drained concurrently by the
    /// worker pool, merged by sort (keys are globally unique, so the
    /// sorted concatenation *is* the sequential pop order), and then
    /// `apply` runs on the calling thread — the drain/apply split that
    /// keeps results byte-identical for any worker count.
    pub fn drain_due(&mut self, cutoff: EventKey, apply: &mut dyn FnMut(EventKey)) {
        // Nothing due: skip the broadcast entirely (the common case —
        // most inter-batch intervals see only a handful of events, and
        // quiet ones none at all).
        match self.peek() {
            Some(k) if k < cutoff => {}
            _ => return,
        }
        self.pool.run(cutoff);
        let mut merged = std::mem::take(&mut self.merged);
        debug_assert!(merged.is_empty());
        for out in &self.slots.outs {
            let mut o = relock(out.lock());
            merged.append(&mut o.keys);
            for &s in &o.touched {
                // Restore the drained shard's tournament entry; the
                // pre-drain entry (now stale) is lazily discarded by a
                // later peek, like any superseded duplicate.
                // lint:allow(C002): `touched` holds indices of this queue's own shards, recorded by drain_worker
                let heap = relock(self.slots.shards[s as usize].lock());
                if let Some(&Reverse((t, pri, id))) = heap.peek() {
                    self.head.push(Reverse((t, pri, id, s)));
                }
            }
            o.touched.clear();
        }
        merged.sort_unstable();
        debug_assert!(
            !merged.is_empty(),
            "peek saw a due key but no worker popped it"
        );
        self.len -= merged.len();
        for &key in &merged {
            apply(key);
        }
        merged.clear();
        self.merged = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedEventQueue;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Runs `f` against a live `ParallelQueue` with real pool workers.
    fn with_queue<R>(
        shards: usize,
        workers: usize,
        f: impl FnOnce(&mut ParallelQueue<'_>) -> R,
    ) -> R {
        let slots = ShardSlots::new(shards, workers);
        std::thread::scope(|scope| {
            let pool = BroadcastPool::new(scope, workers, |w, cutoff| {
                slots.drain_worker(w, cutoff);
            });
            let mut q = ParallelQueue::new(&slots, pool);
            f(&mut q)
        })
    }

    #[test]
    fn empty_queue_peeks_and_pops_none() {
        with_queue(4, 2, |q| {
            assert_eq!(q.peek(), None);
            assert_eq!(q.pop(), None);
            assert_eq!(q.num_shards(), 4);
            // A drain on an empty queue is a no-op (and no broadcast).
            q.drain_due((u64::MAX, u8::MAX, u32::MAX), &mut |_| {
                panic!("applied an event from an empty queue")
            });
        });
    }

    #[test]
    fn drains_apply_in_global_key_order() {
        // Keys interleave across shards and workers: shard 0 holds
        // times {0,2,4,...}, shard 1 {1,3,5,...}, and the two shards
        // land on different workers — the merge must interleave them
        // back into strict time order.
        with_queue(2, 2, |q| {
            for t in 0..20u64 {
                q.push((t, 0, t as u32), (t % 2) as usize);
            }
            let mut seen = Vec::new();
            q.drain_due((10, 0, 0), &mut |k| seen.push(k));
            assert_eq!(
                seen,
                (0..10u64).map(|t| (t, 0, t as u32)).collect::<Vec<_>>()
            );
            // The remainder is still there, in order, via plain pops.
            for t in 10..20u64 {
                assert_eq!(q.pop(), Some((t, 0, t as u32)));
            }
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn drain_cutoff_is_exclusive_and_priority_aware() {
        with_queue(3, 3, |q| {
            q.push((5, 0, 1), 0); // dropoff at the cutoff time: due
            q.push((5, 2, 2), 1); // deadline at the cutoff time: not due
            q.push((4, 2, 3), 2); // deadline strictly before: due
            let mut seen = Vec::new();
            q.drain_due((5, 2, 0), &mut |k| seen.push(k));
            assert_eq!(seen, vec![(4, 2, 3), (5, 0, 1)]);
            assert_eq!(q.pop(), Some((5, 2, 2)));
        });
    }

    #[test]
    fn every_shard_is_drained_exactly_once_for_any_worker_count() {
        // More workers than shards, fewer, equal, and one: the static
        // block partition must cover every shard exactly once.
        for (shards, workers) in [(1, 1), (5, 2), (4, 4), (3, 8), (7, 3)] {
            with_queue(shards, workers, |q| {
                for s in 0..shards {
                    q.push((s as u64, 0, s as u32), s);
                }
                let mut seen = Vec::new();
                q.drain_due((u64::MAX, 0, 0), &mut |k| seen.push(k));
                assert_eq!(
                    seen,
                    (0..shards)
                        .map(|s| (s as u64, 0, s as u32))
                        .collect::<Vec<_>>(),
                    "shards={shards} workers={workers}"
                );
                assert_eq!(q.pop(), None);
            });
        }
    }

    proptest! {
        /// The tentpole equivalence at the queue level: under random
        /// interleavings of pushes, pops and drains, the parallel queue
        /// applies exactly the sequence a single global heap would pop,
        /// for any shard count, worker count and shard assignment.
        #[test]
        fn matches_single_heap_under_random_ops(
            seed in 0u64..30,
            shards in 1usize..7,
            workers in 1usize..5,
            n_ops in 1usize..120,
        ) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD3A1);
            with_queue(shards, workers, |q| {
                let mut model = ShardedEventQueue::new(1);
                let mut next_id = 0u32;
                for _ in 0..n_ops {
                    match rng.gen_range(0u32..4) {
                        0 | 1 => {
                            let key = (rng.gen_range(0u64..40), rng.gen_range(0u8..3), next_id);
                            next_id += 1;
                            model.push(key, 0);
                            q.push(key, rng.gen_range(0..shards));
                        }
                        2 => {
                            prop_assert_eq!(q.peek(), model.peek());
                            prop_assert_eq!(q.pop(), model.pop());
                        }
                        _ => {
                            let cutoff =
                                (rng.gen_range(0u64..45), rng.gen_range(0u8..3), 0u32);
                            let mut got = Vec::new();
                            q.drain_due(cutoff, &mut |k| got.push(k));
                            let mut want = Vec::new();
                            while model.peek().is_some_and(|k| k < cutoff) {
                                want.push(model.pop().expect("peeked"));
                            }
                            prop_assert_eq!(got, want);
                        }
                    }
                }
                while let Some(k) = q.pop() {
                    prop_assert_eq!(Some(k), model.pop());
                }
                prop_assert!(model.peek().is_none());
            });
        }
    }
}
