//! The simulation engine: a discrete-event core behind the paper's
//! batch-dispatch semantics (Algorithm 1).
//!
//! The paper's outer loop wakes every Δ and re-scans the world; this
//! engine instead keeps one time-ordered event queue — rider arrivals,
//! rider deadlines (reneges), dropoffs and shift changes — and applies
//! every state transition at its *true* event time. The dispatch policy
//! is still invoked only at batch timestamps `0, Δ, 2Δ, …` (the paper's
//! semantics), but batch slots where nothing changed since the previous
//! invocation are skipped outright, so an idle overnight hour costs a
//! heap peek instead of 1200 policy calls, and reneges are charged at
//! the rider's exact `deadline_ms` rather than the next tick (the
//! quantity the queueing model's abandonment dynamics depend on).
//!
//! [`Simulator::run_scheduled_reference`] (in `reference.rs`) retains
//! the literal per-Δ loop for differential testing: on Δ-aligned inputs
//! both engines produce identical [`SimResult`]s, and a test battery
//! plus proptests pin that equivalence.

use mrvd_demand::TripRecord;
use mrvd_spatial::{Grid, Point, RegionId, RegionIndex, TravelModel};
use mrvd_stats::{BroadcastPool, SummaryStats};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::counts::RegionCounts;
use crate::fleet::{Fleet, Tag};
use crate::metrics::{AssignmentRecord, RenegeRecord, SimResult};
use crate::parallel::{ParallelQueue, ShardSlots};
use crate::policy::{AvailableDriver, BatchContext, BusyDriver, DispatchPolicy, WaitingRider};
use crate::schedule::DriverSchedule;
use crate::shard::{EventKey, EventQueue, ShardedEventQueue};
use crate::types::{DriverId, Millis, RiderId};
use crate::views::BatchViews;

/// Simulation parameters (defaults follow the paper's Table 2 defaults:
/// Δ = 3 s, τ = 180 s base wait + U[1 s, 10 s] noise, one full day).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Batch interval Δ in ms.
    pub batch_interval_ms: Millis,
    /// Base pickup waiting time τ in ms.
    pub base_wait_ms: Millis,
    /// Uniform deadline noise range `[lo, hi]` in ms (the paper's
    /// `τ' ∈ [1, 10]` seconds).
    pub wait_noise_ms: (Millis, Millis),
    /// Simulation horizon in ms (a day by default).
    pub horizon_ms: Millis,
    /// Seed for the deadline noise.
    pub seed: u64,
    /// Event-queue shard count for the engine's event core: `0` picks a
    /// count automatically from the grid's region count
    /// ([`ShardedEventQueue::auto_shard_count`]), `1` forces the single
    /// global heap (the pre-shard reference layout), and `n > 1`
    /// partitions events into `n` contiguous region bands. Results are
    /// bit-identical for every value: event keys are globally unique,
    /// so the tournament over shard heads reproduces the single-queue
    /// pop order exactly.
    pub event_shards: usize,
    /// Worker threads draining shard events between batch barriers:
    /// `1` (the default) keeps the sequential loop, `0` asks the OS
    /// (`std::thread::available_parallelism`), and `n > 1` spawns a
    /// persistent pool of `n` workers for the run — always clamped to
    /// the shard count, so the single-heap layout (`event_shards = 1`)
    /// runs sequentially regardless. Results are bit-identical for
    /// every value: workers only pop keys into per-worker buffers, the
    /// barrier merge sorts them back into the exact sequential pop
    /// order, and every state transition is applied on the calling
    /// thread (see `parallel.rs`).
    pub workers: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            batch_interval_ms: 3_000,
            base_wait_ms: 180_000,
            wait_noise_ms: (1_000, 10_000),
            horizon_ms: mrvd_demand::DAY_MS,
            seed: 0x51A1,
            event_shards: 0,
            workers: 1,
        }
    }
}

/// Internal driver state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DriverState {
    Available {
        pos: Point,
        since_ms: Millis,
    },
    Busy {
        until_ms: Millis,
        dropoff: Point,
    },
    /// Off shift (never shown to policies); remembers where the driver
    /// parked so a later shift change can bring them back there.
    Offline {
        pos: Point,
    },
}

/// A rider with the realized pickup deadline.
pub(crate) struct RiderInfo {
    pub trip: TripRecord,
    pub deadline_ms: Millis,
}

// Within-timestamp event order, matching the legacy loop's within-tick
// processing: dropoffs free drivers first, then shift changes see the
// updated fleet, then the batch runs. A deadline at exactly the batch
// timestamp has *not* passed (the loop reneges on `deadline < now`), so
// deadline events sort after everything else at their timestamp and are
// only applied once time moves strictly past them.
const PRI_DROPOFF: u8 = 0;
const PRI_SHIFT: u8 = 1;
const PRI_DEADLINE: u8 = 2;

/// Reconciles the active fleet with a shift-change target, exactly as
/// the legacy per-batch scan did: ramp-ups cancel pending retirements
/// first, then wake pooled offline drivers in pool order; ramp-downs
/// park idle drivers from the pool's tail and mark busy ones (also from
/// the tail) to retire at their next dropoff. Availability transitions
/// are mirrored into the live candidate index, the live per-region
/// counts and the live batch views (a cancelled retirement re-enters the
/// rejoin multiset and the busy view, a fresh one leaves them). Returns
/// whether any driver actually moved state.
fn reconcile_fleet(
    grid: &Grid,
    fleet: &mut Fleet,
    avail_index: &mut RegionIndex<DriverId>,
    counts: &mut RegionCounts,
    views: &mut BatchViews,
    target: usize,
    now: Millis,
) -> bool {
    let online = fleet.online();
    let mut moved = false;
    if online < target {
        let mut need = target - online;
        for i in 0..fleet.len() {
            if need == 0 {
                break;
            }
            if fleet.is_retiring(i) {
                fleet.set_retiring(i, false);
                debug_assert_eq!(
                    fleet.tag(i),
                    Tag::Busy,
                    "retiring flag on a non-busy driver"
                );
                let (dropoff, until_ms) = (fleet.pos(i), fleet.time(i));
                counts.add_rejoining(grid.region_of(dropoff), until_ms);
                views.add_busy(BusyDriver {
                    id: DriverId(i as u32),
                    dropoff_ms: until_ms,
                    dropoff_pos: dropoff,
                });
                need -= 1;
                moved = true;
            }
        }
        for i in 0..fleet.len() {
            if need == 0 {
                break;
            }
            if fleet.tag(i) == Tag::Offline {
                let pos = fleet.pos(i);
                fleet.set_available(i, pos, now);
                avail_index.insert(DriverId(i as u32), pos);
                counts.add_available(grid.region_of(pos));
                views.add_available(AvailableDriver {
                    id: DriverId(i as u32),
                    pos,
                    available_since_ms: now,
                });
                need -= 1;
                moved = true;
            }
        }
    } else if online > target {
        let mut excess = online - target;
        for i in (0..fleet.len()).rev() {
            if excess == 0 {
                break;
            }
            if fleet.tag(i) == Tag::Available {
                let pos = fleet.pos(i);
                fleet.set_offline(i);
                let removed = avail_index.remove_at(DriverId(i as u32), pos);
                debug_assert_eq!(removed, 1, "index out of sync at shift-off");
                counts.remove_available(grid.region_of(pos));
                views.remove_available(DriverId(i as u32));
                excess -= 1;
                moved = true;
            }
        }
        for i in (0..fleet.len()).rev() {
            if excess == 0 {
                break;
            }
            if fleet.tag(i) == Tag::Busy && !fleet.is_retiring(i) {
                fleet.set_retiring(i, true);
                // A retiring driver will not rejoin: it leaves the
                // busy view and the rejoin multiset together.
                counts.remove_rejoining(grid.region_of(fleet.pos(i)), fleet.time(i));
                views.remove_busy(DriverId(i as u32));
                excess -= 1;
                moved = true;
            }
        }
    }
    moved
}

/// The simulator: binds a travel model, a grid and a config; `run`
/// executes one day for one policy.
pub struct Simulator<'a> {
    config: SimConfig,
    travel: &'a dyn TravelModel,
    grid: &'a Grid,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator.
    ///
    /// # Panics
    /// Panics on a zero batch interval or zero horizon.
    pub fn new(config: SimConfig, travel: &'a dyn TravelModel, grid: &'a Grid) -> Self {
        assert!(
            config.batch_interval_ms > 0,
            "Simulator: Δ must be positive"
        );
        assert!(config.horizon_ms > 0, "Simulator: horizon must be positive");
        assert!(
            config.wait_noise_ms.0 <= config.wait_noise_ms.1,
            "Simulator: noise range inverted"
        );
        Self {
            config,
            travel,
            grid,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The travel model.
    pub(crate) fn travel(&self) -> &'a dyn TravelModel {
        self.travel
    }

    /// The region partition.
    pub(crate) fn grid(&self) -> &'a Grid {
        self.grid
    }

    /// Validates run inputs (shared with the reference loop).
    ///
    /// # Panics
    /// Panics on unsorted/out-of-horizon trips or an oversized schedule.
    pub(crate) fn assert_inputs(
        &self,
        trips: &[TripRecord],
        driver_pool: &[Point],
        schedule: &DriverSchedule,
    ) {
        assert!(
            schedule.max_drivers() <= driver_pool.len(),
            "Simulator: schedule targets {} drivers but the pool holds {}",
            schedule.max_drivers(),
            driver_pool.len()
        );
        assert!(
            trips.windows(2).all(|w| w[0].request_ms <= w[1].request_ms),
            "Simulator: trips must be sorted by request time"
        );
        assert!(
            trips
                .last()
                .is_none_or(|t| t.request_ms < self.config.horizon_ms),
            "Simulator: trips beyond the horizon"
        );
    }

    /// Realizes every rider's pickup deadline: request + base +
    /// U[noise], drawn from the config seed. The event core keeps rider
    /// state struct-of-arrays — this deadline column parallel to the
    /// caller's trip slice plus an assigned-flag column — so deadline
    /// scans never drag trip payloads through cache (and a 1M-rider day
    /// never materializes a second copy of its trips).
    pub(crate) fn deadline_table(&self, trips: &[TripRecord]) -> Vec<Millis> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let (noise_lo, noise_hi) = self.config.wait_noise_ms;
        trips
            .iter()
            .map(|t| t.request_ms + self.config.base_wait_ms + rng.gen_range(noise_lo..=noise_hi))
            .collect()
    }

    /// Builds the array-of-structs rider table for the reference loop,
    /// from the same RNG stream as [`Simulator::deadline_table`] so both
    /// engines see identical deadlines.
    pub(crate) fn rider_table(&self, trips: &[TripRecord]) -> Vec<RiderInfo> {
        trips
            .iter()
            .zip(self.deadline_table(trips))
            .map(|(&trip, deadline_ms)| RiderInfo { trip, deadline_ms })
            .collect()
    }

    /// Runs one day: `trips` must be sorted by `request_ms` and fall
    /// within the horizon; `driver_positions` seed the fleet.
    ///
    /// # Panics
    /// Panics if trips are unsorted/out of horizon, or if the policy
    /// returns an invalid assignment (unknown ids, double bookings, or a
    /// pair violating the pickup deadline).
    pub fn run(
        &self,
        trips: &[TripRecord],
        driver_positions: &[Point],
        policy: &mut dyn DispatchPolicy,
    ) -> SimResult {
        self.run_scheduled(
            trips,
            driver_positions,
            &DriverSchedule::constant(driver_positions.len()),
            policy,
        )
    }

    /// Runs one day with a time-varying fleet on the event core:
    /// `driver_pool` holds the spawn positions of every driver that may
    /// ever be on shift, and `schedule` gives the target fleet size over
    /// time. Excess drivers retire at shift changes — idle drivers
    /// immediately, busy drivers at their next dropoff (a retiring
    /// driver disappears from the policy's busy view since it will not
    /// rejoin). A constant schedule over the full pool reproduces
    /// [`Simulator::run`] exactly.
    ///
    /// State transitions (admissions, reneges, dropoffs, shift changes)
    /// are applied at their true event times; the policy runs at batch
    /// timestamps, and quiescent batch slots are skipped (see
    /// [`DispatchPolicy::invoke_every_batch`] for the exactness
    /// contract). [`SimResult::ticks_executed`] and
    /// [`SimResult::events_processed`] expose the engine counters.
    ///
    /// # Panics
    /// Panics under the same conditions as [`Simulator::run`], or if the
    /// schedule ever targets more drivers than the pool holds.
    pub fn run_scheduled(
        &self,
        trips: &[TripRecord],
        driver_pool: &[Point],
        schedule: &DriverSchedule,
        policy: &mut dyn DispatchPolicy,
    ) -> SimResult {
        self.assert_inputs(trips, driver_pool, schedule);
        let num_shards = match self.config.event_shards {
            0 => ShardedEventQueue::auto_shard_count(self.grid.num_regions()),
            n => n,
        };
        let workers = self.resolve_workers(num_shards);
        if workers > 1 {
            // The parallel layout: shard heaps shared with a persistent
            // drain pool, spawned once here and reused across every
            // barrier of the run (tens of thousands on a city-scale
            // day). Dropping the queue at the end of `run_core` shuts
            // the pool down; the scope joins the workers.
            let slots = ShardSlots::new(num_shards, workers);
            std::thread::scope(|scope| {
                let pool = BroadcastPool::new(scope, workers, |w, cutoff: EventKey| {
                    slots.drain_worker(w, cutoff);
                });
                let events = EventQueue::Parallel(ParallelQueue::new(&slots, pool));
                self.run_core(trips, driver_pool, schedule, policy, events)
            })
        } else {
            self.run_core(
                trips,
                driver_pool,
                schedule,
                policy,
                EventQueue::new(num_shards),
            )
        }
    }

    /// Resolves [`SimConfig::workers`] against the shard layout: `0`
    /// asks the OS, explicit counts are taken as-is, and the result is
    /// clamped to the shard count (a worker drains whole shards, and
    /// the single-heap layout always runs sequentially).
    fn resolve_workers(&self, num_shards: usize) -> usize {
        let requested = match self.config.workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        requested.min(num_shards)
    }

    /// The engine loop proper, generic over the event-queue layout.
    fn run_core(
        &self,
        trips: &[TripRecord],
        driver_pool: &[Point],
        schedule: &DriverSchedule,
        policy: &mut dyn DispatchPolicy,
        mut events: EventQueue<'_>,
    ) -> SimResult {
        let teleport = policy.teleports_pickup();
        let every_batch = policy.invoke_every_batch();
        // Rider state is struct-of-arrays: the caller's trip slice plus
        // this parallel deadline column (and the assigned-flag column
        // below) — no per-rider struct is ever materialized here.
        let deadlines = self.deadline_table(trips);
        let delta = self.config.batch_interval_ms;
        let horizon = self.config.horizon_ms;

        // Drivers up to the initial target start on shift; the rest of
        // the pool waits offline at its spawn position. The fleet is
        // struct-of-arrays (see `fleet.rs`).
        let initial = schedule.target_at(0);
        let mut fleet = Fleet::new(driver_pool, initial);
        // The live candidate index: exactly the available drivers, kept
        // in sync incrementally at true event times (assignment, dropoff,
        // shift on/off) instead of being rebuilt by every policy every
        // batch. Policies reach it through `BatchContext::avail_index`.
        let mut avail_index: RegionIndex<DriverId> = RegionIndex::new(self.grid.clone());
        // Live per-region batch-state counts — waiting riders, available
        // drivers, rejoin-time multisets — maintained at the same event
        // times as the index and handed to policies through
        // `BatchContext::region_counts` so rate estimation never re-scans
        // state that did not change.
        let mut counts = RegionCounts::new(self.grid.num_regions());
        // The live batch views — the exact waiting / available / busy
        // slices every policy sees — maintained at the same event times
        // as the index and the counts, so an executed batch hands the
        // policy its context without a single full rider or fleet scan.
        // Slots are stable under `swap_remove`, so the slices are *not*
        // id-sorted; every policy's output is id-tie-broken and hence
        // invariant to the order (the equivalence batteries pin this).
        let mut views = BatchViews::new();
        for i in 0..fleet.len() {
            if fleet.tag(i) == Tag::Available {
                let pos = fleet.pos(i);
                avail_index.insert(DriverId(i as u32), pos);
                counts.add_available(self.grid.region_of(pos));
                views.add_available(AvailableDriver {
                    id: DriverId(i as u32),
                    pos,
                    available_since_ms: 0,
                });
            }
        }
        let phases = schedule.phases();
        // Phase 0 seeded the fleet above; later phases fire as events.
        let mut next_phase = 1usize;

        // The event queue: `(time, priority, payload)` min-queue holding
        // dropoffs (payload = driver index) and deadlines (payload =
        // rider index). Arrivals ride the sorted trip slice through
        // `next_trip`, shift changes ride the sorted phase list through
        // `next_phase`; both merge into the same time order below.
        // Events are partitioned into per-region-band shards — dropoffs
        // by dropoff region, deadlines by pickup region — with a
        // tournament head reproducing the single-queue pop order exactly
        // (see `shard.rs`; `event_shards = 1` keeps the single heap, and
        // `workers > 1` drains the shards on a worker pool between
        // barriers, see `parallel.rs`). The layout was resolved by
        // `run_scheduled`; it arrives here as the `events` parameter.
        let num_regions = self.grid.num_regions();
        let num_shards = events.num_shards();
        let shard_of = |r: RegionId| r.idx() * num_shards / num_regions;

        let mut next_trip = 0usize;
        let mut served = 0usize;
        let mut total_revenue = 0.0f64;
        let mut assignments: Vec<AssignmentRecord> = Vec::new();
        let mut reneges: Vec<RenegeRecord> = Vec::new();
        let mut batch_time = SummaryStats::new();
        let mut ticks_executed = 0usize;
        let mut events_processed = 0usize;
        let mut index_regions_dirtied = 0usize;
        let mut index_rebuilds_avoided = 0usize;
        let mut counts_regions_dirtied = 0usize;
        let mut views_entries_dirtied = 0usize;
        let mut views_rebuilds_avoided = 0usize;
        // Scratch flags for validation.
        let mut rider_assigned = vec![false; trips.len()];
        let mut driver_taken = vec![false; fleet.len()];

        let mut tick: Millis = 0;
        // Any state change since the last executed batch.
        let mut changed = false;
        // The last executed batch applied ≥ 1 assignment (candidate
        // budgets may then surface previously truncated pairs, so the
        // next slot must run even without new events).
        let mut last_assigned = false;

        while tick < horizon {
            // 1. Admit riders whose request time has passed, scheduling
            // each one's exact-deadline renege event.
            while next_trip < trips.len() && trips[next_trip].request_ms <= tick {
                let t = &trips[next_trip];
                let pickup_region = self.grid.region_of(t.pickup);
                counts.add_waiting(pickup_region);
                views.add_waiting(WaitingRider {
                    id: RiderId(next_trip as u32),
                    pickup: t.pickup,
                    dropoff: t.dropoff,
                    request_ms: t.request_ms,
                    deadline_ms: deadlines[next_trip],
                });
                events.push(
                    (deadlines[next_trip], PRI_DEADLINE, next_trip as u32),
                    shard_of(pickup_region),
                );
                next_trip += 1;
                events_processed += 1;
                changed = true;
            }
            // 2. Apply dropoffs, shift changes and passed deadlines in
            // timestamp order, each at its true event time. An event is
            // due at `tick` iff its key sorts below `(tick,
            // PRI_DEADLINE, 0)`: dropoffs and shift changes at `t <=
            // tick` (priorities 0 and 1 sort below PRI_DEADLINE at
            // equal time), deadlines strictly before `tick` (at `t ==
            // tick` a deadline key never sorts below the cutoff). Each
            // due shift phase is a sub-barrier: queue events below the
            // phase key drain first, then the fleet reconciles, then
            // the next stretch drains. Queue processing between
            // sub-barriers never pushes events, so the due set is fixed
            // when a drain starts — what lets the parallel layout drain
            // shards concurrently and merge at the barrier.
            let final_cutoff: EventKey = (tick, PRI_DEADLINE, 0);
            loop {
                let phase = phases
                    .get(next_phase)
                    .map(|&(from, target)| ((from, PRI_SHIFT, next_phase as u32), target))
                    .filter(|&(key, _)| key < final_cutoff);
                let cutoff = phase.map_or(final_cutoff, |(key, _)| key);
                events.drain_due(cutoff, &mut |(t, pri, id)| {
                    if pri == PRI_DROPOFF {
                        let d = id as usize;
                        assert_eq!(
                            fleet.tag(d),
                            Tag::Busy,
                            "dropoff event for a non-busy driver"
                        );
                        let dropoff = fleet.pos(d);
                        debug_assert_eq!(fleet.time(d), t);
                        if fleet.is_retiring(d) {
                            // Already out of the rejoin multiset since the
                            // retirement was marked.
                            fleet.set_retiring(d, false);
                            fleet.set_offline(d);
                        } else {
                            avail_index.insert(DriverId(id), dropoff);
                            let r = self.grid.region_of(dropoff);
                            counts.remove_rejoining(r, t);
                            counts.add_available(r);
                            views.remove_busy(DriverId(id));
                            views.add_available(AvailableDriver {
                                id: DriverId(id),
                                pos: dropoff,
                                available_since_ms: t,
                            });
                            fleet.set_available(d, dropoff, t);
                        }
                        events_processed += 1;
                        changed = true;
                    } else {
                        debug_assert_eq!(pri, PRI_DEADLINE, "unexpected event priority");
                        let ri = id as usize;
                        // Deadlines of assigned riders are stale no-ops.
                        if !rider_assigned[ri] {
                            views.remove_waiting(RiderId(id));
                            counts.remove_waiting(self.grid.region_of(trips[ri].pickup));
                            reneges.push(RenegeRecord {
                                rider: RiderId(id),
                                request_ms: trips[ri].request_ms,
                                renege_ms: t,
                            });
                            events_processed += 1;
                            changed = true;
                        }
                    }
                });
                let Some(((t, _, _), target)) = phase else {
                    break;
                };
                next_phase += 1;
                changed |= reconcile_fleet(
                    self.grid,
                    &mut fleet,
                    &mut avail_index,
                    &mut counts,
                    &mut views,
                    target,
                    t,
                );
                events_processed += 1;
            }

            // 3. Run the batch — unless nothing changed since the last
            // one and no refill is pending, in which case this slot is
            // skipped without touching the policy.
            if changed || last_assigned || (every_batch && !views.waiting().is_empty()) {
                // The live views *are* the batch context — no rider or
                // fleet scan happens here. Settle the change tracking of
                // all three live structures for this batch: the dirtied
                // regions/entries are the state that actually changed
                // since the previous policy invocation, and handing each
                // structure over is one rebuild the batch skips.
                debug_assert_eq!(
                    avail_index.len(),
                    views.available().len(),
                    "live index out of sync with the availability view"
                );
                index_regions_dirtied += avail_index.dirty_regions().len();
                avail_index.clear_dirty();
                index_rebuilds_avoided += 1;
                debug_assert_eq!(
                    counts.totals(),
                    (
                        views.waiting().len(),
                        views.available().len(),
                        views.busy().len()
                    ),
                    "live counts out of sync with the batch views"
                );
                counts_regions_dirtied += counts.dirty_regions().len();
                counts.clear_dirty();
                views_entries_dirtied += views.entries_dirtied();
                views.clear_dirty();
                views_rebuilds_avoided += 1;
                let ctx = BatchContext {
                    now_ms: tick,
                    riders: views.waiting(),
                    drivers: views.available(),
                    busy: views.busy(),
                    travel: self.travel,
                    grid: self.grid,
                    avail_index: Some(&avail_index),
                    region_counts: Some(&counts),
                    views: Some(&views),
                };

                // lint:allow(D002): feeds only the batch_time telemetry column, never simulated results
                let t0 = std::time::Instant::now();
                let batch_assignments = policy.assign(&ctx);
                batch_time.push(t0.elapsed().as_secs_f64());
                ticks_executed += 1;

                // Validate and apply.
                for a in &batch_assignments {
                    let ri = a.rider.0;
                    assert!(
                        (ri as usize) < trips.len()
                            && views.waiting_slot(a.rider).is_some()
                            && !rider_assigned[ri as usize],
                        "policy assigned unknown or unavailable rider {}",
                        a.rider
                    );
                    let di = a.driver.0 as usize;
                    assert!(
                        di < fleet.len(),
                        "policy assigned unknown driver {}",
                        a.driver
                    );
                    match fleet.tag(di) {
                        Tag::Available => {}
                        Tag::Busy => panic!("policy assigned busy driver {}", a.driver),
                        Tag::Offline => panic!("policy assigned offline driver {}", a.driver),
                    }
                    let (pos, since_ms) = (fleet.pos(di), fleet.time(di));
                    assert!(
                        !driver_taken[di],
                        "policy assigned driver {} twice in one batch",
                        a.driver
                    );
                    driver_taken[di] = true;
                    let trip = &trips[ri as usize];
                    let deadline_ms = deadlines[ri as usize];
                    let pickup_ms = if teleport {
                        tick
                    } else {
                        tick + self.travel.travel_time_ms(pos, trip.pickup)
                    };
                    assert!(
                        pickup_ms <= deadline_ms,
                        "policy violated the pickup deadline: pickup at {pickup_ms}, deadline {deadline_ms}"
                    );
                    let ride_ms = self.travel.travel_time_ms(trip.pickup, trip.dropoff);
                    let dropoff_ms = pickup_ms + ride_ms;
                    let revenue = ride_ms as f64 / 1000.0; // α = 1, cost in seconds
                    fleet.set_busy(di, trip.dropoff, dropoff_ms);
                    let removed = avail_index.remove_at(a.driver, pos);
                    debug_assert_eq!(removed, 1, "index out of sync at assignment");
                    let dropoff_region = self.grid.region_of(trip.dropoff);
                    counts.remove_waiting(self.grid.region_of(trip.pickup));
                    counts.remove_available(self.grid.region_of(pos));
                    counts.add_rejoining(dropoff_region, dropoff_ms);
                    views.remove_waiting(a.rider);
                    views.remove_available(a.driver);
                    views.add_busy(BusyDriver {
                        id: a.driver,
                        dropoff_ms,
                        dropoff_pos: trip.dropoff,
                    });
                    // Cross-shard handoff: the ride ends wherever it
                    // ends, so the dropoff event lands in the dropoff
                    // region's shard — always at a batch timestamp,
                    // where dispatch is already a barrier.
                    events.push(
                        (dropoff_ms, PRI_DROPOFF, a.driver.0),
                        shard_of(dropoff_region),
                    );
                    rider_assigned[ri as usize] = true;
                    served += 1;
                    total_revenue += revenue;
                    assignments.push(AssignmentRecord {
                        rider: a.rider,
                        driver: a.driver,
                        batch_ms: tick,
                        pickup_ms,
                        dropoff_ms,
                        revenue,
                        driver_idle_ms: tick - since_ms,
                        dropoff_region,
                        estimated_idle_s: a.estimated_idle_s,
                    });
                }
                // Reset the double-booking scratch for the next batch.
                for a in &batch_assignments {
                    driver_taken[a.driver.0 as usize] = false;
                }
                last_assigned = !batch_assignments.is_empty();
                changed = false;
            }

            // 4. Advance: step Δ while the policy must keep running,
            // otherwise jump straight to the first batch slot the next
            // pending event can affect.
            if last_assigned || (every_batch && !views.waiting().is_empty()) {
                tick += delta;
                continue;
            }
            // Deadline events of already-assigned riders are stale —
            // drop them so they cannot schedule pointless wake-ups.
            while let Some((_, pri, id)) = events.peek() {
                if pri == PRI_DEADLINE && rider_assigned[id as usize] {
                    events.pop();
                } else {
                    break;
                }
            }
            // First slot that observes an event at `t`: the next slot
            // ≥ t for arrivals/dropoffs/shift changes, but strictly > t
            // for deadlines (a deadline at a batch timestamp has not
            // passed there). The queue head bounds every later event's
            // wake-up slot, so peeking the head suffices.
            let at_or_after = |t: Millis| t.div_ceil(delta) * delta;
            let strictly_after = |t: Millis| (t / delta) * delta + delta;
            let mut next_tick: Option<Millis> = None;
            let mut consider = |t: Millis| {
                next_tick = Some(next_tick.map_or(t, |c: Millis| c.min(t)));
            };
            if next_trip < trips.len() {
                consider(at_or_after(trips[next_trip].request_ms));
            }
            if let Some(&(from, _)) = phases.get(next_phase) {
                consider(at_or_after(from));
            }
            if let Some((t, pri, _)) = events.peek() {
                consider(if pri == PRI_DEADLINE {
                    strictly_after(t)
                } else {
                    at_or_after(t)
                });
            }
            match next_tick {
                Some(t) => {
                    debug_assert!(t > tick, "next slot must advance time");
                    tick = t;
                }
                // No pending event anywhere: nothing can ever change
                // again, so every remaining slot is an empty batch.
                None => break,
            }
        }

        // Final accounting at true event times: admit any stragglers
        // (arrivals after the last processed slot) so their deadlines
        // are on the queue, then flush it. A deadline before the horizon
        // is a renege at exactly that time; later deadlines are still
        // waiting when the day ends.
        while next_trip < trips.len() {
            events.push(
                (deadlines[next_trip], PRI_DEADLINE, next_trip as u32),
                shard_of(self.grid.region_of(trips[next_trip].pickup)),
            );
            next_trip += 1;
        }
        while let Some((t, pri, id)) = events.pop() {
            if pri == PRI_DEADLINE && !rider_assigned[id as usize] && t < horizon {
                reneges.push(RenegeRecord {
                    rider: RiderId(id),
                    request_ms: trips[id as usize].request_ms,
                    renege_ms: t,
                });
            }
        }
        let reneged = reneges.len();
        let still_waiting = trips.len() - served - reneged;
        debug_assert_eq!(served + reneged + still_waiting, trips.len());

        SimResult {
            policy: policy.name(),
            total_revenue,
            served,
            reneged,
            total_riders: trips.len(),
            still_waiting,
            batch_time,
            batches: horizon.div_ceil(delta) as usize,
            ticks_executed,
            events_processed,
            index_ops: avail_index.ops_applied() as usize,
            index_regions_dirtied,
            index_rebuilds_avoided,
            counts_ops: counts.ops_applied() as usize,
            counts_regions_dirtied,
            views_ops: views.ops_applied() as usize,
            views_entries_dirtied,
            views_rebuilds_avoided,
            assignments,
            reneges,
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Assignment;
    use mrvd_spatial::ConstantSpeedModel;

    /// Assigns every rider to the nearest valid free driver, greedily in
    /// rider-id order — a minimal reference policy for engine tests. All
    /// ties break on ids so the output is invariant to the view order
    /// (the live views are not id-sorted).
    struct FirstFit;

    impl DispatchPolicy for FirstFit {
        fn name(&self) -> String {
            "first-fit".into()
        }

        fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
            let mut riders: Vec<&WaitingRider> = ctx.riders.iter().collect();
            riders.sort_by_key(|r| r.id);
            let mut taken = std::collections::HashSet::new();
            let mut out = Vec::new();
            for r in riders {
                let best = ctx
                    .drivers
                    .iter()
                    .filter(|d| !taken.contains(&d.id) && ctx.is_valid_pair(r, d))
                    .min_by_key(|d| (ctx.travel.travel_time_ms(d.pos, r.pickup), d.id));
                if let Some(d) = best {
                    taken.insert(d.id);
                    out.push(Assignment {
                        rider: r.id,
                        driver: d.id,
                        estimated_idle_s: None,
                    });
                }
            }
            out
        }
    }

    /// A policy that never assigns anyone.
    struct Idle;

    impl DispatchPolicy for Idle {
        fn name(&self) -> String {
            "idle".into()
        }
        fn assign(&mut self, _ctx: &BatchContext<'_>) -> Vec<Assignment> {
            Vec::new()
        }
    }

    fn mk_trips(n: usize) -> Vec<TripRecord> {
        (0..n)
            .map(|i| {
                let pickup = Point::new(
                    -73.98 + (i % 7) as f64 * 0.002,
                    40.74 + (i % 5) as f64 * 0.002,
                );
                TripRecord {
                    id: i as u64,
                    request_ms: (i as u64) * 20_000,
                    pickup,
                    // Short local rides keep drivers within reach of later
                    // pickups, so fleets get reused across orders.
                    dropoff: Point::new(pickup.lon + 0.008, pickup.lat + 0.004),
                }
            })
            .collect()
    }

    fn run(policy: &mut dyn DispatchPolicy, n_trips: usize, n_drivers: usize) -> SimResult {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 3_600_000, // one hour is enough for these tests
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let trips = mk_trips(n_trips);
        let drivers: Vec<Point> = (0..n_drivers)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        sim.run(&trips, &drivers, policy)
    }

    #[test]
    fn conservation_of_riders() {
        let res = run(&mut FirstFit, 120, 10);
        assert_eq!(
            res.served + res.reneged + res.still_waiting,
            res.total_riders
        );
        assert!(res.served > 0);
    }

    #[test]
    fn revenue_equals_sum_of_assignment_revenues() {
        let res = run(&mut FirstFit, 80, 8);
        let sum: f64 = res.assignments.iter().map(|a| a.revenue).sum();
        assert!((res.total_revenue - sum).abs() < 1e-9);
    }

    #[test]
    fn idle_policy_serves_nobody_and_everyone_reneges() {
        let res = run(&mut Idle, 50, 10);
        assert_eq!(res.served, 0);
        // Horizon (1 h) far exceeds every deadline (≤ ~190 s after a
        // request in the first 1000 s), so all riders reneged.
        assert_eq!(res.reneged, 50);
        assert_eq!(res.still_waiting, 0);
    }

    #[test]
    fn pickups_meet_deadlines_and_timelines_are_ordered() {
        let res = run(&mut FirstFit, 100, 6);
        for a in &res.assignments {
            assert!(a.batch_ms <= a.pickup_ms);
            assert!(a.pickup_ms <= a.dropoff_ms);
        }
    }

    #[test]
    fn drivers_are_never_double_booked() {
        let res = run(&mut FirstFit, 150, 5);
        // Per driver, busy intervals [batch, dropoff] must not overlap.
        let mut per_driver: std::collections::HashMap<DriverId, Vec<(Millis, Millis)>> =
            std::collections::HashMap::new();
        for a in &res.assignments {
            per_driver
                .entry(a.driver)
                .or_default()
                .push((a.batch_ms, a.dropoff_ms));
        }
        for intervals in per_driver.values() {
            for w in intervals.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "overlapping busy intervals {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&mut FirstFit, 60, 6);
        let b = run(&mut FirstFit, 60, 6);
        assert_eq!(a.served, b.served);
        assert!((a.total_revenue - b.total_revenue).abs() < 1e-12);
        assert_eq!(a.assignments.len(), b.assignments.len());
    }

    #[test]
    fn no_drivers_means_no_service() {
        let res = run(&mut FirstFit, 30, 0);
        assert_eq!(res.served, 0);
        assert_eq!(res.reneged, 30);
    }

    #[test]
    fn no_trips_is_fine() {
        let res = run(&mut FirstFit, 0, 5);
        assert_eq!(res.total_riders, 0);
        assert_eq!(res.served, 0);
        assert!(res.batches > 0);
    }

    #[test]
    fn longer_batch_interval_serves_fewer_riders() {
        // The Figure 8 effect: larger Δ misses more deadlines.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let trips = mk_trips(200);
        // Drivers inside the pickup lattice so deadlines, not geometry,
        // decide who gets served.
        let drivers: Vec<Point> = (0..4).map(|_| Point::new(-73.974, 40.744)).collect();
        let served_at = |delta: Millis| {
            let sim = Simulator::new(
                SimConfig {
                    batch_interval_ms: delta,
                    horizon_ms: 4_000_000,
                    base_wait_ms: 120_000,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            sim.run(&trips, &drivers, &mut FirstFit).served
        };
        let fast = served_at(3_000);
        let slow = served_at(60_000);
        assert!(
            fast >= slow,
            "Δ=3s served {fast}, Δ=60s served {slow} — larger Δ should not serve more"
        );
    }

    #[test]
    fn busy_drivers_are_visible_with_correct_rejoin_info() {
        // A policy that checks the busy list matches what it assigned.
        struct BusyAuditor {
            expected: std::collections::HashMap<DriverId, (Millis, (i64, i64))>,
            checks: usize,
        }
        impl DispatchPolicy for BusyAuditor {
            fn name(&self) -> String {
                "busy-auditor".into()
            }
            fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
                for b in ctx.busy {
                    let (until, _) = self.expected[&b.id];
                    assert_eq!(b.dropoff_ms, until, "wrong rejoin time exposed");
                    self.checks += 1;
                }
                // Assign the first valid pair and remember its dropoff.
                for r in ctx.riders {
                    for d in ctx.drivers {
                        if ctx.is_valid_pair(r, d) {
                            let pickup = ctx.now_ms + ctx.travel.travel_time_ms(d.pos, r.pickup);
                            let dropoff = pickup + ctx.travel.travel_time_ms(r.pickup, r.dropoff);
                            self.expected.insert(d.id, (dropoff, (0, 0)));
                            return vec![Assignment {
                                rider: r.id,
                                driver: d.id,
                                estimated_idle_s: None,
                            }];
                        }
                    }
                }
                Vec::new()
            }
        }
        let mut auditor = BusyAuditor {
            expected: std::collections::HashMap::new(),
            checks: 0,
        };
        let res = run(&mut auditor, 60, 3);
        assert!(res.served > 0);
        assert!(auditor.checks > 0, "busy drivers never surfaced");
    }

    #[test]
    fn driver_available_since_equals_previous_dropoff() {
        let res = run(&mut FirstFit, 120, 4);
        // For consecutive assignments of a driver, the idle interval of
        // the later one starts exactly at the earlier one's dropoff.
        let mut last_dropoff: std::collections::HashMap<DriverId, Millis> =
            std::collections::HashMap::new();
        let mut verified = 0;
        for a in &res.assignments {
            if let Some(&prev) = last_dropoff.get(&a.driver) {
                assert_eq!(a.batch_ms - a.driver_idle_ms, prev);
                verified += 1;
            }
            last_dropoff.insert(a.driver, a.dropoff_ms);
        }
        assert!(verified > 5, "too few driver reuse events ({verified})");
    }

    #[test]
    fn batch_count_matches_horizon_over_delta() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                batch_interval_ms: 7_000,
                horizon_ms: 100_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let res = sim.run(&[], &[], &mut Idle);
        // Batches at 0, 7s, …, 98s → ceil(100/7) = 15.
        assert_eq!(res.batches, 15);
    }

    #[test]
    fn rider_counted_reneged_even_if_never_admitted() {
        // A rider arriving between the last batch and the horizon with a
        // deadline inside the horizon must still be accounted for.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                batch_interval_ms: 60_000,
                horizon_ms: 120_000,
                base_wait_ms: 10_000,
                wait_noise_ms: (1_000, 2_000),
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let trips = vec![TripRecord {
            id: 0,
            request_ms: 100_000, // after the second (last) batch at 60s
            pickup: Point::new(-73.98, 40.75),
            dropoff: Point::new(-73.95, 40.78),
        }];
        let res = sim.run(&trips, &[], &mut Idle);
        assert_eq!(res.total_riders, 1);
        assert_eq!(res.served + res.reneged + res.still_waiting, 1);
        assert_eq!(res.reneged, 1);
    }

    #[test]
    fn constant_schedule_reproduces_run_exactly() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 3_600_000,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let trips = mk_trips(120);
        let drivers: Vec<Point> = (0..8)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        let plain = sim.run(&trips, &drivers, &mut FirstFit);
        let scheduled = sim.run_scheduled(
            &trips,
            &drivers,
            &DriverSchedule::constant(drivers.len()),
            &mut FirstFit,
        );
        assert_eq!(plain.served, scheduled.served);
        assert_eq!(plain.reneged, scheduled.reneged);
        assert_eq!(
            plain.total_revenue.to_bits(),
            scheduled.total_revenue.to_bits()
        );
        assert_eq!(plain.assignments.len(), scheduled.assignments.len());
        for (a, b) in plain.assignments.iter().zip(&scheduled.assignments) {
            assert_eq!(
                (a.rider, a.driver, a.pickup_ms),
                (b.rider, b.driver, b.pickup_ms)
            );
        }
    }

    #[test]
    fn ramp_up_brings_pool_drivers_online() {
        // Target 0 drivers for the first 30 min, then 6: nothing can be
        // served before the shift starts, plenty after.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 3_600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let trips = mk_trips(100);
        let pool: Vec<Point> = (0..6).map(|_| Point::new(-73.974, 40.744)).collect();
        let schedule = DriverSchedule::new(vec![(0, 0), (1_800_000, 6)]);
        let res = sim.run_scheduled(&trips, &pool, &schedule, &mut FirstFit);
        assert!(res.served > 0, "drivers never came online");
        assert!(
            res.assignments.iter().all(|a| a.batch_ms >= 1_800_000),
            "assignment before the shift started"
        );
        // The first 30 minutes of riders (deadline ~190 s) all reneged.
        assert!(res.reneged > 0);
    }

    #[test]
    fn ramp_down_shrinks_the_active_fleet() {
        // A policy that records the largest driver view it ever saw after
        // the ramp-down point.
        struct CountAfter {
            cut_ms: Millis,
            max_seen: usize,
        }
        impl DispatchPolicy for CountAfter {
            fn name(&self) -> String {
                "count-after".into()
            }
            fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
                if ctx.now_ms >= self.cut_ms {
                    self.max_seen = self.max_seen.max(ctx.drivers.len() + ctx.busy.len());
                }
                Vec::new()
            }
        }
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 3_600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let trips = mk_trips(50);
        let pool: Vec<Point> = (0..10).map(|_| Point::new(-73.974, 40.744)).collect();
        let schedule = DriverSchedule::new(vec![(0, 10), (1_800_000, 3)]);
        let mut counter = CountAfter {
            cut_ms: 1_800_000,
            max_seen: 0,
        };
        let res = sim.run_scheduled(&trips, &pool, &schedule, &mut counter);
        assert_eq!(res.served, 0);
        assert_eq!(counter.max_seen, 3, "fleet did not shrink to the target");
    }

    #[test]
    fn busy_driver_retires_at_dropoff_and_leaves_the_busy_view() {
        // One driver, one long ride; the schedule drops to zero while the
        // ride is in flight. The busy view must empty immediately and the
        // driver must never reappear.
        struct Audit {
            saw_busy_after_cut: bool,
            saw_avail_after_cut: bool,
            cut_ms: Millis,
            assigned: bool,
        }
        impl DispatchPolicy for Audit {
            fn name(&self) -> String {
                "audit".into()
            }
            fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
                if ctx.now_ms >= self.cut_ms {
                    self.saw_busy_after_cut |= !ctx.busy.is_empty();
                    self.saw_avail_after_cut |= !ctx.drivers.is_empty();
                    return Vec::new();
                }
                if !self.assigned {
                    for r in ctx.riders {
                        for d in ctx.drivers {
                            if ctx.is_valid_pair(r, d) {
                                self.assigned = true;
                                return vec![Assignment {
                                    rider: r.id,
                                    driver: d.id,
                                    estimated_idle_s: None,
                                }];
                            }
                        }
                    }
                }
                Vec::new()
            }
        }
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 3_600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        // A single ~25-minute ride posted at t=0.
        let trips = vec![TripRecord {
            id: 0,
            request_ms: 0,
            pickup: Point::new(-73.974, 40.744),
            dropoff: Point::new(-73.90, 40.80),
        }];
        let pool = vec![Point::new(-73.974, 40.744)];
        let schedule = DriverSchedule::new(vec![(0, 1), (60_000, 0)]);
        let mut audit = Audit {
            saw_busy_after_cut: false,
            saw_avail_after_cut: false,
            cut_ms: 60_000,
            assigned: false,
        };
        let res = sim.run_scheduled(&trips, &pool, &schedule, &mut audit);
        assert_eq!(res.served, 1, "the in-flight ride still completes");
        assert!(
            !audit.saw_busy_after_cut,
            "retiring driver stayed in the busy view"
        );
        assert!(
            !audit.saw_avail_after_cut,
            "retired driver rejoined the fleet"
        );
    }

    #[test]
    fn shortage_schedule_increases_reneging() {
        let full = {
            let grid = Grid::nyc_16x16();
            let travel = ConstantSpeedModel::new(8.0);
            let sim = Simulator::new(
                SimConfig {
                    horizon_ms: 3_600_000,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            let trips = mk_trips(150);
            let pool: Vec<Point> = (0..8).map(|_| Point::new(-73.974, 40.744)).collect();
            let run_with = |schedule: &DriverSchedule| {
                sim.run_scheduled(&trips, &pool, schedule, &mut FirstFit)
                    .reneged
            };
            (
                run_with(&DriverSchedule::constant(8)),
                run_with(&DriverSchedule::new(vec![(0, 8), (900_000, 2)])),
            )
        };
        assert!(
            full.1 > full.0,
            "shortage reneged {} <= full-fleet reneged {}",
            full.1,
            full.0
        );
    }

    #[test]
    #[should_panic(expected = "schedule targets")]
    fn schedule_larger_than_pool_panics() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(SimConfig::default(), &travel, &grid);
        sim.run_scheduled(
            &[],
            &[Point::new(-73.97, 40.75)],
            &DriverSchedule::constant(2),
            &mut Idle,
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trips_panic() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(SimConfig::default(), &travel, &grid);
        let mut trips = mk_trips(3);
        trips.swap(0, 2);
        sim.run(&trips, &[], &mut Idle);
    }

    // ------------------------------------------------------------------
    // Event-core-specific tests.

    #[test]
    fn quiescent_slots_are_skipped() {
        // 120 trips spread over 2400 s in a 3600 s horizon at Δ = 3 s:
        // most slots see no arrival/dropoff/deadline and must be skipped.
        let res = run(&mut FirstFit, 120, 10);
        assert_eq!(res.batches, 1200);
        assert!(
            res.ticks_executed < res.batches,
            "no slot was skipped ({} executed of {})",
            res.ticks_executed,
            res.batches
        );
        assert_eq!(res.ticks_skipped(), res.batches - res.ticks_executed);
        assert!(res.skip_rate() > 0.0 && res.skip_rate() < 1.0);
        // Every admission is an event, so at least one per rider.
        assert!(res.events_processed >= res.total_riders);
    }

    #[test]
    fn idle_slots_cost_nothing_for_an_empty_day() {
        let res = run(&mut Idle, 0, 5);
        assert_eq!(res.ticks_executed, 0);
        assert_eq!(res.events_processed, 0);
        assert!((res.skip_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn live_index_counters_track_maintenance() {
        let res = run(&mut FirstFit, 120, 10);
        assert!(res.served > 0);
        // Every policy invocation was served by the live index…
        assert_eq!(res.index_rebuilds_avoided, res.ticks_executed);
        // …whose maintenance is event-driven: the 10 seed inserts, one
        // remove per assignment, one insert per dropoff (dropoffs after
        // the last processed slot never re-enter the index).
        assert!(res.index_ops >= 10 + res.served);
        assert!(res.index_ops <= 10 + 2 * res.served);
        // Each assignment dirties at most two regions (pickup-side remove
        // + dropoff-side insert), plus the seeds — far below a rebuild's
        // per-batch full refill.
        assert!(res.index_regions_dirtied > 0);
        assert!(res.index_regions_dirtied <= res.index_ops);
    }

    #[test]
    fn live_views_counters_track_maintenance() {
        let res = run(&mut FirstFit, 120, 10);
        assert!(res.served > 0);
        // Every executed batch ran straight off the live views…
        assert_eq!(res.views_rebuilds_avoided, res.ticks_executed);
        // …whose maintenance is event-driven: 10 seed adds, one add per
        // admission, one waiting remove per assignment or renege, three
        // mutations per assignment (waiting out, available out, busy
        // in), two per processed dropoff (busy out, available in).
        assert!(res.views_ops >= 10 + res.total_riders + 3 * res.served);
        assert!(res.views_ops <= 10 + 2 * res.total_riders + 5 * res.served);
        // A swap_remove touches at most the target and one filler.
        assert!(res.views_entries_dirtied > 0);
        assert!(res.views_entries_dirtied <= 2 * res.views_ops);
    }

    #[test]
    fn reference_loop_reports_zero_index_counters() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 600_000,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let trips = mk_trips(10);
        let drivers: Vec<Point> = (0..4).map(|_| Point::new(-73.97, 40.75)).collect();
        let res = sim.run_scheduled_reference(
            &trips,
            &drivers,
            &DriverSchedule::constant(drivers.len()),
            &mut FirstFit,
        );
        assert_eq!(res.index_ops, 0);
        assert_eq!(res.index_regions_dirtied, 0);
        assert_eq!(res.index_rebuilds_avoided, 0);
        assert_eq!(res.views_ops, 0);
        assert_eq!(res.views_entries_dirtied, 0);
        assert_eq!(res.views_rebuilds_avoided, 0);
    }

    #[test]
    fn renege_heavy_day_matches_the_reference_loop_exactly() {
        // Satellite regression for the renege path's O(1) removal: with
        // one driver against 200 riders almost everyone reneges, so the
        // waiting view churns through swap_removes constantly — results
        // must stay byte-identical to the scan-built reference loop.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 3_600_000,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let mut trips = mk_trips(200);
        // Compress the arrivals so many riders wait (and renege)
        // concurrently, keeping the waiting view large.
        for t in &mut trips {
            t.request_ms /= 8;
        }
        let drivers = vec![Point::new(-73.974, 40.744)];
        let fast = sim.run(&trips, &drivers, &mut FirstFit);
        let slow = sim.run_scheduled_reference(
            &trips,
            &drivers,
            &DriverSchedule::constant(1),
            &mut FirstFit,
        );
        assert!(
            fast.reneged > 100,
            "day not renege-heavy ({})",
            fast.reneged
        );
        assert_eq!(fast.served, slow.served);
        assert_eq!(fast.reneged, slow.reneged);
        assert_eq!(fast.total_revenue.to_bits(), slow.total_revenue.to_bits());
        assert_eq!(fast.assignments.len(), slow.assignments.len());
        for (a, b) in fast.assignments.iter().zip(&slow.assignments) {
            assert_eq!(
                (a.rider, a.driver, a.batch_ms, a.pickup_ms),
                (b.rider, b.driver, b.batch_ms, b.pickup_ms)
            );
        }
        let ids = |r: &[RenegeRecord]| {
            let mut v: Vec<u32> = r.iter().map(|x| x.rider.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&fast.reneges), ids(&slow.reneges));
    }

    #[test]
    fn renege_is_charged_at_the_exact_deadline_not_the_next_tick() {
        // One rider, no drivers; deadline = 0 + 90 s + U[1 s, 2 s] falls
        // strictly inside the second Δ = 60 s batch interval.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            batch_interval_ms: 60_000,
            horizon_ms: 240_000,
            base_wait_ms: 90_000,
            wait_noise_ms: (1_000, 2_000),
            ..SimConfig::default()
        };
        let trips = vec![TripRecord {
            id: 0,
            request_ms: 0,
            pickup: Point::new(-73.98, 40.75),
            dropoff: Point::new(-73.95, 40.78),
        }];
        let sim = Simulator::new(config.clone(), &travel, &grid);
        let res = sim.run(&trips, &[], &mut Idle);
        assert_eq!(res.reneged, 1);
        let exact = res.reneges[0].renege_ms;
        assert!(
            (91_000..=92_000).contains(&exact),
            "expected the exact deadline, got {exact}"
        );
        // The legacy loop only notices at the next batch boundary.
        let legacy =
            sim.run_scheduled_reference(&trips, &[], &DriverSchedule::constant(0), &mut Idle);
        assert_eq!(legacy.reneged, 1);
        assert_eq!(legacy.reneges[0].renege_ms, 120_000);
        // Exact renege times are Δ-invariant: a finer batch interval
        // must report the identical timestamp.
        let fine = Simulator::new(
            SimConfig {
                batch_interval_ms: 1_000,
                ..config
            },
            &travel,
            &grid,
        )
        .run(&trips, &[], &mut Idle);
        assert_eq!(fine.reneges[0].renege_ms, exact);
        assert_eq!(res.reneges[0].rider, RiderId(0));
        assert_eq!(res.reneges[0].request_ms, 0);
        assert!((res.mean_renege_wait_s() - exact as f64 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn results_are_invariant_to_the_event_shard_count() {
        // The sharded queue's tournament must reproduce the single
        // global heap's pop order exactly, so any shard count — the
        // single-queue reference (1), auto (0), or arbitrary (7, 1000)
        // — yields byte-identical results, shift changes included.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let trips = mk_trips(140);
        let drivers: Vec<Point> = (0..7)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        let schedule = DriverSchedule::new(vec![(0, 7), (1_200_000, 3), (2_400_000, 6)]);
        let run_with = |event_shards: usize| {
            let sim = Simulator::new(
                SimConfig {
                    horizon_ms: 3_600_000,
                    event_shards,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            sim.run_scheduled(&trips, &drivers, &schedule, &mut FirstFit)
        };
        let single = run_with(1);
        assert!(single.served > 0 && single.reneged > 0);
        for shards in [0, 2, 7, 1000] {
            let sharded = run_with(shards);
            assert_eq!(single.served, sharded.served);
            assert_eq!(single.reneged, sharded.reneged);
            assert_eq!(
                single.total_revenue.to_bits(),
                sharded.total_revenue.to_bits()
            );
            assert_eq!(single.ticks_executed, sharded.ticks_executed);
            assert_eq!(single.events_processed, sharded.events_processed);
            assert_eq!(single.assignments, sharded.assignments);
            assert_eq!(single.reneges, sharded.reneges);
        }
    }

    #[test]
    fn results_are_invariant_to_the_worker_count() {
        // The parallel drain's merge must reproduce the sequential pop
        // order exactly — so any worker count (sequential 1, several,
        // more workers than shards, auto 0) over any shard layout
        // yields byte-identical results, down to every engine counter,
        // shift changes included.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let trips = mk_trips(140);
        let drivers: Vec<Point> = (0..7)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        let schedule = DriverSchedule::new(vec![(0, 7), (1_200_000, 3), (2_400_000, 6)]);
        let run_with = |workers: usize, event_shards: usize| {
            let sim = Simulator::new(
                SimConfig {
                    horizon_ms: 3_600_000,
                    event_shards,
                    workers,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            sim.run_scheduled(&trips, &drivers, &schedule, &mut FirstFit)
        };
        let sequential = run_with(1, 0);
        assert!(sequential.served > 0 && sequential.reneged > 0);
        for (workers, shards) in [(2, 0), (3, 7), (8, 2), (16, 0), (0, 0)] {
            let parallel = run_with(workers, shards);
            assert_eq!(sequential.served, parallel.served, "workers={workers}");
            assert_eq!(sequential.reneged, parallel.reneged);
            assert_eq!(sequential.still_waiting, parallel.still_waiting);
            assert_eq!(
                sequential.total_revenue.to_bits(),
                parallel.total_revenue.to_bits()
            );
            assert_eq!(sequential.ticks_executed, parallel.ticks_executed);
            assert_eq!(sequential.events_processed, parallel.events_processed);
            // The apply order is bit-for-bit the sequential one, so the
            // incremental-structure telemetry cannot diverge either.
            assert_eq!(sequential.index_ops, parallel.index_ops);
            assert_eq!(
                sequential.index_regions_dirtied,
                parallel.index_regions_dirtied
            );
            assert_eq!(sequential.counts_ops, parallel.counts_ops);
            assert_eq!(
                sequential.counts_regions_dirtied,
                parallel.counts_regions_dirtied
            );
            assert_eq!(sequential.views_ops, parallel.views_ops);
            assert_eq!(
                sequential.views_entries_dirtied,
                parallel.views_entries_dirtied
            );
            assert_eq!(sequential.assignments, parallel.assignments);
            assert_eq!(sequential.reneges, parallel.reneges);
        }
    }

    #[test]
    fn single_heap_layout_forces_sequential_execution() {
        // `event_shards = 1` clamps any worker request to one worker:
        // the run must still work (and match) rather than spin up a
        // pool over a single shard.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let trips = mk_trips(60);
        let drivers: Vec<Point> = (0..5).map(|_| Point::new(-73.97, 40.75)).collect();
        let run_with = |workers: usize| {
            let sim = Simulator::new(
                SimConfig {
                    horizon_ms: 3_600_000,
                    event_shards: 1,
                    workers,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            sim.run(&trips, &drivers, &mut FirstFit)
        };
        let one = run_with(1);
        let eight = run_with(8);
        assert!(one.served > 0);
        assert_eq!(one.assignments, eight.assignments);
        assert_eq!(one.reneges, eight.reneges);
    }

    #[test]
    fn dropoff_on_a_batch_timestamp_is_dispatchable_in_that_batch_under_all_layouts() {
        // The PR 5 half-open rejoin-window pin, extended to the
        // parallel path: a dropoff landing *exactly* on a batch
        // timestamp frees its driver before dispatch runs in that same
        // batch, under the sequential loop, the parallel drain, the
        // single-heap layout and the reference loop alike.
        //
        // Fixed 30 s legs make the timeline exact: rider 0 (request 0)
        // is assigned at batch 0, picked up at 30 s, dropped off at
        // 60 s — exactly on a Δ = 3 s batch boundary. Rider 1 (request
        // 10 s) waits; its deadline (≥ 190 s) is far beyond 60 s, so
        // the freed driver must pick it up at the 60 s batch.
        struct FixedTravel(Millis);
        impl TravelModel for FixedTravel {
            fn travel_time_ms(&self, _from: Point, _to: Point) -> Millis {
                self.0
            }
        }
        let grid = Grid::nyc_16x16();
        let travel = FixedTravel(30_000);
        let trips = vec![
            TripRecord {
                id: 0,
                request_ms: 0,
                pickup: Point::new(-73.98, 40.75),
                dropoff: Point::new(-73.96, 40.76),
            },
            TripRecord {
                id: 1,
                request_ms: 10_000,
                pickup: Point::new(-73.95, 40.77),
                dropoff: Point::new(-73.93, 40.78),
            },
        ];
        let drivers = vec![Point::new(-73.974, 40.744)];
        let check = |res: &SimResult, label: &str| {
            assert_eq!(res.served, 2, "{label}: second rider missed");
            assert_eq!(res.assignments[0].dropoff_ms, 60_000, "{label}");
            assert_eq!(
                res.assignments[1].batch_ms, 60_000,
                "{label}: the dropoff at the batch timestamp must be visible to that batch"
            );
        };
        for (workers, event_shards) in [(1, 0), (2, 0), (4, 16), (1, 1)] {
            let sim = Simulator::new(
                SimConfig {
                    horizon_ms: 600_000,
                    event_shards,
                    workers,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            let res = sim.run(&trips, &drivers, &mut FirstFit);
            check(&res, &format!("workers={workers} shards={event_shards}"));
        }
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let reference = sim.run_scheduled_reference(
            &trips,
            &drivers,
            &DriverSchedule::constant(1),
            &mut FirstFit,
        );
        check(&reference, "reference");
    }

    #[test]
    fn event_core_matches_the_reference_loop() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 3_600_000,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let trips = mk_trips(140);
        let drivers: Vec<Point> = (0..7)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        let schedule = DriverSchedule::new(vec![(0, 7), (1_200_000, 3), (2_400_000, 6)]);
        let fast = sim.run_scheduled(&trips, &drivers, &schedule, &mut FirstFit);
        let slow = sim.run_scheduled_reference(&trips, &drivers, &schedule, &mut FirstFit);
        assert_eq!(fast.served, slow.served);
        assert_eq!(fast.reneged, slow.reneged);
        assert_eq!(fast.still_waiting, slow.still_waiting);
        assert_eq!(fast.total_revenue.to_bits(), slow.total_revenue.to_bits());
        assert_eq!(fast.batches, slow.batches);
        assert_eq!(fast.assignments.len(), slow.assignments.len());
        for (a, b) in fast.assignments.iter().zip(&slow.assignments) {
            assert_eq!(
                (
                    a.rider,
                    a.driver,
                    a.batch_ms,
                    a.pickup_ms,
                    a.dropoff_ms,
                    a.driver_idle_ms
                ),
                (
                    b.rider,
                    b.driver,
                    b.batch_ms,
                    b.pickup_ms,
                    b.dropoff_ms,
                    b.driver_idle_ms
                )
            );
        }
        // Same riders renege; only the charged timestamps may differ,
        // and never by more than Δ (the legacy rounds up to the tick).
        assert_eq!(fast.reneges.len(), slow.reneges.len());
        let key = |r: &[RenegeRecord]| {
            let mut ids: Vec<u32> = r.iter().map(|x| x.rider.0).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(key(&fast.reneges), key(&slow.reneges));
        assert!(fast.ticks_executed < slow.ticks_executed);
    }
}
