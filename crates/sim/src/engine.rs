//! The batch-based simulation engine (Algorithm 1's outer loop).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mrvd_demand::TripRecord;
use mrvd_spatial::{Grid, Point, TravelModel};
use mrvd_stats::SummaryStats;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::metrics::{AssignmentRecord, SimResult};
use crate::policy::{AvailableDriver, BatchContext, BusyDriver, DispatchPolicy, WaitingRider};
use crate::schedule::DriverSchedule;
use crate::types::{DriverId, Millis, RiderId};

/// Simulation parameters (defaults follow the paper's Table 2 defaults:
/// Δ = 3 s, τ = 180 s base wait + U[1 s, 10 s] noise, one full day).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Batch interval Δ in ms.
    pub batch_interval_ms: Millis,
    /// Base pickup waiting time τ in ms.
    pub base_wait_ms: Millis,
    /// Uniform deadline noise range `[lo, hi]` in ms (the paper's
    /// `τ' ∈ [1, 10]` seconds).
    pub wait_noise_ms: (Millis, Millis),
    /// Simulation horizon in ms (a day by default).
    pub horizon_ms: Millis,
    /// Seed for the deadline noise.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            batch_interval_ms: 3_000,
            base_wait_ms: 180_000,
            wait_noise_ms: (1_000, 10_000),
            horizon_ms: mrvd_demand::DAY_MS,
            seed: 0x51A1,
        }
    }
}

/// Internal driver state.
#[derive(Debug, Clone, Copy)]
enum DriverState {
    Available {
        pos: Point,
        since_ms: Millis,
    },
    Busy {
        until_ms: Millis,
        dropoff: Point,
    },
    /// Off shift (never shown to policies); remembers where the driver
    /// parked so a later shift change can bring them back there.
    Offline {
        pos: Point,
    },
}

/// The simulator: binds a travel model, a grid and a config; `run`
/// executes one day for one policy.
pub struct Simulator<'a> {
    config: SimConfig,
    travel: &'a dyn TravelModel,
    grid: &'a Grid,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator.
    ///
    /// # Panics
    /// Panics on a zero batch interval or zero horizon.
    pub fn new(config: SimConfig, travel: &'a dyn TravelModel, grid: &'a Grid) -> Self {
        assert!(
            config.batch_interval_ms > 0,
            "Simulator: Δ must be positive"
        );
        assert!(config.horizon_ms > 0, "Simulator: horizon must be positive");
        assert!(
            config.wait_noise_ms.0 <= config.wait_noise_ms.1,
            "Simulator: noise range inverted"
        );
        Self {
            config,
            travel,
            grid,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs one day: `trips` must be sorted by `request_ms` and fall
    /// within the horizon; `driver_positions` seed the fleet.
    ///
    /// # Panics
    /// Panics if trips are unsorted/out of horizon, or if the policy
    /// returns an invalid assignment (unknown ids, double bookings, or a
    /// pair violating the pickup deadline).
    pub fn run(
        &self,
        trips: &[TripRecord],
        driver_positions: &[Point],
        policy: &mut dyn DispatchPolicy,
    ) -> SimResult {
        self.run_scheduled(
            trips,
            driver_positions,
            &DriverSchedule::constant(driver_positions.len()),
            policy,
        )
    }

    /// Runs one day with a time-varying fleet: `driver_pool` holds the
    /// spawn positions of every driver that may ever be on shift, and
    /// `schedule` gives the target fleet size over time. Excess drivers
    /// retire at shift changes — idle drivers immediately, busy drivers
    /// at their next dropoff (a retiring driver disappears from the
    /// policy's busy view since it will not rejoin). A constant schedule
    /// over the full pool reproduces [`Simulator::run`] exactly.
    ///
    /// # Panics
    /// Panics under the same conditions as [`Simulator::run`], or if the
    /// schedule ever targets more drivers than the pool holds.
    pub fn run_scheduled(
        &self,
        trips: &[TripRecord],
        driver_pool: &[Point],
        schedule: &DriverSchedule,
        policy: &mut dyn DispatchPolicy,
    ) -> SimResult {
        assert!(
            schedule.max_drivers() <= driver_pool.len(),
            "Simulator: schedule targets {} drivers but the pool holds {}",
            schedule.max_drivers(),
            driver_pool.len()
        );
        assert!(
            trips.windows(2).all(|w| w[0].request_ms <= w[1].request_ms),
            "Simulator: trips must be sorted by request time"
        );
        assert!(
            trips
                .last()
                .is_none_or(|t| t.request_ms < self.config.horizon_ms),
            "Simulator: trips beyond the horizon"
        );
        let teleport = policy.teleports_pickup();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let (noise_lo, noise_hi) = self.config.wait_noise_ms;

        // Rider table: deadline = request + base + U[noise].
        struct RiderInfo {
            trip: TripRecord,
            deadline_ms: Millis,
        }
        let riders: Vec<RiderInfo> = trips
            .iter()
            .map(|&trip| RiderInfo {
                deadline_ms: trip.request_ms
                    + self.config.base_wait_ms
                    + rng.gen_range(noise_lo..=noise_hi),
                trip,
            })
            .collect();

        // Drivers up to the initial target start on shift; the rest of
        // the pool waits offline at its spawn position.
        let initial = schedule.target_at(0);
        let mut drivers: Vec<DriverState> = driver_pool
            .iter()
            .enumerate()
            .map(|(i, &pos)| {
                if i < initial {
                    DriverState::Available { pos, since_ms: 0 }
                } else {
                    DriverState::Offline { pos }
                }
            })
            .collect();
        // Busy drivers marked here retire (go offline) at their dropoff.
        let mut retiring = vec![false; drivers.len()];
        // A constant schedule (the paper's fixed-fleet setting and every
        // `run()` call) never moves drivers on or off shift, so the
        // per-batch online-count scan below can be skipped entirely.
        let track_schedule = !schedule.is_constant();
        let mut dropoff_heap: BinaryHeap<Reverse<(Millis, u32)>> = BinaryHeap::new();

        let mut waiting: Vec<u32> = Vec::new(); // rider indices
        let mut next_trip = 0usize;
        let mut served = 0usize;
        let mut reneged = 0usize;
        let mut total_revenue = 0.0f64;
        let mut assignments: Vec<AssignmentRecord> = Vec::new();
        let mut batch_time = SummaryStats::new();
        let mut batches = 0usize;
        // Scratch flags for validation.
        let mut rider_assigned = vec![false; riders.len()];

        let mut now = 0u64;
        while now < self.config.horizon_ms {
            // 1. Free drivers whose dropoff has passed.
            while let Some(&Reverse((t, d))) = dropoff_heap.peek() {
                if t > now {
                    break;
                }
                dropoff_heap.pop();
                let DriverState::Busy { until_ms, dropoff } = drivers[d as usize] else {
                    unreachable!("heap entry for a non-busy driver");
                };
                debug_assert_eq!(until_ms, t);
                drivers[d as usize] = if retiring[d as usize] {
                    retiring[d as usize] = false;
                    DriverState::Offline { pos: dropoff }
                } else {
                    DriverState::Available {
                        pos: dropoff,
                        since_ms: t,
                    }
                };
            }
            // 1b. Track the schedule target: activate pooled drivers on a
            // ramp-up (cancelling pending retirements first), retire on a
            // ramp-down (idle drivers immediately, busy ones at dropoff).
            if track_schedule {
                let target = schedule.target_at(now);
                let online = drivers
                    .iter()
                    .zip(&retiring)
                    .filter(|(d, &r)| !matches!(d, DriverState::Offline { .. }) && !r)
                    .count();
                if online < target {
                    let mut need = target - online;
                    for r in retiring.iter_mut() {
                        if need == 0 {
                            break;
                        }
                        if *r {
                            *r = false;
                            need -= 1;
                        }
                    }
                    for d in drivers.iter_mut() {
                        if need == 0 {
                            break;
                        }
                        if let DriverState::Offline { pos } = *d {
                            *d = DriverState::Available { pos, since_ms: now };
                            need -= 1;
                        }
                    }
                } else if online > target {
                    let mut excess = online - target;
                    for d in drivers.iter_mut().rev() {
                        if excess == 0 {
                            break;
                        }
                        if let DriverState::Available { pos, .. } = *d {
                            *d = DriverState::Offline { pos };
                            excess -= 1;
                        }
                    }
                    for (d, r) in drivers.iter().zip(retiring.iter_mut()).rev() {
                        if excess == 0 {
                            break;
                        }
                        if matches!(d, DriverState::Busy { .. }) && !*r {
                            *r = true;
                            excess -= 1;
                        }
                    }
                }
            }
            // 2. Admit new riders.
            while next_trip < riders.len() && riders[next_trip].trip.request_ms <= now {
                waiting.push(next_trip as u32);
                next_trip += 1;
            }
            // 3. Renege riders whose deadline passed.
            waiting.retain(|&ri| {
                if riders[ri as usize].deadline_ms < now {
                    reneged += 1;
                    false
                } else {
                    true
                }
            });

            // 4. Build the batch view.
            let waiting_view: Vec<WaitingRider> = waiting
                .iter()
                .map(|&ri| {
                    let r = &riders[ri as usize];
                    WaitingRider {
                        id: RiderId(ri),
                        pickup: r.trip.pickup,
                        dropoff: r.trip.dropoff,
                        request_ms: r.trip.request_ms,
                        deadline_ms: r.deadline_ms,
                    }
                })
                .collect();
            let mut avail_view: Vec<AvailableDriver> = Vec::new();
            let mut busy_view: Vec<BusyDriver> = Vec::new();
            for (i, d) in drivers.iter().enumerate() {
                match *d {
                    DriverState::Available { pos, since_ms } => avail_view.push(AvailableDriver {
                        id: DriverId(i as u32),
                        pos,
                        available_since_ms: since_ms,
                    }),
                    // Retiring drivers will not rejoin, so they are not
                    // upcoming supply and stay out of the busy view.
                    DriverState::Busy { until_ms, dropoff } if !retiring[i] => {
                        busy_view.push(BusyDriver {
                            id: DriverId(i as u32),
                            dropoff_ms: until_ms,
                            dropoff_pos: dropoff,
                        })
                    }
                    DriverState::Busy { .. } | DriverState::Offline { .. } => {}
                }
            }
            let ctx = BatchContext {
                now_ms: now,
                riders: &waiting_view,
                drivers: &avail_view,
                busy: &busy_view,
                travel: self.travel,
                grid: self.grid,
            };

            // 5. Run the policy, timed.
            let t0 = std::time::Instant::now();
            let batch_assignments = policy.assign(&ctx);
            batch_time.push(t0.elapsed().as_secs_f64());
            batches += 1;

            // 6. Validate and apply.
            let mut driver_taken: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for a in &batch_assignments {
                let ri = a.rider.0;
                assert!(
                    (ri as usize) < riders.len()
                        && waiting.contains(&ri)
                        && !rider_assigned[ri as usize],
                    "policy assigned unknown or unavailable rider {}",
                    a.rider
                );
                let di = a.driver.0 as usize;
                assert!(
                    di < drivers.len(),
                    "policy assigned unknown driver {}",
                    a.driver
                );
                let DriverState::Available { pos, since_ms } = drivers[di] else {
                    match drivers[di] {
                        DriverState::Busy { .. } => {
                            panic!("policy assigned busy driver {}", a.driver)
                        }
                        _ => panic!("policy assigned offline driver {}", a.driver),
                    }
                };
                assert!(
                    driver_taken.insert(a.driver.0),
                    "policy assigned driver {} twice in one batch",
                    a.driver
                );
                let rider = &riders[ri as usize];
                let pickup_ms = if teleport {
                    now
                } else {
                    now + self.travel.travel_time_ms(pos, rider.trip.pickup)
                };
                assert!(
                    pickup_ms <= rider.deadline_ms,
                    "policy violated the pickup deadline: pickup at {pickup_ms}, deadline {}",
                    rider.deadline_ms
                );
                let ride_ms = self
                    .travel
                    .travel_time_ms(rider.trip.pickup, rider.trip.dropoff);
                let dropoff_ms = pickup_ms + ride_ms;
                let revenue = ride_ms as f64 / 1000.0; // α = 1, cost in seconds
                drivers[di] = DriverState::Busy {
                    until_ms: dropoff_ms,
                    dropoff: rider.trip.dropoff,
                };
                dropoff_heap.push(Reverse((dropoff_ms, a.driver.0)));
                rider_assigned[ri as usize] = true;
                served += 1;
                total_revenue += revenue;
                assignments.push(AssignmentRecord {
                    rider: a.rider,
                    driver: a.driver,
                    batch_ms: now,
                    pickup_ms,
                    dropoff_ms,
                    revenue,
                    driver_idle_ms: now - since_ms,
                    dropoff_region: self.grid.region_of(rider.trip.dropoff),
                    estimated_idle_s: a.estimated_idle_s,
                });
            }
            waiting.retain(|&ri| !rider_assigned[ri as usize]);

            now += self.config.batch_interval_ms;
        }

        // Final accounting: everything admitted but unserved either
        // reneged (deadline before the horizon) or is still waiting;
        // never-admitted late arrivals are classified the same way.
        for &ri in &waiting {
            if riders[ri as usize].deadline_ms < self.config.horizon_ms {
                reneged += 1;
            }
        }
        let mut still_waiting = waiting
            .iter()
            .filter(|&&ri| riders[ri as usize].deadline_ms >= self.config.horizon_ms)
            .count();
        for r in &riders[next_trip..] {
            if r.deadline_ms < self.config.horizon_ms {
                reneged += 1;
            } else {
                still_waiting += 1;
            }
        }
        debug_assert_eq!(served + reneged + still_waiting, riders.len());

        SimResult {
            policy: policy.name(),
            total_revenue,
            served,
            reneged,
            total_riders: riders.len(),
            still_waiting,
            batch_time,
            batches,
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Assignment;
    use mrvd_spatial::ConstantSpeedModel;

    /// Assigns every rider to the nearest valid free driver, greedily in
    /// rider order — a minimal reference policy for engine tests.
    struct FirstFit;

    impl DispatchPolicy for FirstFit {
        fn name(&self) -> String {
            "first-fit".into()
        }

        fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
            let mut taken = std::collections::HashSet::new();
            let mut out = Vec::new();
            for r in ctx.riders {
                let best = ctx
                    .drivers
                    .iter()
                    .filter(|d| !taken.contains(&d.id) && ctx.is_valid_pair(r, d))
                    .min_by_key(|d| ctx.travel.travel_time_ms(d.pos, r.pickup));
                if let Some(d) = best {
                    taken.insert(d.id);
                    out.push(Assignment {
                        rider: r.id,
                        driver: d.id,
                        estimated_idle_s: None,
                    });
                }
            }
            out
        }
    }

    /// A policy that never assigns anyone.
    struct Idle;

    impl DispatchPolicy for Idle {
        fn name(&self) -> String {
            "idle".into()
        }
        fn assign(&mut self, _ctx: &BatchContext<'_>) -> Vec<Assignment> {
            Vec::new()
        }
    }

    fn mk_trips(n: usize) -> Vec<TripRecord> {
        (0..n)
            .map(|i| {
                let pickup = Point::new(
                    -73.98 + (i % 7) as f64 * 0.002,
                    40.74 + (i % 5) as f64 * 0.002,
                );
                TripRecord {
                    id: i as u64,
                    request_ms: (i as u64) * 20_000,
                    pickup,
                    // Short local rides keep drivers within reach of later
                    // pickups, so fleets get reused across orders.
                    dropoff: Point::new(pickup.lon + 0.008, pickup.lat + 0.004),
                }
            })
            .collect()
    }

    fn run(policy: &mut dyn DispatchPolicy, n_trips: usize, n_drivers: usize) -> SimResult {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 3_600_000, // one hour is enough for these tests
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let trips = mk_trips(n_trips);
        let drivers: Vec<Point> = (0..n_drivers)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        sim.run(&trips, &drivers, policy)
    }

    #[test]
    fn conservation_of_riders() {
        let res = run(&mut FirstFit, 120, 10);
        assert_eq!(
            res.served + res.reneged + res.still_waiting,
            res.total_riders
        );
        assert!(res.served > 0);
    }

    #[test]
    fn revenue_equals_sum_of_assignment_revenues() {
        let res = run(&mut FirstFit, 80, 8);
        let sum: f64 = res.assignments.iter().map(|a| a.revenue).sum();
        assert!((res.total_revenue - sum).abs() < 1e-9);
    }

    #[test]
    fn idle_policy_serves_nobody_and_everyone_reneges() {
        let res = run(&mut Idle, 50, 10);
        assert_eq!(res.served, 0);
        // Horizon (1 h) far exceeds every deadline (≤ ~190 s after a
        // request in the first 1000 s), so all riders reneged.
        assert_eq!(res.reneged, 50);
        assert_eq!(res.still_waiting, 0);
    }

    #[test]
    fn pickups_meet_deadlines_and_timelines_are_ordered() {
        let res = run(&mut FirstFit, 100, 6);
        for a in &res.assignments {
            assert!(a.batch_ms <= a.pickup_ms);
            assert!(a.pickup_ms <= a.dropoff_ms);
        }
    }

    #[test]
    fn drivers_are_never_double_booked() {
        let res = run(&mut FirstFit, 150, 5);
        // Per driver, busy intervals [batch, dropoff] must not overlap.
        let mut per_driver: std::collections::HashMap<DriverId, Vec<(Millis, Millis)>> =
            std::collections::HashMap::new();
        for a in &res.assignments {
            per_driver
                .entry(a.driver)
                .or_default()
                .push((a.batch_ms, a.dropoff_ms));
        }
        for intervals in per_driver.values() {
            for w in intervals.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "overlapping busy intervals {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&mut FirstFit, 60, 6);
        let b = run(&mut FirstFit, 60, 6);
        assert_eq!(a.served, b.served);
        assert!((a.total_revenue - b.total_revenue).abs() < 1e-12);
        assert_eq!(a.assignments.len(), b.assignments.len());
    }

    #[test]
    fn no_drivers_means_no_service() {
        let res = run(&mut FirstFit, 30, 0);
        assert_eq!(res.served, 0);
        assert_eq!(res.reneged, 30);
    }

    #[test]
    fn no_trips_is_fine() {
        let res = run(&mut FirstFit, 0, 5);
        assert_eq!(res.total_riders, 0);
        assert_eq!(res.served, 0);
        assert!(res.batches > 0);
    }

    #[test]
    fn longer_batch_interval_serves_fewer_riders() {
        // The Figure 8 effect: larger Δ misses more deadlines.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let trips = mk_trips(200);
        // Drivers inside the pickup lattice so deadlines, not geometry,
        // decide who gets served.
        let drivers: Vec<Point> = (0..4).map(|_| Point::new(-73.974, 40.744)).collect();
        let served_at = |delta: Millis| {
            let sim = Simulator::new(
                SimConfig {
                    batch_interval_ms: delta,
                    horizon_ms: 4_000_000,
                    base_wait_ms: 120_000,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            sim.run(&trips, &drivers, &mut FirstFit).served
        };
        let fast = served_at(3_000);
        let slow = served_at(60_000);
        assert!(
            fast >= slow,
            "Δ=3s served {fast}, Δ=60s served {slow} — larger Δ should not serve more"
        );
    }

    #[test]
    fn busy_drivers_are_visible_with_correct_rejoin_info() {
        // A policy that checks the busy list matches what it assigned.
        struct BusyAuditor {
            expected: std::collections::HashMap<DriverId, (Millis, (i64, i64))>,
            checks: usize,
        }
        impl DispatchPolicy for BusyAuditor {
            fn name(&self) -> String {
                "busy-auditor".into()
            }
            fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
                for b in ctx.busy {
                    let (until, _) = self.expected[&b.id];
                    assert_eq!(b.dropoff_ms, until, "wrong rejoin time exposed");
                    self.checks += 1;
                }
                // Assign the first valid pair and remember its dropoff.
                for r in ctx.riders {
                    for d in ctx.drivers {
                        if ctx.is_valid_pair(r, d) {
                            let pickup = ctx.now_ms + ctx.travel.travel_time_ms(d.pos, r.pickup);
                            let dropoff = pickup + ctx.travel.travel_time_ms(r.pickup, r.dropoff);
                            self.expected.insert(d.id, (dropoff, (0, 0)));
                            return vec![Assignment {
                                rider: r.id,
                                driver: d.id,
                                estimated_idle_s: None,
                            }];
                        }
                    }
                }
                Vec::new()
            }
        }
        let mut auditor = BusyAuditor {
            expected: std::collections::HashMap::new(),
            checks: 0,
        };
        let res = run(&mut auditor, 60, 3);
        assert!(res.served > 0);
        assert!(auditor.checks > 0, "busy drivers never surfaced");
    }

    #[test]
    fn driver_available_since_equals_previous_dropoff() {
        let res = run(&mut FirstFit, 120, 4);
        // For consecutive assignments of a driver, the idle interval of
        // the later one starts exactly at the earlier one's dropoff.
        let mut last_dropoff: std::collections::HashMap<DriverId, Millis> =
            std::collections::HashMap::new();
        let mut verified = 0;
        for a in &res.assignments {
            if let Some(&prev) = last_dropoff.get(&a.driver) {
                assert_eq!(a.batch_ms - a.driver_idle_ms, prev);
                verified += 1;
            }
            last_dropoff.insert(a.driver, a.dropoff_ms);
        }
        assert!(verified > 5, "too few driver reuse events ({verified})");
    }

    #[test]
    fn batch_count_matches_horizon_over_delta() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                batch_interval_ms: 7_000,
                horizon_ms: 100_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let res = sim.run(&[], &[], &mut Idle);
        // Batches at 0, 7s, …, 98s → ceil(100/7) = 15.
        assert_eq!(res.batches, 15);
    }

    #[test]
    fn rider_counted_reneged_even_if_never_admitted() {
        // A rider arriving between the last batch and the horizon with a
        // deadline inside the horizon must still be accounted for.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                batch_interval_ms: 60_000,
                horizon_ms: 120_000,
                base_wait_ms: 10_000,
                wait_noise_ms: (1_000, 2_000),
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let trips = vec![TripRecord {
            id: 0,
            request_ms: 100_000, // after the second (last) batch at 60s
            pickup: Point::new(-73.98, 40.75),
            dropoff: Point::new(-73.95, 40.78),
        }];
        let res = sim.run(&trips, &[], &mut Idle);
        assert_eq!(res.total_riders, 1);
        assert_eq!(res.served + res.reneged + res.still_waiting, 1);
        assert_eq!(res.reneged, 1);
    }

    #[test]
    fn constant_schedule_reproduces_run_exactly() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let config = SimConfig {
            horizon_ms: 3_600_000,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let trips = mk_trips(120);
        let drivers: Vec<Point> = (0..8)
            .map(|i| Point::new(-73.97 - (i % 4) as f64 * 0.003, 40.75))
            .collect();
        let plain = sim.run(&trips, &drivers, &mut FirstFit);
        let scheduled = sim.run_scheduled(
            &trips,
            &drivers,
            &DriverSchedule::constant(drivers.len()),
            &mut FirstFit,
        );
        assert_eq!(plain.served, scheduled.served);
        assert_eq!(plain.reneged, scheduled.reneged);
        assert_eq!(
            plain.total_revenue.to_bits(),
            scheduled.total_revenue.to_bits()
        );
        assert_eq!(plain.assignments.len(), scheduled.assignments.len());
        for (a, b) in plain.assignments.iter().zip(&scheduled.assignments) {
            assert_eq!(
                (a.rider, a.driver, a.pickup_ms),
                (b.rider, b.driver, b.pickup_ms)
            );
        }
    }

    #[test]
    fn ramp_up_brings_pool_drivers_online() {
        // Target 0 drivers for the first 30 min, then 6: nothing can be
        // served before the shift starts, plenty after.
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 3_600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let trips = mk_trips(100);
        let pool: Vec<Point> = (0..6).map(|_| Point::new(-73.974, 40.744)).collect();
        let schedule = DriverSchedule::new(vec![(0, 0), (1_800_000, 6)]);
        let res = sim.run_scheduled(&trips, &pool, &schedule, &mut FirstFit);
        assert!(res.served > 0, "drivers never came online");
        assert!(
            res.assignments.iter().all(|a| a.batch_ms >= 1_800_000),
            "assignment before the shift started"
        );
        // The first 30 minutes of riders (deadline ~190 s) all reneged.
        assert!(res.reneged > 0);
    }

    #[test]
    fn ramp_down_shrinks_the_active_fleet() {
        // A policy that records the largest driver view it ever saw after
        // the ramp-down point.
        struct CountAfter {
            cut_ms: Millis,
            max_seen: usize,
        }
        impl DispatchPolicy for CountAfter {
            fn name(&self) -> String {
                "count-after".into()
            }
            fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
                if ctx.now_ms >= self.cut_ms {
                    self.max_seen = self.max_seen.max(ctx.drivers.len() + ctx.busy.len());
                }
                Vec::new()
            }
        }
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 3_600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        let trips = mk_trips(50);
        let pool: Vec<Point> = (0..10).map(|_| Point::new(-73.974, 40.744)).collect();
        let schedule = DriverSchedule::new(vec![(0, 10), (1_800_000, 3)]);
        let mut counter = CountAfter {
            cut_ms: 1_800_000,
            max_seen: 0,
        };
        let res = sim.run_scheduled(&trips, &pool, &schedule, &mut counter);
        assert_eq!(res.served, 0);
        assert_eq!(counter.max_seen, 3, "fleet did not shrink to the target");
    }

    #[test]
    fn busy_driver_retires_at_dropoff_and_leaves_the_busy_view() {
        // One driver, one long ride; the schedule drops to zero while the
        // ride is in flight. The busy view must empty immediately and the
        // driver must never reappear.
        struct Audit {
            saw_busy_after_cut: bool,
            saw_avail_after_cut: bool,
            cut_ms: Millis,
            assigned: bool,
        }
        impl DispatchPolicy for Audit {
            fn name(&self) -> String {
                "audit".into()
            }
            fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
                if ctx.now_ms >= self.cut_ms {
                    self.saw_busy_after_cut |= !ctx.busy.is_empty();
                    self.saw_avail_after_cut |= !ctx.drivers.is_empty();
                    return Vec::new();
                }
                if !self.assigned {
                    for r in ctx.riders {
                        for d in ctx.drivers {
                            if ctx.is_valid_pair(r, d) {
                                self.assigned = true;
                                return vec![Assignment {
                                    rider: r.id,
                                    driver: d.id,
                                    estimated_idle_s: None,
                                }];
                            }
                        }
                    }
                }
                Vec::new()
            }
        }
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(
            SimConfig {
                horizon_ms: 3_600_000,
                ..SimConfig::default()
            },
            &travel,
            &grid,
        );
        // A single ~25-minute ride posted at t=0.
        let trips = vec![TripRecord {
            id: 0,
            request_ms: 0,
            pickup: Point::new(-73.974, 40.744),
            dropoff: Point::new(-73.90, 40.80),
        }];
        let pool = vec![Point::new(-73.974, 40.744)];
        let schedule = DriverSchedule::new(vec![(0, 1), (60_000, 0)]);
        let mut audit = Audit {
            saw_busy_after_cut: false,
            saw_avail_after_cut: false,
            cut_ms: 60_000,
            assigned: false,
        };
        let res = sim.run_scheduled(&trips, &pool, &schedule, &mut audit);
        assert_eq!(res.served, 1, "the in-flight ride still completes");
        assert!(
            !audit.saw_busy_after_cut,
            "retiring driver stayed in the busy view"
        );
        assert!(
            !audit.saw_avail_after_cut,
            "retired driver rejoined the fleet"
        );
    }

    #[test]
    fn shortage_schedule_increases_reneging() {
        let full = {
            let grid = Grid::nyc_16x16();
            let travel = ConstantSpeedModel::new(8.0);
            let sim = Simulator::new(
                SimConfig {
                    horizon_ms: 3_600_000,
                    ..SimConfig::default()
                },
                &travel,
                &grid,
            );
            let trips = mk_trips(150);
            let pool: Vec<Point> = (0..8).map(|_| Point::new(-73.974, 40.744)).collect();
            let run_with = |schedule: &DriverSchedule| {
                sim.run_scheduled(&trips, &pool, schedule, &mut FirstFit)
                    .reneged
            };
            (
                run_with(&DriverSchedule::constant(8)),
                run_with(&DriverSchedule::new(vec![(0, 8), (900_000, 2)])),
            )
        };
        assert!(
            full.1 > full.0,
            "shortage reneged {} <= full-fleet reneged {}",
            full.1,
            full.0
        );
    }

    #[test]
    #[should_panic(expected = "schedule targets")]
    fn schedule_larger_than_pool_panics() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(SimConfig::default(), &travel, &grid);
        sim.run_scheduled(
            &[],
            &[Point::new(-73.97, 40.75)],
            &DriverSchedule::constant(2),
            &mut Idle,
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trips_panic() {
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::new(8.0);
        let sim = Simulator::new(SimConfig::default(), &travel, &grid);
        let mut trips = mk_trips(3);
        trips.swap(0, 2);
        sim.run(&trips, &[], &mut Idle);
    }
}
