//! Per-region-shard event queues with a lazy tournament head.
//!
//! The engine's event core orders every pending event — dropoffs and
//! rider deadlines — by a globally unique key `(time, priority, id)`.
//! One global `BinaryHeap` over a city-scale day is the last
//! `O(log total_events)`-per-op shared structure left in the hot loop;
//! [`ShardedEventQueue`] partitions it into per-region-band shards
//! (dropoffs land in the shard of their dropoff region, deadlines in the
//! shard of their pickup region) with a small *tournament heap* over the
//! shard heads deciding the global order.
//!
//! Because event keys are globally unique — a driver has at most one
//! outstanding dropoff and a rider exactly one deadline — the minimum
//! over shard minima *is* the global minimum, and the tournament
//! reproduces the single-queue pop order **exactly**: results are
//! bit-identical for any shard count, which the engine-equivalence
//! batteries pin. Cross-shard handoff (an assignment formed in one
//! region pushing a dropoff event into another region's shard) happens
//! only at batch timestamps, where dispatch is already a barrier — the
//! layout phase 1 of a parallel-shard engine needs.
//!
//! The tournament head is *lazily* maintained: pushes add a head entry
//! only when the new key becomes its shard's minimum, and stale head
//! entries (whose key no longer heads its shard) are discarded on the
//! next peek. Each shard heap stays small and cache-warm, so per-op
//! cost is `O(log shard_events + log shards)` instead of
//! `O(log total_events)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::Millis;

/// An event key: `(time, priority, payload id)` — the engine's total
/// event order. Keys are globally unique within one simulation run.
pub type EventKey = (Millis, u8, u32);

/// A sharded min-queue over [`EventKey`]s (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ShardedEventQueue {
    shards: Vec<BinaryHeap<Reverse<EventKey>>>,
    /// Tournament heap of `(time, priority, id, shard)` shard-head
    /// candidates, lazily invalidated (see module docs).
    head: BinaryHeap<Reverse<(Millis, u8, u32, u32)>>,
    len: usize,
}

impl ShardedEventQueue {
    /// An empty queue with `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "ShardedEventQueue: need at least one shard");
        assert!(
            shards <= u32::MAX as usize,
            "ShardedEventQueue: shard count overflows u32"
        );
        Self {
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            head: BinaryHeap::new(),
            len: 0,
        }
    }

    /// The default shard count for a grid with `num_regions` regions:
    /// one shard per band of ~64 regions, clamped to `[1, 1024]` (the
    /// paper's 16×16 world gets 4 shards; a 200×200 city gets 625).
    pub fn auto_shard_count(num_regions: usize) -> usize {
        (num_regions / 64).clamp(1, 1024)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `key` on `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn push(&mut self, key: EventKey, shard: usize) {
        let s = &mut self.shards[shard];
        s.push(Reverse(key));
        if s.peek() == Some(&Reverse(key)) {
            self.head.push(Reverse((key.0, key.1, key.2, shard as u32)));
        }
        self.len += 1;
    }

    /// The globally smallest queued key, discarding stale tournament
    /// entries on the way (hence `&mut`).
    pub fn peek(&mut self) -> Option<EventKey> {
        while let Some(&Reverse((t, pri, id, s))) = self.head.peek() {
            if self.shards[s as usize].peek() == Some(&Reverse((t, pri, id))) {
                return Some((t, pri, id));
            }
            // The key no longer heads its shard (already popped, or
            // superseded by a duplicate head entry): drop and retry.
            self.head.pop();
        }
        debug_assert_eq!(self.len, 0, "live events but an empty tournament");
        None
    }

    /// Removes and returns the globally smallest queued key.
    pub fn pop(&mut self) -> Option<EventKey> {
        let key = self.peek()?;
        // `peek` left a validated entry on top of the tournament.
        let Some(Reverse((_, _, _, s))) = self.head.pop() else {
            unreachable!("peek returned a key but the tournament is empty");
        };
        let shard = &mut self.shards[s as usize];
        let popped = shard.pop();
        debug_assert_eq!(popped, Some(Reverse(key)));
        if let Some(&Reverse((t, pri, id))) = shard.peek() {
            self.head.push(Reverse((t, pri, id, s)));
        }
        self.len -= 1;
        Some(key)
    }
}

/// The engine's event queue: the single global heap (the pre-shard
/// reference path, `event_shards = 1`), the sharded queue, or the
/// sharded queue with a parallel drain pool (`workers > 1`). All three
/// expose the same push/peek/pop surface and produce the same pop
/// order; [`EventQueue::drain_due`] is the batched form the engine's
/// event step uses (sequential layouts pop one by one, the parallel
/// layout fans the due prefixes out to its workers and merges by key).
pub(crate) enum EventQueue<'p> {
    /// One global min-heap — the reference layout.
    Single(BinaryHeap<Reverse<EventKey>>),
    /// Per-region-band shards with a tournament head.
    Sharded(ShardedEventQueue),
    /// Sharded, drained by a persistent worker pool between barriers.
    Parallel(crate::parallel::ParallelQueue<'p>),
}

impl EventQueue<'_> {
    /// A sequential queue with `shards` shards (`<= 1` selects the
    /// single heap; the parallel layout is constructed by the engine
    /// around its worker scope).
    pub fn new(shards: usize) -> Self {
        if shards <= 1 {
            EventQueue::Single(BinaryHeap::new())
        } else {
            EventQueue::Sharded(ShardedEventQueue::new(shards))
        }
    }

    /// The shard count of this layout (`1` for the single heap).
    pub fn num_shards(&self) -> usize {
        match self {
            EventQueue::Single(_) => 1,
            EventQueue::Sharded(q) => q.num_shards(),
            EventQueue::Parallel(q) => q.num_shards(),
        }
    }

    /// Queues `key`; `shard` is ignored by the single-heap layout.
    pub fn push(&mut self, key: EventKey, shard: usize) {
        match self {
            EventQueue::Single(h) => h.push(Reverse(key)),
            EventQueue::Sharded(q) => q.push(key, shard),
            EventQueue::Parallel(q) => q.push(key, shard),
        }
    }

    /// The smallest queued key.
    pub fn peek(&mut self) -> Option<EventKey> {
        match self {
            EventQueue::Single(h) => h.peek().map(|&Reverse(k)| k),
            EventQueue::Sharded(q) => q.peek(),
            EventQueue::Parallel(q) => q.peek(),
        }
    }

    /// Removes and returns the smallest queued key.
    pub fn pop(&mut self) -> Option<EventKey> {
        match self {
            EventQueue::Single(h) => h.pop().map(|Reverse(k)| k),
            EventQueue::Sharded(q) => q.pop(),
            EventQueue::Parallel(q) => q.pop(),
        }
    }

    /// Pops every key `< cutoff` and applies them in global key order.
    /// The sequential layouts pop one by one — provably the same as the
    /// engine's old interleaved peek-min loop; the parallel layout
    /// drains shards concurrently and merges (see `parallel.rs`).
    pub fn drain_due(&mut self, cutoff: EventKey, apply: &mut dyn FnMut(EventKey)) {
        match self {
            EventQueue::Single(h) => {
                while let Some(&Reverse(key)) = h.peek() {
                    if key >= cutoff {
                        break;
                    }
                    h.pop();
                    apply(key);
                }
            }
            EventQueue::Sharded(q) => {
                while let Some(key) = q.peek() {
                    if key >= cutoff {
                        break;
                    }
                    q.pop();
                    apply(key);
                }
            }
            EventQueue::Parallel(q) => q.drain_due(cutoff, apply),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_queue_peeks_and_pops_none() {
        let mut q = ShardedEventQueue::new(4);
        assert_eq!(q.peek(), None);
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.num_shards(), 4);
    }

    #[test]
    fn pops_in_global_key_order_across_shards() {
        let mut q = ShardedEventQueue::new(3);
        q.push((50, 0, 1), 2);
        q.push((10, 2, 7), 0);
        q.push((10, 0, 3), 1);
        q.push((30, 1, 2), 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek(), Some((10, 0, 3)));
        assert_eq!(q.pop(), Some((10, 0, 3)));
        assert_eq!(q.pop(), Some((10, 2, 7)));
        assert_eq!(q.pop(), Some((30, 1, 2)));
        assert_eq!(q.pop(), Some((50, 0, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_pushes_and_pops_keep_order() {
        let mut q = ShardedEventQueue::new(2);
        q.push((5, 0, 0), 0);
        q.push((1, 0, 1), 1);
        assert_eq!(q.pop(), Some((1, 0, 1)));
        // A later push below the current shard-0 head must win the
        // tournament immediately.
        q.push((2, 0, 2), 0);
        assert_eq!(q.pop(), Some((2, 0, 2)));
        q.push((3, 0, 3), 1);
        assert_eq!(q.pop(), Some((3, 0, 3)));
        assert_eq!(q.pop(), Some((5, 0, 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn auto_shard_count_bands_regions() {
        assert_eq!(ShardedEventQueue::auto_shard_count(1), 1);
        assert_eq!(ShardedEventQueue::auto_shard_count(256), 4);
        assert_eq!(ShardedEventQueue::auto_shard_count(64 * 64), 64);
        assert_eq!(ShardedEventQueue::auto_shard_count(200 * 200), 625);
        assert_eq!(ShardedEventQueue::auto_shard_count(10_000_000), 1024);
    }

    proptest! {
        /// The tentpole equivalence: under random interleavings of
        /// unique-key pushes and pops, the sharded queue reproduces a
        /// single global heap's pop order exactly, for any shard count
        /// and shard assignment.
        #[test]
        fn matches_single_heap_pop_order(seed in 0u64..50, shards in 1usize..9, n_ops in 1usize..200) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD);
            let mut sharded = ShardedEventQueue::new(shards);
            let mut single: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
            let mut next_id = 0u32;
            for _ in 0..n_ops {
                if rng.gen_range(0u32..3) < 2 {
                    // Unique ids make keys globally unique even when
                    // times and priorities collide.
                    let key = (rng.gen_range(0u64..40), rng.gen_range(0u8..3), next_id);
                    next_id += 1;
                    single.push(Reverse(key));
                    sharded.push(key, rng.gen_range(0..shards));
                } else {
                    prop_assert_eq!(sharded.peek(), single.peek().map(|&Reverse(k)| k));
                    prop_assert_eq!(sharded.pop(), single.pop().map(|Reverse(k)| k));
                }
                prop_assert_eq!(sharded.len(), single.len());
            }
            // Drain: the tails must agree too.
            while let Some(k) = sharded.pop() {
                prop_assert_eq!(Some(k), single.pop().map(|Reverse(k)| k));
            }
            prop_assert!(single.is_empty());
        }
    }
}
