//! Piecewise-constant driver supply schedules.
//!
//! The paper evaluates fixed fleets, but real platforms see supply move:
//! shift changes around 16:00, overnight thinning, weekend patterns.
//! A [`DriverSchedule`] declares the *target* fleet size as a step
//! function of time; the engine activates drivers from its pool and
//! retires them (idle drivers immediately, busy drivers at their next
//! dropoff) to track the target.

use crate::types::Millis;

/// A piecewise-constant target fleet size: a sorted list of
/// `(from_ms, drivers)` phases, the first starting at time 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverSchedule {
    phases: Vec<(Millis, usize)>,
}

impl DriverSchedule {
    /// A constant fleet of `n` drivers — the paper's fixed-fleet setting.
    pub fn constant(n: usize) -> Self {
        Self {
            phases: vec![(0, n)],
        }
    }

    /// Builds a schedule from `(from_ms, drivers)` phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty, does not start at time 0, or has
    /// non-increasing phase start times.
    pub fn new(phases: Vec<(Millis, usize)>) -> Self {
        assert!(!phases.is_empty(), "DriverSchedule: no phases");
        assert_eq!(
            phases[0].0, 0,
            "DriverSchedule: the first phase must start at time 0"
        );
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "DriverSchedule: phase start times must be strictly increasing"
        );
        Self { phases }
    }

    /// The phases, sorted by start time.
    pub fn phases(&self) -> &[(Millis, usize)] {
        &self.phases
    }

    /// The target fleet size at `now_ms` (the last phase that started).
    pub fn target_at(&self, now_ms: Millis) -> usize {
        self.phases
            .iter()
            .take_while(|&&(from, _)| from <= now_ms)
            .last()
            .expect("first phase starts at 0")
            .1
    }

    /// The largest target over all phases — the pool size the engine
    /// needs to honor the schedule.
    pub fn max_drivers(&self) -> usize {
        self.phases.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }

    /// Whether the target ever changes.
    pub fn is_constant(&self) -> bool {
        self.phases.iter().all(|&(_, n)| n == self.phases[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_flat() {
        let s = DriverSchedule::constant(40);
        assert_eq!(s.target_at(0), 40);
        assert_eq!(s.target_at(u64::MAX), 40);
        assert_eq!(s.max_drivers(), 40);
        assert!(s.is_constant());
    }

    #[test]
    fn phases_step_at_their_start_times() {
        let s = DriverSchedule::new(vec![(0, 100), (8 * 3_600_000, 150), (16 * 3_600_000, 80)]);
        assert_eq!(s.target_at(0), 100);
        assert_eq!(s.target_at(8 * 3_600_000 - 1), 100);
        assert_eq!(s.target_at(8 * 3_600_000), 150);
        assert_eq!(s.target_at(20 * 3_600_000), 80);
        assert_eq!(s.max_drivers(), 150);
        assert!(!s.is_constant());
    }

    #[test]
    #[should_panic(expected = "start at time 0")]
    fn first_phase_must_start_at_zero() {
        DriverSchedule::new(vec![(5, 10)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_phases_panic() {
        DriverSchedule::new(vec![(0, 10), (100, 20), (100, 30)]);
    }
}
