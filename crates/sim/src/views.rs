//! Live policy-facing batch views, maintained by the event engine.
//!
//! Every executed batch hands the policy three views: waiting riders,
//! available drivers, and busy drivers with rejoin info. Rebuilding them
//! by scanning the full rider table and fleet costs `O(|R| + fleet)` per
//! executed batch — at sub-second Δ, where almost every slot is skipped
//! and the executed ones carry a handful of changes, that scan dominates
//! the engine-side cost. [`BatchViews`] instead maintains the three
//! views *incrementally* at true event times (admission, renege,
//! assignment, dropoff, shift on/off), so an executed batch touches only
//! the entries that actually changed.
//!
//! Each view is a slot-stable vector with an id → slot map: adds append,
//! removes `swap_remove` and patch the one moved entry's slot — both
//! `O(1)`. The price is that view order is *not* id order once a removal
//! has happened; every policy in the workspace is order-insensitive by
//! construction (all tie-breaks are on rider/driver ids, a total order
//! that does not depend on slot positions), and the engine-equivalence
//! batteries pin the resulting `SimResult`s byte-identical to the
//! scan-built id-ordered views of the legacy reference loop.
//!
//! Mirroring [`crate::RegionCounts`] and `mrvd_spatial::RegionIndex`,
//! the struct counts every mutation ([`BatchViews::ops_applied`]) and
//! the entries it touched since the last [`BatchViews::clear_dirty`]
//! ([`BatchViews::entries_dirtied`]), and keeps the from-scratch scan
//! construction alive as [`BatchViews::rebuild_reference`] for
//! differential testing.

use crate::policy::{AvailableDriver, BusyDriver, WaitingRider};
use crate::types::{DriverId, RiderId};

/// Absent-entry sentinel in the id → slot maps.
const NONE: u32 = u32::MAX;

/// Grows `map` on demand and records `slot` for `id`.
fn map_set(map: &mut Vec<u32>, id: u32, slot: u32) {
    if map.len() <= id as usize {
        map.resize(id as usize + 1, NONE);
    }
    map[id as usize] = slot;
}

/// Looks up `id` in `map`, treating out-of-range as absent.
fn map_get(map: &[u32], id: u32) -> Option<usize> {
    match map.get(id as usize) {
        Some(&slot) if slot != NONE => Some(slot as usize),
        _ => None,
    }
}

/// The three live policy-facing views (see module docs).
///
/// Invariants the engine maintains: the waiting view holds exactly the
/// admitted, unassigned, un-reneged riders; the available view exactly
/// the on-shift idle drivers; the busy view exactly the non-retiring
/// in-ride drivers (a retiring driver will not rejoin, so it is not
/// upcoming supply). Each membership mutation is `O(1)`.
#[derive(Debug, Clone, Default)]
pub struct BatchViews {
    waiting: Vec<WaitingRider>,
    avail: Vec<AvailableDriver>,
    busy: Vec<BusyDriver>,
    waiting_slot: Vec<u32>,
    avail_slot: Vec<u32>,
    busy_slot: Vec<u32>,
    ops: u64,
    dirty_entries: usize,
}

impl BatchViews {
    /// Empty views.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one mutation that touched `entries` view entries (the
    /// target, plus the filler an interior `swap_remove` relocated).
    fn touch(&mut self, entries: usize) {
        self.ops += 1;
        self.dirty_entries += entries;
    }

    /// The waiting riders (arbitrary order; see module docs).
    pub fn waiting(&self) -> &[WaitingRider] {
        &self.waiting
    }

    /// The available drivers (arbitrary order).
    pub fn available(&self) -> &[AvailableDriver] {
        &self.avail
    }

    /// The busy, non-retiring drivers (arbitrary order).
    pub fn busy(&self) -> &[BusyDriver] {
        &self.busy
    }

    /// Slot of rider `id` in [`BatchViews::waiting`], `None` if absent.
    pub fn waiting_slot(&self, id: RiderId) -> Option<usize> {
        map_get(&self.waiting_slot, id.0)
    }

    /// Slot of driver `id` in [`BatchViews::available`], `None` if absent.
    pub fn avail_slot(&self, id: DriverId) -> Option<usize> {
        map_get(&self.avail_slot, id.0)
    }

    /// Slot of driver `id` in [`BatchViews::busy`], `None` if absent.
    pub fn busy_slot(&self, id: DriverId) -> Option<usize> {
        map_get(&self.busy_slot, id.0)
    }

    /// A rider starts waiting.
    ///
    /// # Panics
    /// Panics if the rider is already in the waiting view — the engine
    /// admits each rider exactly once, so a duplicate is a state-machine
    /// bug.
    pub fn add_waiting(&mut self, r: WaitingRider) {
        assert!(
            self.waiting_slot(r.id).is_none(),
            "rider {} is already waiting",
            r.id
        );
        map_set(&mut self.waiting_slot, r.id.0, self.waiting.len() as u32);
        self.waiting.push(r);
        self.touch(1);
    }

    /// A rider stops waiting (assigned or reneged), returning the entry.
    ///
    /// # Panics
    /// Panics if the rider is not in the waiting view.
    pub fn remove_waiting(&mut self, id: RiderId) -> WaitingRider {
        let slot = self
            .waiting_slot(id)
            .unwrap_or_else(|| panic!("rider {id} is not waiting"));
        self.waiting_slot[id.0 as usize] = NONE;
        let r = self.waiting.swap_remove(slot);
        let mut entries = 1;
        if let Some(moved) = self.waiting.get(slot) {
            self.waiting_slot[moved.id.0 as usize] = slot as u32;
            entries = 2;
        }
        self.touch(entries);
        r
    }

    /// A driver becomes available.
    ///
    /// # Panics
    /// Panics if the driver is already in the available view.
    pub fn add_available(&mut self, d: AvailableDriver) {
        assert!(
            self.avail_slot(d.id).is_none(),
            "driver {} is already available",
            d.id
        );
        map_set(&mut self.avail_slot, d.id.0, self.avail.len() as u32);
        self.avail.push(d);
        self.touch(1);
    }

    /// A driver stops being available (assigned or parked off shift),
    /// returning the entry.
    ///
    /// # Panics
    /// Panics if the driver is not in the available view.
    pub fn remove_available(&mut self, id: DriverId) -> AvailableDriver {
        let slot = self
            .avail_slot(id)
            .unwrap_or_else(|| panic!("driver {id} is not available"));
        self.avail_slot[id.0 as usize] = NONE;
        let d = self.avail.swap_remove(slot);
        let mut entries = 1;
        if let Some(moved) = self.avail.get(slot) {
            self.avail_slot[moved.id.0 as usize] = slot as u32;
            entries = 2;
        }
        self.touch(entries);
        d
    }

    /// A driver starts a ride (or a pending retirement is cancelled,
    /// putting the still-in-flight driver back into upcoming supply).
    ///
    /// # Panics
    /// Panics if the driver is already in the busy view.
    pub fn add_busy(&mut self, b: BusyDriver) {
        assert!(
            self.busy_slot(b.id).is_none(),
            "driver {} is already busy",
            b.id
        );
        map_set(&mut self.busy_slot, b.id.0, self.busy.len() as u32);
        self.busy.push(b);
        self.touch(1);
    }

    /// A driver leaves the busy view (dropped off, or marked to retire
    /// at its dropoff), returning the entry.
    ///
    /// # Panics
    /// Panics if the driver is not in the busy view.
    pub fn remove_busy(&mut self, id: DriverId) -> BusyDriver {
        let slot = self
            .busy_slot(id)
            .unwrap_or_else(|| panic!("driver {id} is not busy"));
        self.busy_slot[id.0 as usize] = NONE;
        let b = self.busy.swap_remove(slot);
        let mut entries = 1;
        if let Some(moved) = self.busy.get(slot) {
            self.busy_slot[moved.id.0 as usize] = slot as u32;
            entries = 2;
        }
        self.touch(entries);
        b
    }

    /// Total mutations applied over the views' lifetime.
    pub fn ops_applied(&self) -> u64 {
        self.ops
    }

    /// View entries touched since the last [`BatchViews::clear_dirty`]:
    /// one per add, one or two per remove (the removed entry, plus the
    /// relocated filler when the removal was interior).
    pub fn entries_dirtied(&self) -> usize {
        self.dirty_entries
    }

    /// Resets the dirtied-entries counter.
    pub fn clear_dirty(&mut self) {
        self.dirty_entries = 0;
    }

    /// The from-scratch scan construction the incremental path replaced,
    /// kept verbatim for differential testing: discards all state and
    /// rebuilds the three views (in the given order) and their slot maps
    /// from full iterations. Counts neither ops nor dirtied entries —
    /// it is the reference, not a maintenance event.
    pub fn rebuild_reference<W, A, B>(&mut self, waiting: W, available: A, busy: B)
    where
        W: IntoIterator<Item = WaitingRider>,
        A: IntoIterator<Item = AvailableDriver>,
        B: IntoIterator<Item = BusyDriver>,
    {
        self.waiting.clear();
        self.avail.clear();
        self.busy.clear();
        self.waiting_slot.clear();
        self.avail_slot.clear();
        self.busy_slot.clear();
        for r in waiting {
            map_set(&mut self.waiting_slot, r.id.0, self.waiting.len() as u32);
            self.waiting.push(r);
        }
        for d in available {
            map_set(&mut self.avail_slot, d.id.0, self.avail.len() as u32);
            self.avail.push(d);
        }
        for b in busy {
            map_set(&mut self.busy_slot, b.id.0, self.busy.len() as u32);
            self.busy.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::Point;

    const P: Point = Point::new(-73.98, 40.75);

    fn rider(id: u32) -> WaitingRider {
        WaitingRider {
            id: RiderId(id),
            pickup: P,
            dropoff: Point::new(-73.95, 40.78),
            request_ms: 1_000 * id as u64,
            deadline_ms: 200_000 + 1_000 * id as u64,
        }
    }

    fn avail(id: u32) -> AvailableDriver {
        AvailableDriver {
            id: DriverId(id),
            pos: P,
            available_since_ms: 10 * id as u64,
        }
    }

    fn busy(id: u32) -> BusyDriver {
        BusyDriver {
            id: DriverId(id),
            dropoff_ms: 60_000 + 100 * id as u64,
            dropoff_pos: P,
        }
    }

    #[test]
    fn membership_follows_mutations() {
        let mut v = BatchViews::new();
        v.add_waiting(rider(3));
        v.add_waiting(rider(0));
        v.add_available(avail(5));
        v.add_busy(busy(1));
        assert_eq!(v.waiting().len(), 2);
        assert_eq!(v.waiting_slot(RiderId(3)), Some(0));
        assert_eq!(v.waiting_slot(RiderId(0)), Some(1));
        assert_eq!(v.waiting_slot(RiderId(7)), None);
        assert_eq!(v.avail_slot(DriverId(5)), Some(0));
        assert_eq!(v.busy_slot(DriverId(1)), Some(0));
        let removed = v.remove_waiting(RiderId(3));
        assert_eq!(removed.id, RiderId(3));
        // The swap filled slot 0 with rider 0; its map entry moved too.
        assert_eq!(v.waiting_slot(RiderId(0)), Some(0));
        assert_eq!(v.waiting_slot(RiderId(3)), None);
        assert_eq!(v.ops_applied(), 5);
    }

    #[test]
    fn interior_removal_dirties_the_relocated_filler_too() {
        let mut v = BatchViews::new();
        for id in 0..3 {
            v.add_available(avail(id));
        }
        assert_eq!(v.entries_dirtied(), 3);
        v.clear_dirty();
        // Removing the middle entry relocates the tail entry: 2 dirtied.
        v.remove_available(DriverId(1));
        assert_eq!(v.entries_dirtied(), 2);
        v.clear_dirty();
        // Removing the last entry relocates nothing: 1 dirtied.
        v.remove_available(DriverId(2));
        assert_eq!(v.entries_dirtied(), 1);
        assert_eq!(v.avail_slot(DriverId(0)), Some(0));
        assert_eq!(v.available().len(), 1);
    }

    #[test]
    fn reentry_after_removal_works() {
        let mut v = BatchViews::new();
        v.add_busy(busy(2));
        v.remove_busy(DriverId(2));
        v.add_available(avail(2));
        let d = v.remove_available(DriverId(2));
        assert_eq!(d.id, DriverId(2));
        v.add_busy(busy(2));
        assert_eq!(v.busy_slot(DriverId(2)), Some(0));
    }

    #[test]
    fn rebuild_reference_resets_state_and_counts_nothing() {
        let mut v = BatchViews::new();
        v.add_waiting(rider(9));
        v.add_available(avail(9));
        let ops = v.ops_applied();
        v.clear_dirty();
        v.rebuild_reference(
            (0..4).map(rider),
            (0..2).map(avail),
            std::iter::once(busy(7)),
        );
        assert_eq!(v.waiting().len(), 4);
        assert_eq!(v.available().len(), 2);
        assert_eq!(v.busy().len(), 1);
        assert_eq!(v.waiting_slot(RiderId(9)), None, "old state discarded");
        assert_eq!(v.avail_slot(DriverId(9)), None);
        assert_eq!(v.waiting_slot(RiderId(2)), Some(2));
        assert_eq!(v.busy_slot(DriverId(7)), Some(0));
        assert_eq!(v.ops_applied(), ops, "the reference scan is not an op");
        assert_eq!(v.entries_dirtied(), 0);
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn duplicate_admission_panics() {
        let mut v = BatchViews::new();
        v.add_waiting(rider(1));
        v.add_waiting(rider(1));
    }

    #[test]
    #[should_panic(expected = "is not available")]
    fn removing_an_absent_driver_panics() {
        let mut v = BatchViews::new();
        v.remove_available(DriverId(0));
    }

    #[test]
    #[should_panic(expected = "is not busy")]
    fn removing_an_absent_busy_driver_panics() {
        let mut v = BatchViews::new();
        v.add_available(avail(0));
        v.remove_busy(DriverId(0));
    }
}
