//! Live per-region batch-state counts, maintained by the event engine.
//!
//! The queueing policies' rate estimators (Eqs. 18–19 of the paper) need
//! three per-region quantities at every batch: waiting riders `|R_k|`,
//! available drivers `|D_k|`, and busy drivers rejoining inside the
//! scheduling window `|D̂_k|`. Recomputing them from full rider / driver /
//! busy scans costs `O(|R| + |D| + |B|)` per executed batch — the dominant
//! rate-estimation cost once candidate generation runs off the live
//! [`mrvd_spatial::RegionIndex`]. Between consecutive batches almost
//! nothing changes, so the engine maintains these counts *incrementally*
//! at true event times (admission, renege, assignment, dropoff, shift
//! on/off) and hands them to policies through
//! [`crate::BatchContext::region_counts`].
//!
//! The rejoining count depends on the policy's scheduling window
//! `[now, now + t_c)`, which the engine does not know; instead of a count
//! the engine keeps each region's **sorted multiset of rejoin (dropoff)
//! times** for the non-retiring busy fleet, and
//! [`RegionCounts::rejoining_between`] answers the window query with two
//! binary searches over a (typically tiny) per-region bucket.
//!
//! Mirroring the live candidate index, a dirty-region set records which
//! regions changed since the last [`RegionCounts::clear_dirty`] and
//! [`RegionCounts::ops_applied`] counts every mutation, so callers can
//! observe how sparse the batch-to-batch change really is
//! ([`crate::SimResult::counts_ops`] /
//! [`crate::SimResult::counts_regions_dirtied`]).

use mrvd_spatial::RegionId;

use crate::types::Millis;

/// Live per-region counts of the batch state (see module docs).
///
/// Invariants the engine maintains: `waiting` mirrors the waiting-rider
/// view by pickup region, `available` mirrors the available-driver view
/// by position region, and the rejoin-time multisets mirror the busy
/// (non-retiring) view by dropoff region — all updated at the same event
/// times as the views themselves.
#[derive(Debug, Clone)]
pub struct RegionCounts {
    waiting: Vec<u32>,
    available: Vec<u32>,
    /// Per-region rejoin (dropoff) timestamps of non-retiring busy
    /// drivers, each bucket sorted ascending.
    rejoin_times: Vec<Vec<Millis>>,
    total_waiting: usize,
    total_available: usize,
    total_rejoining: usize,
    /// Regions whose counts changed since the last
    /// [`RegionCounts::clear_dirty`], deduplicated via `dirty_flag`.
    dirty: Vec<RegionId>,
    dirty_flag: Vec<bool>,
    /// Superset of the regions with any nonzero count (see
    /// [`RegionCounts::occupied_regions`]), deduplicated via `listed`.
    occupied: Vec<RegionId>,
    listed: Vec<bool>,
    /// Amortized-compaction threshold for `occupied`.
    occupied_watermark: usize,
    ops: u64,
}

/// Floor of the occupied-list compaction watermark: lists shorter than
/// this are never compacted, so tiny grids skip the machinery entirely.
const OCCUPIED_WATERMARK_FLOOR: usize = 64;

impl RegionCounts {
    /// Zeroed counts over `num_regions` regions.
    pub fn new(num_regions: usize) -> Self {
        Self {
            waiting: vec![0; num_regions],
            available: vec![0; num_regions],
            rejoin_times: vec![Vec::new(); num_regions],
            total_waiting: 0,
            total_available: 0,
            total_rejoining: 0,
            dirty: Vec::new(),
            dirty_flag: vec![false; num_regions],
            occupied: Vec::new(),
            listed: vec![false; num_regions],
            occupied_watermark: OCCUPIED_WATERMARK_FLOOR,
            ops: 0,
        }
    }

    /// Number of regions tracked.
    pub fn num_regions(&self) -> usize {
        self.waiting.len()
    }

    fn touch(&mut self, r: RegionId) {
        self.ops += 1;
        if !self.dirty_flag[r.idx()] {
            self.dirty_flag[r.idx()] = true;
            self.dirty.push(r);
        }
    }

    /// Enters `r` into the occupied list; called on every `add_*`.
    /// Removals leave the list alone (a stale listing is harmless — all
    /// its counts read zero), and an amortized compaction sweep keeps
    /// the list proportional to the truly occupied set.
    fn list(&mut self, r: RegionId) {
        if !self.listed[r.idx()] {
            self.listed[r.idx()] = true;
            self.occupied.push(r);
            if self.occupied.len() > self.occupied_watermark {
                self.compact_occupied();
            }
        }
    }

    /// Drops listings whose region has no count left, then doubles the
    /// watermark relative to the survivors so compaction stays O(1)
    /// amortized per `add_*`.
    fn compact_occupied(&mut self) {
        let (waiting, available, rejoin_times, listed) = (
            &self.waiting,
            &self.available,
            &self.rejoin_times,
            &mut self.listed,
        );
        self.occupied.retain(|&r| {
            let k = r.idx();
            let live = waiting[k] > 0 || available[k] > 0 || !rejoin_times[k].is_empty();
            if !live {
                listed[k] = false;
            }
            live
        });
        self.occupied_watermark = OCCUPIED_WATERMARK_FLOOR.max(2 * self.occupied.len());
    }

    /// A rider starts waiting in region `r`.
    pub fn add_waiting(&mut self, r: RegionId) {
        self.waiting[r.idx()] += 1;
        self.total_waiting += 1;
        self.touch(r);
        self.list(r);
    }

    /// A rider leaves region `r`'s waiting set (assigned or reneged).
    pub fn remove_waiting(&mut self, r: RegionId) {
        assert!(self.waiting[r.idx()] > 0, "no waiting rider in region {r}");
        self.waiting[r.idx()] -= 1;
        self.total_waiting -= 1;
        self.touch(r);
    }

    /// A driver becomes available in region `r`.
    pub fn add_available(&mut self, r: RegionId) {
        self.available[r.idx()] += 1;
        self.total_available += 1;
        self.touch(r);
        self.list(r);
    }

    /// A driver stops being available in region `r` (assigned or parked).
    pub fn remove_available(&mut self, r: RegionId) {
        assert!(
            self.available[r.idx()] > 0,
            "no available driver in region {r}"
        );
        self.available[r.idx()] -= 1;
        self.total_available -= 1;
        self.touch(r);
    }

    /// A busy driver will rejoin region `r` at `dropoff_ms`.
    pub fn add_rejoining(&mut self, r: RegionId, dropoff_ms: Millis) {
        let bucket = &mut self.rejoin_times[r.idx()];
        let i = bucket.partition_point(|&t| t <= dropoff_ms);
        bucket.insert(i, dropoff_ms);
        self.total_rejoining += 1;
        self.touch(r);
        self.list(r);
    }

    /// Removes one rejoin entry of region `r` at exactly `dropoff_ms`
    /// (the driver dropped off, or was marked to retire there).
    ///
    /// # Panics
    /// Panics if no such entry exists — the engine's event bookkeeping
    /// guarantees one, so a miss is a state-machine bug.
    pub fn remove_rejoining(&mut self, r: RegionId, dropoff_ms: Millis) {
        let bucket = &mut self.rejoin_times[r.idx()];
        let i = bucket.partition_point(|&t| t < dropoff_ms);
        assert!(
            i < bucket.len() && bucket[i] == dropoff_ms,
            "no rejoin entry at {dropoff_ms} in region {r}"
        );
        bucket.remove(i);
        self.total_rejoining -= 1;
        self.touch(r);
    }

    /// Waiting riders per region, `|R_k|`.
    pub fn waiting(&self) -> &[u32] {
        &self.waiting
    }

    /// Available drivers per region, `|D_k|`.
    pub fn available(&self) -> &[u32] {
        &self.available
    }

    /// Busy drivers rejoining region `r` strictly inside the open window
    /// `(after_ms, before_ms)` — the `|D̂_k|` of Algorithm 1 with the
    /// half-open-consistent boundary: a driver dropping off exactly at
    /// `after_ms` (the batch timestamp) is already available, and one at
    /// `before_ms` rejoins only when the window has closed.
    pub fn rejoining_between(&self, r: RegionId, after_ms: Millis, before_ms: Millis) -> u32 {
        let bucket = &self.rejoin_times[r.idx()];
        let lo = bucket.partition_point(|&t| t <= after_ms);
        let hi = bucket.partition_point(|&t| t < before_ms);
        // A degenerate window (before ≤ after) can put `lo` past `hi`
        // when entries sit exactly at `after_ms`; it contains nothing.
        hi.saturating_sub(lo) as u32
    }

    /// Totals `(waiting, available, rejoining)` across all regions —
    /// consumers compare these against the batch views to detect a
    /// hand-built context the counts do not describe.
    pub fn totals(&self) -> (usize, usize, usize) {
        (
            self.total_waiting,
            self.total_available,
            self.total_rejoining,
        )
    }

    /// A superset of the regions with any nonzero count: every region
    /// outside this list has `waiting == 0`, `available == 0` and an
    /// empty rejoin bucket. Listings go stale lazily when a region's
    /// last count drains (compaction reclaims them), so consumers must
    /// treat the list as "possibly occupied" — exactly what a sparse
    /// rate estimator needs, since writing a zero entry is idempotent.
    /// Order is event-history-dependent and carries no meaning.
    pub fn occupied_regions(&self) -> &[RegionId] {
        &self.occupied
    }

    /// Regions whose counts changed since the last
    /// [`RegionCounts::clear_dirty`], in first-dirtied order.
    pub fn dirty_regions(&self) -> &[RegionId] {
        &self.dirty
    }

    /// Resets the dirty-region set.
    pub fn clear_dirty(&mut self) {
        for r in self.dirty.drain(..) {
            self.dirty_flag[r.idx()] = false;
        }
    }

    /// Total mutations applied over the counts' lifetime.
    pub fn ops_applied(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: RegionId = RegionId(0);
    const R1: RegionId = RegionId(1);

    #[test]
    fn counts_follow_mutations_and_totals() {
        let mut c = RegionCounts::new(4);
        c.add_waiting(R0);
        c.add_waiting(R0);
        c.add_available(R1);
        c.add_rejoining(R1, 5_000);
        assert_eq!(c.waiting(), &[2, 0, 0, 0]);
        assert_eq!(c.available(), &[0, 1, 0, 0]);
        assert_eq!(c.totals(), (2, 1, 1));
        c.remove_waiting(R0);
        c.remove_available(R1);
        c.remove_rejoining(R1, 5_000);
        assert_eq!(c.totals(), (1, 0, 0));
        assert_eq!(c.ops_applied(), 7);
    }

    #[test]
    fn rejoining_window_is_open_on_both_ends() {
        let mut c = RegionCounts::new(2);
        for t in [1_000, 3_000, 3_000, 6_000, 9_000] {
            c.add_rejoining(R0, t);
        }
        // (3 000, 9 000): the duplicate 3 000s and the 9 000 boundary are
        // excluded, 6 000 is inside.
        assert_eq!(c.rejoining_between(R0, 3_000, 9_000), 1);
        // (0, 10 000): everything.
        assert_eq!(c.rejoining_between(R0, 0, 10_000), 5);
        // A dropoff exactly at the window start is already available.
        assert_eq!(c.rejoining_between(R0, 1_000, 2_000), 0);
        assert_eq!(c.rejoining_between(R1, 0, 10_000), 0);
        // Degenerate windows (before ≤ after) contain nothing, even with
        // an entry exactly at the start (the scan path also yields 0).
        assert_eq!(c.rejoining_between(R0, 3_000, 3_000), 0);
        assert_eq!(c.rejoining_between(R0, 6_000, 1_000), 0);
    }

    #[test]
    fn remove_rejoining_removes_exactly_one_copy() {
        let mut c = RegionCounts::new(1);
        c.add_rejoining(R0, 2_000);
        c.add_rejoining(R0, 2_000);
        c.remove_rejoining(R0, 2_000);
        assert_eq!(c.rejoining_between(R0, 0, 10_000), 1);
        c.remove_rejoining(R0, 2_000);
        assert_eq!(c.totals(), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "no rejoin entry")]
    fn removing_an_absent_rejoin_entry_panics() {
        let mut c = RegionCounts::new(1);
        c.add_rejoining(R0, 2_000);
        c.remove_rejoining(R0, 3_000);
    }

    #[test]
    fn occupied_list_covers_every_nonzero_region() {
        let mut c = RegionCounts::new(8);
        c.add_waiting(R0);
        c.add_available(R1);
        c.add_rejoining(RegionId(5), 1_000);
        let occupied: Vec<_> = c.occupied_regions().to_vec();
        assert!(occupied.contains(&R0));
        assert!(occupied.contains(&R1));
        assert!(occupied.contains(&RegionId(5)));
        // Removals leave stale listings (lazy), but the guarantee is
        // one-directional: unlisted regions are all-zero.
        c.remove_waiting(R0);
        for k in 0..8 {
            let r = RegionId(k);
            if !c.occupied_regions().contains(&r) {
                assert_eq!(c.waiting()[k as usize], 0);
                assert_eq!(c.available()[k as usize], 0);
                assert_eq!(c.rejoining_between(r, 0, Millis::MAX), 0);
            }
        }
    }

    #[test]
    fn occupied_list_deduplicates_and_compacts() {
        let mut c = RegionCounts::new(512);
        c.add_waiting(R0);
        c.add_waiting(R0);
        c.add_available(R0);
        assert_eq!(c.occupied_regions(), &[R0], "one listing per region");
        // Drain R0, then churn enough distinct regions to trip the
        // watermark: the stale R0 listing must be reclaimed and the
        // list must stay bounded by the live set.
        c.remove_waiting(R0);
        c.remove_waiting(R0);
        c.remove_available(R0);
        for k in 1..=OCCUPIED_WATERMARK_FLOOR as u32 + 4 {
            c.add_waiting(RegionId(k));
            c.remove_waiting(RegionId(k));
        }
        assert!(
            c.occupied_regions().len() <= OCCUPIED_WATERMARK_FLOOR + 4,
            "compaction keeps the list near the live set, got {}",
            c.occupied_regions().len()
        );
        assert!(!c.occupied_regions().contains(&R0));
        // A region re-listed after compaction shows up again.
        c.add_available(R0);
        assert!(c.occupied_regions().contains(&R0));
    }

    #[test]
    fn dirty_set_deduplicates_and_clears() {
        let mut c = RegionCounts::new(4);
        c.add_waiting(R0);
        c.add_available(R0);
        c.add_waiting(R1);
        assert_eq!(c.dirty_regions(), &[R0, R1]);
        c.clear_dirty();
        assert!(c.dirty_regions().is_empty());
        c.remove_waiting(R1);
        assert_eq!(c.dirty_regions(), &[R1]);
    }
}
