//! The literal batch loop of the paper's Algorithm 1, retained as a
//! differential-testing reference for the event-driven core in
//! `engine.rs`.
//!
//! This is the engine the repository shipped before the event core: it
//! wakes every Δ even when nothing happened, re-scans the fleet for
//! schedule drift each tick, and only *observes* reneges and dropoffs at
//! batch boundaries — which quantizes renege timestamps up by as much as
//! Δ (the bug the event core fixes; see
//! [`crate::metrics::RenegeRecord`]). On Δ-aligned inputs both engines
//! produce identical [`SimResult`]s; the equivalence batteries in
//! `mrvd-scenario` and the workspace root pin that.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mrvd_demand::TripRecord;
use mrvd_spatial::Point;
use mrvd_stats::SummaryStats;

use crate::engine::{DriverState, Simulator};
use crate::metrics::{AssignmentRecord, RenegeRecord, SimResult};
use crate::policy::{AvailableDriver, BatchContext, BusyDriver, DispatchPolicy, WaitingRider};
use crate::schedule::DriverSchedule;
use crate::types::{DriverId, RiderId};

impl Simulator<'_> {
    /// Runs one day through the legacy per-Δ batch loop. Semantics match
    /// [`Simulator::run_scheduled`] except for the documented timing
    /// quantizations: renege timestamps round up to the next batch
    /// boundary, shift changes apply at the first batch at-or-after
    /// their phase start, and the policy is invoked at *every* batch
    /// slot ([`SimResult::ticks_executed`] equals
    /// [`SimResult::batches`], and [`SimResult::events_processed`] is 0
    /// since this loop scans instead of queueing events; the index-,
    /// counts- and views-maintenance counters are likewise 0 because no
    /// live structures exist here — policies rebuild their own candidate
    /// index and the loop rebuilds the batch views by full scans every
    /// batch). Counts, revenue and assignments are identical to the
    /// event core on Δ-aligned schedules.
    ///
    /// # Panics
    /// Panics under the same conditions as [`Simulator::run_scheduled`].
    pub fn run_scheduled_reference(
        &self,
        trips: &[TripRecord],
        driver_pool: &[Point],
        schedule: &DriverSchedule,
        policy: &mut dyn DispatchPolicy,
    ) -> SimResult {
        self.assert_inputs(trips, driver_pool, schedule);
        let teleport = policy.teleports_pickup();
        let riders = self.rider_table(trips);

        // Drivers up to the initial target start on shift; the rest of
        // the pool waits offline at its spawn position.
        let initial = schedule.target_at(0);
        let mut drivers: Vec<DriverState> = driver_pool
            .iter()
            .enumerate()
            .map(|(i, &pos)| {
                if i < initial {
                    DriverState::Available { pos, since_ms: 0 }
                } else {
                    DriverState::Offline { pos }
                }
            })
            .collect();
        // Busy drivers marked here retire (go offline) at their dropoff.
        let mut retiring = vec![false; drivers.len()];
        // A constant schedule (the paper's fixed-fleet setting and every
        // `run()` call) never moves drivers on or off shift, so the
        // per-batch online-count scan below can be skipped entirely.
        let track_schedule = !schedule.is_constant();
        let mut dropoff_heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

        let mut waiting: Vec<u32> = Vec::new(); // rider indices
        let mut next_trip = 0usize;
        let mut served = 0usize;
        let mut total_revenue = 0.0f64;
        let mut assignments: Vec<AssignmentRecord> = Vec::new();
        let mut reneges: Vec<RenegeRecord> = Vec::new();
        let mut batch_time = SummaryStats::new();
        let mut batches = 0usize;
        // Scratch flags for validation.
        let mut rider_assigned = vec![false; riders.len()];

        let mut now = 0u64;
        while now < self.config().horizon_ms {
            // 1. Free drivers whose dropoff has passed.
            while let Some(&Reverse((t, d))) = dropoff_heap.peek() {
                if t > now {
                    break;
                }
                dropoff_heap.pop();
                let DriverState::Busy { until_ms, dropoff } = drivers[d as usize] else {
                    unreachable!("heap entry for a non-busy driver");
                };
                debug_assert_eq!(until_ms, t);
                drivers[d as usize] = if retiring[d as usize] {
                    retiring[d as usize] = false;
                    DriverState::Offline { pos: dropoff }
                } else {
                    DriverState::Available {
                        pos: dropoff,
                        since_ms: t,
                    }
                };
            }
            // 1b. Track the schedule target: activate pooled drivers on a
            // ramp-up (cancelling pending retirements first), retire on a
            // ramp-down (idle drivers immediately, busy ones at dropoff).
            if track_schedule {
                let target = schedule.target_at(now);
                let online = drivers
                    .iter()
                    .zip(&retiring)
                    .filter(|(d, &r)| !matches!(d, DriverState::Offline { .. }) && !r)
                    .count();
                if online < target {
                    let mut need = target - online;
                    for r in retiring.iter_mut() {
                        if need == 0 {
                            break;
                        }
                        if *r {
                            *r = false;
                            need -= 1;
                        }
                    }
                    for d in drivers.iter_mut() {
                        if need == 0 {
                            break;
                        }
                        if let DriverState::Offline { pos } = *d {
                            *d = DriverState::Available { pos, since_ms: now };
                            need -= 1;
                        }
                    }
                } else if online > target {
                    let mut excess = online - target;
                    for d in drivers.iter_mut().rev() {
                        if excess == 0 {
                            break;
                        }
                        if let DriverState::Available { pos, .. } = *d {
                            *d = DriverState::Offline { pos };
                            excess -= 1;
                        }
                    }
                    for (d, r) in drivers.iter().zip(retiring.iter_mut()).rev() {
                        if excess == 0 {
                            break;
                        }
                        if matches!(d, DriverState::Busy { .. }) && !*r {
                            *r = true;
                            excess -= 1;
                        }
                    }
                }
            }
            // 2. Admit new riders.
            while next_trip < riders.len() && riders[next_trip].trip.request_ms <= now {
                waiting.push(next_trip as u32);
                next_trip += 1;
            }
            // 3. Renege riders whose deadline passed — charged at the
            // batch boundary, i.e. up to Δ late (the quantization the
            // event core fixes).
            waiting.retain(|&ri| {
                if riders[ri as usize].deadline_ms < now {
                    reneges.push(RenegeRecord {
                        rider: RiderId(ri),
                        request_ms: riders[ri as usize].trip.request_ms,
                        renege_ms: now,
                    });
                    false
                } else {
                    true
                }
            });

            // 4. Build the batch view.
            let waiting_view: Vec<WaitingRider> = waiting
                .iter()
                .map(|&ri| {
                    let r = &riders[ri as usize];
                    WaitingRider {
                        id: RiderId(ri),
                        pickup: r.trip.pickup,
                        dropoff: r.trip.dropoff,
                        request_ms: r.trip.request_ms,
                        deadline_ms: r.deadline_ms,
                    }
                })
                .collect();
            let mut avail_view: Vec<AvailableDriver> = Vec::new();
            let mut busy_view: Vec<BusyDriver> = Vec::new();
            for (i, d) in drivers.iter().enumerate() {
                match *d {
                    DriverState::Available { pos, since_ms } => avail_view.push(AvailableDriver {
                        id: DriverId(i as u32),
                        pos,
                        available_since_ms: since_ms,
                    }),
                    // Retiring drivers will not rejoin, so they are not
                    // upcoming supply and stay out of the busy view.
                    DriverState::Busy { until_ms, dropoff } if !retiring[i] => {
                        busy_view.push(BusyDriver {
                            id: DriverId(i as u32),
                            dropoff_ms: until_ms,
                            dropoff_pos: dropoff,
                        })
                    }
                    DriverState::Busy { .. } | DriverState::Offline { .. } => {}
                }
            }
            let ctx = BatchContext {
                now_ms: now,
                riders: &waiting_view,
                drivers: &avail_view,
                busy: &busy_view,
                travel: self.travel(),
                grid: self.grid(),
                // The reference loop maintains no live index: policies
                // fall back to their per-batch candidate-index rebuild,
                // which is exactly the differential this loop exists for.
                avail_index: None,
                region_counts: None,
                views: None,
            };

            // 5. Run the policy, timed.
            // lint:allow(D002): feeds only the batch_time telemetry column, never simulated results
            let t0 = std::time::Instant::now();
            let batch_assignments = policy.assign(&ctx);
            batch_time.push(t0.elapsed().as_secs_f64());
            batches += 1;

            // 6. Validate and apply.
            let mut driver_taken: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for a in &batch_assignments {
                let ri = a.rider.0;
                assert!(
                    (ri as usize) < riders.len()
                        && waiting.contains(&ri)
                        && !rider_assigned[ri as usize],
                    "policy assigned unknown or unavailable rider {}",
                    a.rider
                );
                let di = a.driver.0 as usize;
                assert!(
                    di < drivers.len(),
                    "policy assigned unknown driver {}",
                    a.driver
                );
                let DriverState::Available { pos, since_ms } = drivers[di] else {
                    match drivers[di] {
                        DriverState::Busy { .. } => {
                            panic!("policy assigned busy driver {}", a.driver)
                        }
                        _ => panic!("policy assigned offline driver {}", a.driver),
                    }
                };
                assert!(
                    driver_taken.insert(a.driver.0),
                    "policy assigned driver {} twice in one batch",
                    a.driver
                );
                let rider = &riders[ri as usize];
                let pickup_ms = if teleport {
                    now
                } else {
                    now + self.travel().travel_time_ms(pos, rider.trip.pickup)
                };
                assert!(
                    pickup_ms <= rider.deadline_ms,
                    "policy violated the pickup deadline: pickup at {pickup_ms}, deadline {}",
                    rider.deadline_ms
                );
                let ride_ms = self
                    .travel()
                    .travel_time_ms(rider.trip.pickup, rider.trip.dropoff);
                let dropoff_ms = pickup_ms + ride_ms;
                let revenue = ride_ms as f64 / 1000.0; // α = 1, cost in seconds
                drivers[di] = DriverState::Busy {
                    until_ms: dropoff_ms,
                    dropoff: rider.trip.dropoff,
                };
                dropoff_heap.push(Reverse((dropoff_ms, a.driver.0)));
                rider_assigned[ri as usize] = true;
                served += 1;
                total_revenue += revenue;
                assignments.push(AssignmentRecord {
                    rider: a.rider,
                    driver: a.driver,
                    batch_ms: now,
                    pickup_ms,
                    dropoff_ms,
                    revenue,
                    driver_idle_ms: now - since_ms,
                    dropoff_region: self.grid().region_of(rider.trip.dropoff),
                    estimated_idle_s: a.estimated_idle_s,
                });
            }
            waiting.retain(|&ri| !rider_assigned[ri as usize]);

            now += self.config().batch_interval_ms;
        }

        // Final accounting: everything admitted but unserved either
        // reneged (deadline before the horizon) or is still waiting;
        // never-admitted late arrivals are classified the same way.
        // End-of-day reneges were never observed by a batch, so they
        // carry their exact deadline.
        let horizon = self.config().horizon_ms;
        for &ri in &waiting {
            if riders[ri as usize].deadline_ms < horizon {
                reneges.push(RenegeRecord {
                    rider: RiderId(ri),
                    request_ms: riders[ri as usize].trip.request_ms,
                    renege_ms: riders[ri as usize].deadline_ms,
                });
            }
        }
        let mut still_waiting = waiting
            .iter()
            .filter(|&&ri| riders[ri as usize].deadline_ms >= horizon)
            .count();
        for (i, r) in riders.iter().enumerate().skip(next_trip) {
            if r.deadline_ms < horizon {
                reneges.push(RenegeRecord {
                    rider: RiderId(i as u32),
                    request_ms: r.trip.request_ms,
                    renege_ms: r.deadline_ms,
                });
            } else {
                still_waiting += 1;
            }
        }
        let reneged = reneges.len();
        debug_assert_eq!(served + reneged + still_waiting, riders.len());

        SimResult {
            policy: policy.name(),
            total_revenue,
            served,
            reneged,
            total_riders: riders.len(),
            still_waiting,
            batch_time,
            batches,
            ticks_executed: batches,
            events_processed: 0,
            index_ops: 0,
            index_regions_dirtied: 0,
            index_rebuilds_avoided: 0,
            counts_ops: 0,
            counts_regions_dirtied: 0,
            views_ops: 0,
            views_entries_dirtied: 0,
            views_rebuilds_avoided: 0,
            assignments,
            reneges,
        }
    }
}
