//! Discrete-event car-hailing simulator.
//!
//! Reproduces the paper's online environment (§3.2, §6.2): riders post
//! orders over a day, wait at most `τ_i = t_i + τ + U[1s,10s]` for a
//! pickup and renege otherwise; drivers serve one order at a time and
//! rejoin the platform at the destination of their last order; the
//! platform runs a batch assignment every Δ seconds through a pluggable
//! [`DispatchPolicy`].
//!
//! The simulator is deterministic given its seed, enforces the paper's
//! validity constraint (Definition 3: the driver must reach the pickup
//! before the deadline) on every assignment a policy returns, and records
//! everything the evaluation needs: revenue, served/reneged counts,
//! per-assignment idle intervals (for Table 3) and per-batch wall-clock
//! times (for Figures 7b–10b).

pub mod engine;
pub mod metrics;
pub mod policy;
pub mod schedule;
pub mod types;

pub use engine::{SimConfig, Simulator};
pub use metrics::{AssignmentRecord, SimResult};
pub use policy::{
    Assignment, AvailableDriver, BatchContext, BusyDriver, DispatchPolicy, WaitingRider,
};
pub use schedule::DriverSchedule;
pub use types::{DriverId, Millis, RiderId};
