//! Discrete-event car-hailing simulator.
//!
//! Reproduces the paper's online environment (§3.2, §6.2): riders post
//! orders over a day, wait at most `τ_i = t_i + τ + U[1s,10s]` for a
//! pickup and renege otherwise; drivers serve one order at a time and
//! rejoin the platform at the destination of their last order; the
//! platform runs a batch assignment every Δ seconds through a pluggable
//! [`DispatchPolicy`].
//!
//! The engine is a true discrete-event core: arrivals, reneges, dropoffs
//! and shift changes live on one time-ordered event queue and are
//! applied at their exact timestamps, while the policy still runs at the
//! paper's batch boundaries — batch slots where nothing changed are
//! skipped entirely (see `engine`). Alongside the driver states the
//! engine maintains a live [`mrvd_spatial::RegionIndex`] of the
//! available fleet, live per-region batch-state counts
//! ([`RegionCounts`]: waiting riders, available drivers, rejoin-time
//! multisets), and the live policy-facing batch views themselves
//! ([`BatchViews`]: the waiting / available / busy slices with id→slot
//! maps), all updated incrementally at those same event times and
//! exposed to policies via [`BatchContext::avail_index`] /
//! [`BatchContext::region_counts`] / [`BatchContext::views`], so an
//! executed batch does zero full fleet or rider scans — candidate
//! generation, rate estimation and view construction are all
//! `O(changes)`. The literal per-Δ loop survives as
//! [`Simulator::run_scheduled_reference`] (no skipping, no live index,
//! no live counts, scan-built views) for differential testing.
//!
//! The simulator is deterministic given its seed, enforces the paper's
//! validity constraint (Definition 3: the driver must reach the pickup
//! before the deadline) on every assignment a policy returns, and records
//! everything the evaluation needs: revenue, served/reneged counts,
//! per-assignment idle intervals (for Table 3), exact-time renege
//! records, per-batch wall-clock times (for Figures 7b–10b) and the
//! engine's skip/event counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counts;
pub mod engine;
mod fleet;
pub mod metrics;
pub(crate) mod parallel;
pub mod policy;
pub mod reference;
pub mod schedule;
pub mod shard;
pub mod types;
pub mod views;

pub use counts::RegionCounts;
pub use engine::{SimConfig, Simulator};
pub use metrics::{AssignmentRecord, RenegeRecord, SimResult};
pub use policy::{
    Assignment, AvailableDriver, BatchContext, BusyDriver, DispatchPolicy, WaitingRider,
};
pub use schedule::DriverSchedule;
pub use shard::{EventKey, ShardedEventQueue};
pub use types::{DriverId, Millis, RiderId};
pub use views::BatchViews;
