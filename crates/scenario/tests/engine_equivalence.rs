//! Engine-equivalence battery: the event-driven core and the legacy
//! per-Δ batch loop must produce identical `SimResult`s on every
//! built-in scenario (the built-ins all use Δ-aligned driver phases, so
//! equivalence is exact, not approximate). The differential covers the
//! rate estimator too: `run_scenario` runs the queueing policies on the
//! incremental lazy `RateTracker` fed by the engine's live counts, while
//! `run_scenario_reference` runs them on the verbatim eager
//! `estimate_rates` path — so a bit-identical result pins engine, index
//! and rate paths at once.
//!
//! The default tests run each built-in at reduced volume but the *paper
//! default Δ = 3 s*, so the skip logic is exercised across thousands of
//! batch slots per scenario. The `#[ignore]`d test runs the full-scale
//! acceptance check — all six built-ins × the default policy set — and
//! is executed by CI's `cargo test -- --ignored` pass.

use mrvd_scenario::{
    builtins, run_scenario, run_scenario_configured, run_scenario_reference, ScenarioSpec,
    SweepPolicy,
};
use mrvd_sim::SimResult;

/// Shrinks a built-in to 20% volume/fleet, keeping the default Δ = 3 s,
/// so one debug-mode differential run stays in the low seconds.
fn quick(spec: ScenarioSpec) -> ScenarioSpec {
    spec.scaled(0.2)
}

fn assert_equivalent(name: &str, fast: &SimResult, slow: &SimResult) {
    assert_eq!(fast.served, slow.served, "{name}: served diverged");
    assert_eq!(fast.reneged, slow.reneged, "{name}: reneged diverged");
    assert_eq!(
        fast.still_waiting, slow.still_waiting,
        "{name}: still_waiting diverged"
    );
    assert_eq!(
        fast.total_riders, slow.total_riders,
        "{name}: total_riders diverged"
    );
    assert_eq!(
        fast.total_revenue.to_bits(),
        slow.total_revenue.to_bits(),
        "{name}: revenue diverged ({} vs {})",
        fast.total_revenue,
        slow.total_revenue
    );
    assert_eq!(fast.batches, slow.batches, "{name}: batches diverged");
    assert_eq!(
        fast.assignments.len(),
        slow.assignments.len(),
        "{name}: assignment count diverged"
    );
    for (i, (a, b)) in fast.assignments.iter().zip(&slow.assignments).enumerate() {
        assert_eq!(
            (
                a.rider,
                a.driver,
                a.batch_ms,
                a.pickup_ms,
                a.dropoff_ms,
                a.driver_idle_ms,
                a.revenue.to_bits()
            ),
            (
                b.rider,
                b.driver,
                b.batch_ms,
                b.pickup_ms,
                b.dropoff_ms,
                b.driver_idle_ms,
                b.revenue.to_bits()
            ),
            "{name}: assignment {i} diverged"
        );
    }
    // Same riders renege; the event core charges them at the exact
    // deadline, the legacy loop up to Δ later — never earlier.
    assert_eq!(
        fast.reneges.len(),
        slow.reneges.len(),
        "{name}: renege count diverged"
    );
    let ids = |r: &SimResult| {
        let mut v: Vec<u32> = r.reneges.iter().map(|x| x.rider.0).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(fast), ids(slow), "{name}: reneged riders diverged");
}

fn assert_builtin_equivalent(name: &str, policy: SweepPolicy) {
    let spec = quick(
        builtins()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no builtin named {name}")),
    );
    let workload = spec.materialize();
    let fast = run_scenario(&workload, policy);
    let slow = run_scenario_reference(&workload, policy);
    assert_equivalent(name, &fast, &slow);
    // The event core must actually skip work, not just match: every
    // built-in day has quiet stretches at Δ = 3 s.
    assert!(
        fast.ticks_executed < slow.ticks_executed,
        "{name}: no slot skipped ({} of {})",
        fast.ticks_executed,
        fast.batches
    );
    assert!(fast.events_processed > 0, "{name}: no events processed");
    // The bit-identical result above was produced through the live
    // incremental index (fast) against the per-batch rebuild path
    // (slow, which has no live index) — assert that differential
    // actually happened.
    assert_eq!(
        fast.index_rebuilds_avoided, fast.ticks_executed,
        "{name}: a policy invocation ran without the live index"
    );
    assert!(fast.index_ops > 0, "{name}: index never maintained");
    assert_eq!(slow.index_ops, 0, "{name}: reference loop grew an index");
    assert_eq!(slow.index_rebuilds_avoided, 0);
    // Same story for the live per-region rate counts: maintained (and
    // sparse) under the event core, absent under the reference loop.
    assert!(fast.counts_ops > 0, "{name}: counts never maintained");
    assert!(
        fast.counts_regions_dirtied <= fast.counts_ops,
        "{name}: dirtied regions exceed count mutations"
    );
    assert_eq!(slow.counts_ops, 0, "{name}: reference loop grew counts");
    assert_eq!(slow.counts_regions_dirtied, 0);
    // And for the live batch views: every executed batch ran off them
    // (zero full waiting/available/busy scans), while the reference loop
    // scan-builds its views and reports no live-view activity.
    assert_eq!(
        fast.views_rebuilds_avoided, fast.ticks_executed,
        "{name}: an executed batch fell back to a full scan"
    );
    assert!(fast.views_ops > 0, "{name}: views never maintained");
    assert!(
        fast.views_entries_dirtied <= 2 * fast.views_ops,
        "{name}: dirtied entries exceed view mutations"
    );
    assert_eq!(slow.views_ops, 0, "{name}: reference loop grew views");
    assert_eq!(slow.views_entries_dirtied, 0);
    assert_eq!(slow.views_rebuilds_avoided, 0);
}

#[test]
fn baseline_weekday_matches_reference() {
    assert_builtin_equivalent("baseline-weekday", SweepPolicy::Near);
}

#[test]
fn rush_hour_surge_matches_reference() {
    assert_builtin_equivalent("rush-hour-surge", SweepPolicy::Ltg);
}

#[test]
fn airport_pulse_matches_reference() {
    assert_builtin_equivalent("airport-pulse", SweepPolicy::Near);
}

#[test]
fn rain_slowdown_matches_reference() {
    assert_builtin_equivalent("rain-slowdown", SweepPolicy::Near);
}

#[test]
fn driver_shortage_matches_reference() {
    // The shortage regime keeps riders waiting with no supply — the
    // adversarial case for skip logic and for RAND's per-batch RNG
    // stream (kept aligned via `invoke_every_batch`).
    assert_builtin_equivalent("driver-shortage", SweepPolicy::Rand);
}

#[test]
fn weekend_lull_matches_reference() {
    assert_builtin_equivalent("weekend-lull", SweepPolicy::IrgReal);
}

/// The parallel engine must be worker-count-invariant on every built-in:
/// each scenario (at reduced volume, default Δ = 3 s) runs under
/// workers ∈ {1, 2, 8} on the same materialized workload, and the
/// results must match byte-for-byte — including the exact renege event
/// times, which every worker count charges at the true deadlines.
#[test]
fn builtins_are_worker_count_invariant() {
    for spec in builtins() {
        let spec = quick(spec);
        let workload = spec.materialize();
        let sequential = run_scenario_configured(&workload, SweepPolicy::Near, None, None, Some(1));
        for workers in [2, 8] {
            let parallel =
                run_scenario_configured(&workload, SweepPolicy::Near, None, None, Some(workers));
            let name = format!("{}/workers={workers}", spec.name);
            assert_equivalent(&name, &sequential, &parallel);
            assert_eq!(
                sequential.reneges, parallel.reneges,
                "{name}: worker counts must renege at identical event times"
            );
        }
    }
}

/// The large-grid acceptance check for the sharded event queue: a 64×64
/// grid with a 2 000-driver fleet at Δ = 1 s, run four ways — sharded
/// engine drained by an 8-worker pool, sequential sharded engine (auto
/// shard count), forced single global heap, and the legacy reference
/// loop — must produce identical results. Exact renege comparison
/// between the engine layouts (same event times); relaxed
/// renege-identity against the reference loop (it charges reneges up to
/// Δ later). CI's `--ignored` pass covers it.
#[test]
#[ignore = "large-grid differential run (minutes); cargo test -- --ignored"]
fn large_grid_parallel_matches_sharded_single_queue_and_reference() {
    let mut spec = ScenarioSpec::plain(
        "large-grid",
        "64×64 grid, 2 000 drivers, Δ = 1 s",
        40_000.0,
        2_000,
    );
    spec.grid_cols = 64;
    spec.grid_rows = 64;
    spec.sim.batch_interval_ms = Some(1_000);
    let workload = spec.materialize();
    for policy in [SweepPolicy::Near, SweepPolicy::IrgReal] {
        let name = format!("large-grid/{}", policy.label());
        let parallel = run_scenario_configured(&workload, policy, None, None, Some(8));
        let sharded = run_scenario_configured(&workload, policy, None, None, Some(1));
        let single = run_scenario_configured(&workload, policy, None, Some(1), Some(1));
        assert_equivalent(&name, &parallel, &sharded);
        assert_equivalent(&name, &sharded, &single);
        assert_eq!(
            parallel.reneges, sharded.reneges,
            "{name}: worker counts must renege at identical event times"
        );
        assert_eq!(
            sharded.reneges, single.reneges,
            "{name}: engine layouts must renege at identical event times"
        );
        let reference = run_scenario_reference(&workload, policy);
        assert_equivalent(&name, &sharded, &reference);
    }
}

/// The full-scale acceptance check: all six built-ins at their declared
/// volume, Δ = 3 s, against the default comparison policy set. Takes a
/// few minutes in debug; CI's `--ignored` pass covers it.
#[test]
#[ignore = "full-scale differential run (minutes); cargo test -- --ignored"]
fn all_builtins_match_reference_at_full_scale() {
    for spec in builtins() {
        let workload = spec.materialize();
        for policy in SweepPolicy::default_set() {
            let fast = run_scenario(&workload, policy);
            let slow = run_scenario_reference(&workload, policy);
            assert_equivalent(&format!("{}/{}", spec.name, policy.label()), &fast, &slow);
        }
    }
}
