//! Determinism battery: every built-in scenario must produce
//! byte-identical simulation metrics for the same seed — across repeated
//! runs, and through the sweep runner regardless of worker-thread count.
//! This is what lets BENCH_scenarios.json act as a regression baseline.

use mrvd_scenario::{builtins, run_scenario, sweep, ScenarioSpec, SweepPolicy};
use mrvd_sim::SimResult;

/// Shrinks a built-in so one debug-mode run stays well under a second:
/// 20% volume/fleet and a 30 s batch interval.
fn quick(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec = spec.scaled(0.2);
    spec.sim.batch_interval_ms = Some(30_000);
    spec
}

/// Everything that must match bit-for-bit between two runs.
fn digest(r: &SimResult) -> (usize, usize, usize, usize, u64, usize, usize) {
    (
        r.total_riders,
        r.served,
        r.reneged,
        r.still_waiting,
        r.total_revenue.to_bits(),
        r.assignments.len(),
        r.batches,
    )
}

fn assert_deterministic(name: &str) {
    let spec = quick(
        builtins()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no builtin named {name}")),
    );
    let a = run_scenario(&spec.materialize(), SweepPolicy::Near);
    let b = run_scenario(&spec.materialize(), SweepPolicy::Near);
    assert_eq!(digest(&a), digest(&b), "{name} diverged between runs");
    assert!(a.total_riders > 0, "{name} generated no riders");
}

#[test]
fn baseline_weekday_is_deterministic() {
    assert_deterministic("baseline-weekday");
}

#[test]
fn rush_hour_surge_is_deterministic() {
    assert_deterministic("rush-hour-surge");
}

#[test]
fn airport_pulse_is_deterministic() {
    assert_deterministic("airport-pulse");
}

#[test]
fn rain_slowdown_is_deterministic() {
    assert_deterministic("rain-slowdown");
}

#[test]
fn driver_shortage_is_deterministic() {
    assert_deterministic("driver-shortage");
}

#[test]
fn weekend_lull_is_deterministic() {
    assert_deterministic("weekend-lull");
}

#[test]
fn queueing_policy_is_deterministic_on_the_baseline() {
    // The oracle-backed paper policy exercises a different code path
    // (per-region queue estimates) than the greedy baselines.
    let spec = quick(mrvd_scenario::baseline_weekday());
    let a = run_scenario(&spec.materialize(), SweepPolicy::IrgReal);
    let b = run_scenario(&spec.materialize(), SweepPolicy::IrgReal);
    assert_eq!(digest(&a), digest(&b));
    assert!(a.served > 0);
}

#[test]
fn sweep_metrics_are_independent_of_worker_thread_count() {
    let specs: Vec<ScenarioSpec> = builtins().into_iter().map(quick).collect();
    let policies = [SweepPolicy::Near];
    let one = sweep(&specs, &policies, 1);
    let four = sweep(&specs, &policies, 4);
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.scenario, b.scenario, "cell order changed with threads");
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.served, b.served, "{}: served diverged", a.scenario);
        assert_eq!(a.reneged, b.reneged, "{}: reneged diverged", a.scenario);
        assert_eq!(a.total_riders, b.total_riders);
        assert_eq!(
            a.total_revenue.to_bits(),
            b.total_revenue.to_bits(),
            "{}: revenue diverged",
            a.scenario
        );
    }
}
