//! Materializing a [`ScenarioSpec`] into simulator-ready inputs.

use mrvd_demand::{
    count_trips, sample_driver_positions, DemandSeries, DemandShaper, NycLikeConfig,
    NycLikeGenerator, TripRecord, SLOTS_PER_DAY, SLOT_MS,
};
use mrvd_sim::{DriverSchedule, SimConfig};
use mrvd_spatial::{ConstantSpeedModel, Grid, Point, RegionId, NYC_EXTENT};
use rand::{rngs::StdRng, SeedableRng};

use crate::spec::ScenarioSpec;
use crate::travel::SlowdownModel;

/// Fraction of `[lo, hi)` covered by `[start, end)`.
fn overlap_fraction(lo: u64, hi: u64, start: u64, end: u64) -> f64 {
    let s = lo.max(start);
    let e = hi.min(end);
    if e <= s {
        0.0
    } else {
        (e - s) as f64 / (hi - lo) as f64
    }
}

/// The [`DemandShaper`] a spec induces: surge windows become per-slot
/// rate factors (partial slot overlap interpolates the factor linearly),
/// hotspot injections become per-`(slot, region)` extra Poisson mass.
pub struct ScenarioShaper {
    slot_factor: Vec<f64>,
    /// Row-major `[slot][region]` extra rates.
    extra: Vec<f64>,
    regions: usize,
}

impl ScenarioShaper {
    /// Precomputes the shaping tables of `spec` over `grid`.
    pub fn new(spec: &ScenarioSpec, grid: &Grid) -> Self {
        let regions = grid.num_regions();
        let mut slot_factor = vec![1.0; SLOTS_PER_DAY];
        for (slot, f) in slot_factor.iter_mut().enumerate() {
            let (lo, hi) = (slot as u64 * SLOT_MS, (slot as u64 + 1) * SLOT_MS);
            for s in &spec.surges {
                let frac = overlap_fraction(lo, hi, s.start_ms, s.end_ms);
                *f *= 1.0 + (s.factor - 1.0) * frac;
            }
        }
        let mut extra = vec![0.0; SLOTS_PER_DAY * regions];
        for h in &spec.hotspots {
            let region = grid.region_of(Point::new(h.lon, h.lat));
            let window_ms = (h.end_ms - h.start_ms) as f64;
            for slot in 0..SLOTS_PER_DAY {
                let (lo, hi) = (slot as u64 * SLOT_MS, (slot as u64 + 1) * SLOT_MS);
                let frac = overlap_fraction(lo, hi, h.start_ms, h.end_ms);
                if frac > 0.0 {
                    // Share of the pulse mass landing in this slot.
                    extra[slot * regions + region.idx()] +=
                        h.extra_orders * frac * SLOT_MS as f64 / window_ms;
                }
            }
        }
        Self {
            slot_factor,
            extra,
            regions,
        }
    }
}

impl DemandShaper for ScenarioShaper {
    fn rate_factor(&self, slot: usize, _region: RegionId) -> f64 {
        self.slot_factor[slot % SLOTS_PER_DAY]
    }

    fn extra_rate(&self, slot: usize, region: RegionId) -> f64 {
        self.extra[(slot % SLOTS_PER_DAY) * self.regions + region.idx()]
    }
}

/// Everything a simulator run needs, materialized from one spec:
/// perturbed trips, realized demand counts (for the real oracle), the
/// driver pool + schedule, the decorated travel model and the sim config.
pub struct ScenarioWorkload {
    /// The spec this workload came from.
    pub spec: ScenarioSpec,
    /// The grid.
    pub grid: Grid,
    /// Time-sorted perturbed trips of the scenario day.
    pub trips: Vec<TripRecord>,
    /// Realized per-region per-slot counts of `trips` (one day, day 0).
    pub series: DemandSeries,
    /// Spawn positions for every driver the schedule may put on shift.
    pub driver_pool: Vec<Point>,
    /// The supply schedule.
    pub schedule: DriverSchedule,
    /// The (possibly slowed-down) travel model.
    pub travel: SlowdownModel<ConstantSpeedModel>,
    /// Simulator parameters with the spec's overrides applied.
    pub sim_config: SimConfig,
}

impl ScenarioSpec {
    /// Generates the scenario's workload. Deterministic given the spec
    /// (the spec's seed drives trip generation, driver placement and the
    /// simulator's deadline noise).
    ///
    /// # Panics
    /// Panics if the spec fails [`ScenarioSpec::validate`].
    pub fn materialize(&self) -> ScenarioWorkload {
        self.validate();
        // with_grid on the 16×16 default is identical to new(), so
        // pre-scale-axis workloads stay byte-for-byte unchanged.
        let generator = NycLikeGenerator::with_grid(
            Grid::new(NYC_EXTENT.0, NYC_EXTENT.1, self.grid_cols, self.grid_rows),
            NycLikeConfig {
                orders_per_day: self.orders_per_day,
                seed: self.seed,
                ..NycLikeConfig::default()
            },
        );
        let grid = generator.grid().clone();
        let shaper = ScenarioShaper::new(self, &grid);
        let trips = generator.generate_day_trips_with(self.day, &shaper);
        let series = count_trips(&trips, &grid);
        let schedule = self.driver_schedule();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD21B_EA75_0C4D_1234);
        let driver_pool = sample_driver_positions(&trips, schedule.max_drivers(), &mut rng);
        let defaults = SimConfig::default();
        let sim_config = SimConfig {
            batch_interval_ms: self
                .sim
                .batch_interval_ms
                .unwrap_or(defaults.batch_interval_ms),
            base_wait_ms: self.sim.base_wait_ms.unwrap_or(defaults.base_wait_ms),
            horizon_ms: self.sim.horizon_ms.unwrap_or(defaults.horizon_ms),
            seed: self.seed ^ defaults.seed,
            ..defaults
        };
        ScenarioWorkload {
            spec: self.clone(),
            grid,
            trips,
            series,
            driver_pool,
            schedule,
            travel: SlowdownModel::new(ConstantSpeedModel::default(), self.speed_factor),
            sim_config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{HotspotInjection, SurgeWindow};

    const H: u64 = 3_600_000;

    #[test]
    fn surge_window_multiplies_only_overlapping_slots() {
        let mut spec = ScenarioSpec::plain("s", "", 5_000.0, 50);
        spec.surges.push(SurgeWindow {
            start_ms: 8 * H,
            end_ms: 9 * H,
            factor: 2.0,
        });
        // A second, overlapping surge composes multiplicatively.
        spec.surges.push(SurgeWindow {
            start_ms: 8 * H,
            end_ms: 8 * H + 30 * 60 * 1000,
            factor: 1.5,
        });
        let grid = Grid::nyc_16x16();
        let shaper = ScenarioShaper::new(&spec, &grid);
        let r = RegionId(0);
        assert_eq!(shaper.rate_factor(15, r), 1.0); // 07:30, outside
        assert_eq!(shaper.rate_factor(16, r), 3.0); // 08:00, both windows
        assert_eq!(shaper.rate_factor(17, r), 2.0); // 08:30, first only
        assert_eq!(shaper.rate_factor(18, r), 1.0); // 09:00, outside
    }

    #[test]
    fn partial_overlap_interpolates_the_factor() {
        let mut spec = ScenarioSpec::plain("s", "", 5_000.0, 50);
        spec.surges.push(SurgeWindow {
            start_ms: 8 * H + 15 * 60 * 1000, // 08:15 — half of slot 16
            end_ms: 9 * H,
            factor: 3.0,
        });
        let shaper = ScenarioShaper::new(&spec, &Grid::nyc_16x16());
        assert!((shaper.rate_factor(16, RegionId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_mass_lands_in_its_cell_and_sums_to_the_pulse() {
        let mut spec = ScenarioSpec::plain("s", "", 5_000.0, 50);
        spec.hotspots.push(HotspotInjection {
            lon: -73.790,
            lat: 40.650,
            start_ms: 5 * H + 30 * 60 * 1000,
            end_ms: 7 * H,
            extra_orders: 450.0,
        });
        let grid = Grid::nyc_16x16();
        let shaper = ScenarioShaper::new(&spec, &grid);
        let cell = grid.region_of(Point::new(-73.790, 40.650));
        let total: f64 = (0..SLOTS_PER_DAY).map(|s| shaper.extra_rate(s, cell)).sum();
        assert!((total - 450.0).abs() < 1e-9, "mass {total}");
        // 3 slots of 30 min each → 150 per slot.
        assert!((shaper.extra_rate(11, cell) - 150.0).abs() < 1e-9);
        assert_eq!(shaper.extra_rate(11, RegionId(0)), 0.0);
        assert_eq!(shaper.extra_rate(20, cell), 0.0);
    }

    #[test]
    fn materialize_produces_consistent_workload() {
        let mut spec = ScenarioSpec::plain("m", "", 4_000.0, 60);
        spec.driver_phases.push(crate::spec::DriverPhase {
            from_ms: 16 * H,
            drivers: 90,
        });
        spec.sim.base_wait_ms = Some(120_000);
        let w = spec.materialize();
        assert!(!w.trips.is_empty());
        assert!(w
            .trips
            .windows(2)
            .all(|t| t[0].request_ms <= t[1].request_ms));
        assert_eq!(w.driver_pool.len(), 90, "pool sized to the max phase");
        assert_eq!(w.schedule.max_drivers(), 90);
        assert_eq!(w.sim_config.base_wait_ms, 120_000);
        // Realized counts cover exactly the generated trips.
        assert_eq!(w.series.total() as usize, w.trips.len());
    }

    #[test]
    fn grid_axis_drives_the_materialized_grid() {
        let mut spec = ScenarioSpec::plain("g", "", 2_000.0, 20);
        spec.grid_cols = 32;
        spec.grid_rows = 24;
        let w = spec.materialize();
        assert_eq!(w.grid.num_regions(), 32 * 24);
        assert_eq!(w.grid.min(), Grid::nyc_16x16().min());
        assert_eq!(w.grid.max(), Grid::nyc_16x16().max());
        assert_eq!(w.series.total() as usize, w.trips.len());
        // Same spec on the default grid is the historical workload.
        let default = ScenarioSpec::plain("g", "", 2_000.0, 20).materialize();
        assert_eq!(default.grid.num_regions(), 256);
        assert_ne!(w.trips, default.trips, "grid size perturbs generation");
    }

    #[test]
    fn surged_scenario_generates_more_orders_than_plain() {
        let plain = ScenarioSpec::plain("p", "", 6_000.0, 50).materialize();
        let mut surged_spec = ScenarioSpec::plain("q", "", 6_000.0, 50);
        surged_spec.surges.push(SurgeWindow {
            start_ms: 7 * H,
            end_ms: 10 * H,
            factor: 1.8,
        });
        let surged = surged_spec.materialize();
        assert!(
            surged.trips.len() > plain.trips.len(),
            "surged {} <= plain {}",
            surged.trips.len(),
            plain.trips.len()
        );
    }
}
