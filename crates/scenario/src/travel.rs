//! Travel-speed perturbation: a [`TravelModel`] decorator.

use mrvd_spatial::{Millis, Point, TravelModel};

/// Wraps any travel model and scales its effective speed by a constant
/// factor — rain, snow or congestion slowing the whole network down
/// (`factor < 1`), or free-flowing night traffic speeding it up
/// (`factor > 1`). Travel times scale by `1 / factor`.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownModel<M> {
    inner: M,
    speed_factor: f64,
}

impl<M: TravelModel> SlowdownModel<M> {
    /// Decorates `inner` with a speed multiplier.
    ///
    /// # Panics
    /// Panics unless `speed_factor` is positive and finite.
    pub fn new(inner: M, speed_factor: f64) -> Self {
        assert!(
            speed_factor > 0.0 && speed_factor.is_finite(),
            "SlowdownModel: speed factor must be positive, got {speed_factor}"
        );
        Self {
            inner,
            speed_factor,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The speed multiplier.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }
}

impl<M: TravelModel> TravelModel for SlowdownModel<M> {
    fn travel_time_ms(&self, from: Point, to: Point) -> Millis {
        (self.inner.travel_time_ms(from, to) as f64 / self.speed_factor).round() as Millis
    }

    fn speed_bound_mps(&self) -> Option<f64> {
        self.inner.speed_bound_mps().map(|s| s * self.speed_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::ConstantSpeedModel;

    #[test]
    fn halved_speed_doubles_travel_time() {
        let base = ConstantSpeedModel::new(10.0);
        let rain = SlowdownModel::new(base, 0.5);
        let a = Point::new(-74.0, 40.7);
        let b = Point::new(-73.9, 40.75);
        let t0 = base.travel_time_ms(a, b) as f64;
        let t1 = rain.travel_time_ms(a, b) as f64;
        assert!((t1 / t0 - 2.0).abs() < 0.01, "t1 {t1} vs t0 {t0}");
    }

    #[test]
    fn unit_factor_is_identity() {
        let base = ConstantSpeedModel::new(8.0);
        let same = SlowdownModel::new(base, 1.0);
        let a = Point::new(-74.0, 40.7);
        let b = Point::new(-73.93, 40.82);
        assert_eq!(base.travel_time_ms(a, b), same.travel_time_ms(a, b));
    }

    #[test]
    fn speed_bound_scales_with_the_factor() {
        let m = SlowdownModel::new(ConstantSpeedModel::new(10.0), 0.5);
        assert_eq!(m.speed_bound_mps(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn zero_factor_panics() {
        SlowdownModel::new(ConstantSpeedModel::new(10.0), 0.0);
    }
}
