//! Declarative workload scenarios for the MRVD dispatcher.
//!
//! The paper evaluates on a single NYC-like weekday profile. This crate
//! turns that single workload into a family: a [`ScenarioSpec`] is a
//! JSON-loadable description of a day (see
//! [`ScenarioSpec::from_json_str`] for the schema and a worked example)
//! that composes perturbations on top of the calibrated NYC-like
//! generator —
//!
//! * **surge windows** ([`SurgeWindow`]) — time-boxed demand-rate
//!   multipliers (rush hours, events);
//! * **hotspot injections** ([`HotspotInjection`]) — extra origin mass at
//!   chosen places and times (airport pulses, stadium lettings-out);
//! * **driver schedules** ([`DriverPhase`]) — piecewise fleet sizes with
//!   shift changes, executed by [`mrvd_sim::Simulator::run_scheduled`];
//! * **speed perturbations** ([`SlowdownModel`]) — a [`mrvd_spatial::TravelModel`]
//!   decorator for rain/congestion;
//! * **deadline-tightness overrides** ([`SimOverrides`]) — patience and
//!   batch-interval changes.
//!
//! [`builtins()`] names six ready-made scenarios (baseline weekday, rush
//! surge, airport pulse, rain, driver shortage, weekend lull), and
//! [`sweep()`] runs {policies} × {scenarios} on a scoped worker pool with
//! deterministic, thread-count-independent results. The motivation
//! follows the imbalance regimes studied by Alwan–Ata–Zhou (2023) and
//! the e-hailing queueing-network view of Zhang–Honnappa–Ukkusuri
//! (2018): dispatch quality must be judged across demand/supply regimes,
//! not one lucky weekday.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtins;
pub mod spec;
pub mod sweep;
pub mod travel;
pub mod workload;

pub use builtins::{
    airport_pulse, baseline_weekday, builtins, driver_shortage, rain_slowdown, rush_hour_surge,
    weekend_lull,
};
pub use spec::{DriverPhase, HotspotInjection, ScenarioSpec, SimOverrides, SurgeWindow};
pub use sweep::{
    run_scenario, run_scenario_configured, run_scenario_reference, run_scenario_with_delta, sweep,
    sweep_deltas, SweepCell, SweepPolicy,
};
pub use travel::SlowdownModel;
pub use workload::{ScenarioShaper, ScenarioWorkload};
