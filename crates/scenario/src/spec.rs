//! The declarative scenario specification and its JSON round-trip.

use mrvd_sim::DriverSchedule;
use serde_json::{json, Value};

/// A time-boxed demand-rate multiplier: every `(slot, region)` cell whose
/// slot overlaps `[start_ms, end_ms)` has its Poisson rate multiplied by
/// `factor`, proportionally to the overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct SurgeWindow {
    /// Window start (ms since midnight, inclusive).
    pub start_ms: u64,
    /// Window end (ms since midnight, exclusive).
    pub end_ms: u64,
    /// Rate multiplier inside the window (`> 1` = surge, `< 1` = lull).
    pub factor: f64,
}

/// Extra origin mass injected at one location: `extra_orders` expected
/// additional pickups appear in the grid cell containing `(lon, lat)`,
/// spread over `[start_ms, end_ms)` proportionally to slot overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotInjection {
    /// Hotspot longitude.
    pub lon: f64,
    /// Hotspot latitude.
    pub lat: f64,
    /// Pulse start (ms since midnight, inclusive).
    pub start_ms: u64,
    /// Pulse end (ms since midnight, exclusive).
    pub end_ms: u64,
    /// Expected extra orders over the whole pulse.
    pub extra_orders: f64,
}

/// One phase of the piecewise driver-supply schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverPhase {
    /// Phase start (ms since midnight); the first phase must start at 0.
    pub from_ms: u64,
    /// Target fleet size from `from_ms` until the next phase.
    pub drivers: usize,
}

/// Optional simulator-parameter overrides; `None` keeps the
/// [`mrvd_sim::SimConfig`] default (Δ = 3 s, τ = 180 s, one day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOverrides {
    /// Batch interval Δ override, ms.
    pub batch_interval_ms: Option<u64>,
    /// Deadline-tightness override: base pickup wait τ, ms.
    pub base_wait_ms: Option<u64>,
    /// Horizon override, ms.
    pub horizon_ms: Option<u64>,
}

/// A complete declarative workload scenario: an NYC-like base day plus
/// composable perturbations. Loadable from JSON ([`ScenarioSpec::from_json_str`])
/// and serializable back ([`ScenarioSpec::to_json`]); [`materialize`]
/// turns it into trips, a driver schedule and a travel model ready for
/// the simulator.
///
/// [`materialize`]: ScenarioSpec::materialize
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique short name (table row / JSON file stem).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Base NYC-like order volume before perturbations.
    pub orders_per_day: f64,
    /// Day index of the profile (0 = Monday; selects day-of-week and
    /// weather factors).
    pub day: usize,
    /// Master seed: drives trip generation, driver placement and
    /// deadline noise.
    pub seed: u64,
    /// Grid columns over the NYC extent (the scale axis; 16 = the
    /// paper-faithful default, 200 ≈ city-scale cell sizes).
    pub grid_cols: u32,
    /// Grid rows over the NYC extent.
    pub grid_rows: u32,
    /// Demand surge windows (multiplicative, composable).
    pub surges: Vec<SurgeWindow>,
    /// Spatial hotspot injections (additive origin mass).
    pub hotspots: Vec<HotspotInjection>,
    /// Piecewise driver-supply schedule.
    pub driver_phases: Vec<DriverPhase>,
    /// Travel-speed multiplier (1.0 = nominal, 0.5 = rain halves speed).
    pub speed_factor: f64,
    /// Simulator-parameter overrides.
    pub sim: SimOverrides,
}

impl ScenarioSpec {
    /// A plain weekday with a constant fleet and no perturbations —
    /// the base other scenarios modify.
    pub fn plain(name: &str, description: &str, orders_per_day: f64, drivers: usize) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            orders_per_day,
            day: 0,
            seed: 42,
            grid_cols: 16,
            grid_rows: 16,
            surges: Vec::new(),
            hotspots: Vec::new(),
            driver_phases: vec![DriverPhase {
                from_ms: 0,
                drivers,
            }],
            speed_factor: 1.0,
            sim: SimOverrides::default(),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on non-positive volume or speed factor, inverted windows,
    /// non-positive surge factors, negative injection mass, or an invalid
    /// driver schedule (empty, not starting at 0, or unsorted).
    pub fn validate(&self) {
        assert!(
            self.orders_per_day > 0.0 && self.orders_per_day.is_finite(),
            "{}: orders_per_day must be positive",
            self.name
        );
        assert!(
            self.speed_factor > 0.0 && self.speed_factor.is_finite(),
            "{}: speed_factor must be positive",
            self.name
        );
        assert!(
            self.grid_cols > 0 && self.grid_rows > 0,
            "{}: grid dimensions must be positive",
            self.name
        );
        assert!(
            (self.grid_cols as u64)
                .checked_mul(self.grid_rows as u64)
                .is_some_and(|n| n <= u32::MAX as u64),
            "{}: grid_cols x grid_rows overflows the u32 region-id space",
            self.name
        );
        for s in &self.surges {
            assert!(
                s.start_ms < s.end_ms,
                "{}: inverted surge window",
                self.name
            );
            assert!(
                s.end_ms <= mrvd_demand::DAY_MS,
                "{}: surge window extends past the 24h day",
                self.name
            );
            assert!(
                s.factor > 0.0 && s.factor.is_finite(),
                "{}: surge factor must be positive",
                self.name
            );
        }
        for h in &self.hotspots {
            assert!(
                h.start_ms < h.end_ms,
                "{}: inverted hotspot window",
                self.name
            );
            assert!(
                h.end_ms <= mrvd_demand::DAY_MS,
                "{}: hotspot window extends past the 24h day (its mass would be dropped)",
                self.name
            );
            assert!(
                h.extra_orders >= 0.0 && h.extra_orders.is_finite(),
                "{}: hotspot mass must be non-negative",
                self.name
            );
        }
        // DriverSchedule::new re-checks ordering; this surfaces the
        // scenario name in the panic message.
        assert!(
            !self.driver_phases.is_empty(),
            "{}: no driver phases",
            self.name
        );
        assert_eq!(
            self.driver_phases[0].from_ms, 0,
            "{}: the first driver phase must start at 0",
            self.name
        );
        assert!(
            self.driver_phases
                .windows(2)
                .all(|w| w[0].from_ms < w[1].from_ms),
            "{}: driver phases must be strictly increasing in time",
            self.name
        );
    }

    /// The driver schedule declared by [`ScenarioSpec::driver_phases`].
    pub fn driver_schedule(&self) -> DriverSchedule {
        DriverSchedule::new(
            self.driver_phases
                .iter()
                .map(|p| (p.from_ms, p.drivers))
                .collect(),
        )
    }

    /// A copy with order volume, hotspot mass and driver counts scaled by
    /// `factor` (fleet sizes round, but never to zero). Used to shrink
    /// built-ins for quick tests and to grow them toward paper scale.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scaled: factor must be positive"
        );
        let mut s = self.clone();
        s.orders_per_day *= factor;
        for h in &mut s.hotspots {
            h.extra_orders *= factor;
        }
        for p in &mut s.driver_phases {
            p.drivers = ((p.drivers as f64 * factor).round() as usize).max(1);
        }
        s
    }

    /// Serializes the spec into the JSON schema documented in the README.
    pub fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "description": self.description,
            "orders_per_day": self.orders_per_day,
            "day": self.day,
            "seed": self.seed,
            "grid_cols": self.grid_cols,
            "grid_rows": self.grid_rows,
            "surges": self
                .surges
                .iter()
                .map(|s| json!({
                    "start_ms": s.start_ms,
                    "end_ms": s.end_ms,
                    "factor": s.factor,
                }))
                .collect::<Vec<Value>>(),
            "hotspots": self
                .hotspots
                .iter()
                .map(|h| json!({
                    "lon": h.lon,
                    "lat": h.lat,
                    "start_ms": h.start_ms,
                    "end_ms": h.end_ms,
                    "extra_orders": h.extra_orders,
                }))
                .collect::<Vec<Value>>(),
            "driver_phases": self
                .driver_phases
                .iter()
                .map(|p| json!({ "from_ms": p.from_ms, "drivers": p.drivers }))
                .collect::<Vec<Value>>(),
            "speed_factor": self.speed_factor,
            "sim": json!({
                "batch_interval_ms": self.sim.batch_interval_ms,
                "base_wait_ms": self.sim.base_wait_ms,
                "horizon_ms": self.sim.horizon_ms,
            }),
        })
    }

    /// Deserializes a spec from a parsed JSON value. Unknown and repeated
    /// fields are rejected so typos surface instead of silently
    /// disappearing (the shim's `Value::get` is first-occurrence-wins,
    /// so a duplicated key would otherwise shadow the later value).
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let obj_keys = |v: &Value, allowed: &[&str], what: &str| -> Result<(), String> {
            let Value::Object(fields) = v else {
                return Err(format!("{what}: expected an object"));
            };
            for (i, (k, _)) in fields.iter().enumerate() {
                if !allowed.contains(&k.as_str()) {
                    return Err(format!("{what}: unknown field `{k}`"));
                }
                if fields[..i].iter().any(|(prev, _)| prev == k) {
                    return Err(format!("{what}: duplicate field `{k}`"));
                }
            }
            Ok(())
        };
        obj_keys(
            v,
            &[
                "name",
                "description",
                "orders_per_day",
                "day",
                "seed",
                "grid_cols",
                "grid_rows",
                "surges",
                "hotspots",
                "driver_phases",
                "speed_factor",
                "sim",
            ],
            "scenario",
        )?;
        let f64_field = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric `{key}`"))
        };
        let u64_field = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer `{key}`"))
        };
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing or non-string `name`")?
            .to_string();
        let description = v
            .get("description")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let list = |key: &str| -> Vec<Value> {
            v.get(key)
                .and_then(Value::as_array)
                .map(<[Value]>::to_vec)
                .unwrap_or_default()
        };
        let mut surges = Vec::new();
        for s in list("surges") {
            obj_keys(&s, &["start_ms", "end_ms", "factor"], "surge")?;
            surges.push(SurgeWindow {
                start_ms: u64_field(&s, "start_ms")?,
                end_ms: u64_field(&s, "end_ms")?,
                factor: f64_field(&s, "factor")?,
            });
        }
        let mut hotspots = Vec::new();
        for h in list("hotspots") {
            obj_keys(
                &h,
                &["lon", "lat", "start_ms", "end_ms", "extra_orders"],
                "hotspot",
            )?;
            hotspots.push(HotspotInjection {
                lon: f64_field(&h, "lon")?,
                lat: f64_field(&h, "lat")?,
                start_ms: u64_field(&h, "start_ms")?,
                end_ms: u64_field(&h, "end_ms")?,
                extra_orders: f64_field(&h, "extra_orders")?,
            });
        }
        let mut driver_phases = Vec::new();
        for p in list("driver_phases") {
            obj_keys(&p, &["from_ms", "drivers"], "driver phase")?;
            driver_phases.push(DriverPhase {
                from_ms: u64_field(&p, "from_ms")?,
                drivers: u64_field(&p, "drivers")? as usize,
            });
        }
        if driver_phases.is_empty() {
            // Fail here, in the Result-based loading surface, instead of
            // letting materialize() panic on a structurally empty spec.
            return Err("missing or empty `driver_phases`".into());
        }
        // Optional scalars: absent → default, present-but-wrong-type →
        // error (a mistyped seed must not silently run another workload).
        let opt_u64 = |key: &str, default: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(x) => x.as_u64().ok_or_else(|| format!("non-integer `{key}`")),
            }
        };
        let sim = match v.get("sim") {
            None => SimOverrides::default(),
            Some(s) => {
                obj_keys(
                    s,
                    &["batch_interval_ms", "base_wait_ms", "horizon_ms"],
                    "sim overrides",
                )?;
                let opt = |key: &str| -> Result<Option<u64>, String> {
                    match s.get(key) {
                        None | Some(Value::Null) => Ok(None),
                        Some(x) => x
                            .as_u64()
                            .map(Some)
                            .ok_or_else(|| format!("non-integer sim override `{key}`")),
                    }
                };
                SimOverrides {
                    batch_interval_ms: opt("batch_interval_ms")?,
                    base_wait_ms: opt("base_wait_ms")?,
                    horizon_ms: opt("horizon_ms")?,
                }
            }
        };
        let spec = Self {
            name,
            description,
            orders_per_day: f64_field(v, "orders_per_day")?,
            day: opt_u64("day", 0)? as usize,
            seed: opt_u64("seed", 42)?,
            grid_cols: opt_u64("grid_cols", 16)? as u32,
            grid_rows: opt_u64("grid_rows", 16)? as u32,
            surges,
            hotspots,
            driver_phases,
            speed_factor: match v.get("speed_factor") {
                None => 1.0,
                Some(f) => f.as_f64().ok_or("non-numeric `speed_factor`")?,
            },
            sim,
        };
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Example
    ///
    /// ```
    /// use mrvd_scenario::ScenarioSpec;
    ///
    /// let spec = ScenarioSpec::from_json_str(
    ///     r#"{
    ///         "name": "evening-rush",
    ///         "description": "17:00-19:00 demand surge, rain slowdown",
    ///         "orders_per_day": 5000,
    ///         "surges": [{"start_ms": 61200000, "end_ms": 68400000, "factor": 1.8}],
    ///         "driver_phases": [{"from_ms": 0, "drivers": 120}],
    ///         "speed_factor": 0.8,
    ///         "sim": {"batch_interval_ms": 3000}
    ///     }"#,
    /// )
    /// .unwrap();
    /// assert_eq!(spec.name, "evening-rush");
    /// assert_eq!(spec.driver_phases[0].drivers, 120);
    /// assert_eq!(spec.sim.batch_interval_ms, Some(3_000));
    ///
    /// // Unknown fields are rejected, not silently dropped.
    /// let err = ScenarioSpec::from_json_str(
    ///     r#"{"name": "x", "orders_per_day": 10,
    ///         "driver_phases": [{"from_ms": 0, "drivers": 1}],
    ///         "surge": []}"#,
    /// )
    /// .unwrap_err();
    /// assert!(err.contains("unknown field"));
    /// ```
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = serde_json::from_str(s).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        let mut s = ScenarioSpec::plain("test", "a test spec", 5_000.0, 80);
        s.surges.push(SurgeWindow {
            start_ms: 7 * 3_600_000,
            end_ms: 9 * 3_600_000,
            factor: 1.5,
        });
        s.hotspots.push(HotspotInjection {
            lon: -73.79,
            lat: 40.65,
            start_ms: 6 * 3_600_000,
            end_ms: 7 * 3_600_000,
            extra_orders: 300.0,
        });
        s.driver_phases.push(DriverPhase {
            from_ms: 16 * 3_600_000,
            drivers: 50,
        });
        s.speed_factor = 0.8;
        s.sim.base_wait_ms = Some(120_000);
        s.grid_cols = 32;
        s.grid_rows = 24;
        s
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let spec = sample();
        let text = serde_json::to_string_pretty(&spec.to_json()).unwrap();
        let back = ScenarioSpec::from_json_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn defaults_fill_in_for_missing_optional_fields() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"name": "mini", "orders_per_day": 1000,
                "driver_phases": [{"from_ms": 0, "drivers": 10}]}"#,
        )
        .unwrap();
        assert_eq!(spec.day, 0);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.grid_cols, 16);
        assert_eq!(spec.grid_rows, 16);
        assert_eq!(spec.speed_factor, 1.0);
        assert!(spec.surges.is_empty());
        assert_eq!(spec.sim, SimOverrides::default());
        spec.validate();
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err =
            ScenarioSpec::from_json_str(r#"{"name": "x", "orders_per_day": 1000, "surge": []}"#)
                .unwrap_err();
        assert!(err.contains("unknown field `surge`"), "{err}");
        let err = ScenarioSpec::from_json_str(
            r#"{"name": "x", "orders_per_day": 1000,
                "surges": [{"start_ms": 0, "end_ms": 1, "factr": 2}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown field `factr`"), "{err}");
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        assert!(ScenarioSpec::from_json_str("not json").is_err());
        assert!(ScenarioSpec::from_json_str("{}").is_err()); // no name
        assert!(
            ScenarioSpec::from_json_str(r#"{"name": "x"}"#).is_err(),
            "missing orders_per_day must error"
        );
        let err =
            ScenarioSpec::from_json_str(r#"{"name": "x", "orders_per_day": 1000}"#).unwrap_err();
        assert!(err.contains("driver_phases"), "{err}");
    }

    #[test]
    fn duplicate_fields_are_rejected() {
        let err = ScenarioSpec::from_json_str(
            r#"{"name": "x", "orders_per_day": 1000, "seed": 1, "seed": 7,
                "driver_phases": [{"from_ms": 0, "drivers": 10}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("duplicate field `seed`"), "{err}");
    }

    #[test]
    fn mistyped_optional_scalars_error_instead_of_defaulting() {
        // A string seed must not silently become seed=42 and run a
        // different workload than the author asked for.
        let base = r#"{"name": "x", "orders_per_day": 1000,
                       "driver_phases": [{"from_ms": 0, "drivers": 10}]"#;
        let err =
            ScenarioSpec::from_json_str(&format!("{base}, \"seed\": \"1234\"}}")).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        let err = ScenarioSpec::from_json_str(&format!("{base}, \"day\": 2.5}}")).unwrap_err();
        assert!(err.contains("day"), "{err}");
    }

    #[test]
    #[should_panic(expected = "past the 24h day")]
    fn out_of_day_hotspot_window_fails_validation() {
        let mut s = sample();
        s.hotspots[0].end_ms = 25 * 3_600_000;
        s.validate();
    }

    #[test]
    fn scaled_shrinks_volume_and_fleet_but_not_to_zero() {
        let s = sample().scaled(0.1);
        assert!((s.orders_per_day - 500.0).abs() < 1e-9);
        assert_eq!(s.driver_phases[0].drivers, 8);
        assert_eq!(s.driver_phases[1].drivers, 5);
        assert!((s.hotspots[0].extra_orders - 30.0).abs() < 1e-9);
        let tiny = sample().scaled(0.001);
        assert_eq!(tiny.driver_phases[0].drivers, 1, "fleet never scales to 0");
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn zero_grid_dimension_fails_validation() {
        let mut s = sample();
        s.grid_rows = 0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "overflows the u32 region-id space")]
    fn oversized_grid_fails_validation() {
        let mut s = sample();
        s.grid_cols = 1 << 17;
        s.grid_rows = 1 << 17;
        s.validate();
    }

    #[test]
    fn grid_fields_survive_the_json_round_trip() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"name": "big", "orders_per_day": 1000, "grid_cols": 200, "grid_rows": 200,
                "driver_phases": [{"from_ms": 0, "drivers": 10}]}"#,
        )
        .unwrap();
        assert_eq!((spec.grid_cols, spec.grid_rows), (200, 200));
        let back =
            ScenarioSpec::from_json_str(&serde_json::to_string_pretty(&spec.to_json()).unwrap())
                .unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    #[should_panic(expected = "inverted surge window")]
    fn inverted_surge_window_fails_validation() {
        let mut s = sample();
        s.surges[0].end_ms = 0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "first driver phase")]
    fn driver_phases_must_start_at_zero() {
        let mut s = sample();
        s.driver_phases[0].from_ms = 5;
        s.validate();
    }
}
