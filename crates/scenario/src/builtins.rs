//! The named built-in scenarios.
//!
//! All built-ins share one "CI scale": an ~8K-order day (≈ 1/35 of the
//! paper's 282K-order test day) with a 150-driver baseline fleet — the
//! smallest regime where the paper's policy ordering sits outside
//! realization noise (see `tests/end_to_end.rs`). Use
//! [`ScenarioSpec::scaled`] to grow them toward paper scale or shrink
//! them for quick tests.

use crate::spec::{DriverPhase, HotspotInjection, ScenarioSpec, SurgeWindow};

const H: u64 = 3_600_000;
/// Shared base volume of the built-ins.
const BASE_ORDERS: f64 = 8_000.0;
/// Shared baseline fleet of the built-ins.
const BASE_DRIVERS: usize = 150;

/// An ordinary Monday: the paper's single-profile evaluation setting.
pub fn baseline_weekday() -> ScenarioSpec {
    ScenarioSpec::plain(
        "baseline-weekday",
        "plain Monday, constant fleet, nominal speed",
        BASE_ORDERS,
        BASE_DRIVERS,
    )
}

/// Morning and evening rush-hour surges on top of the weekday curve.
pub fn rush_hour_surge() -> ScenarioSpec {
    let mut s = ScenarioSpec::plain(
        "rush-hour-surge",
        "demand x1.6 07:00-09:30 and x1.5 17:30-20:00",
        BASE_ORDERS,
        BASE_DRIVERS,
    );
    s.surges = vec![
        SurgeWindow {
            start_ms: 7 * H,
            end_ms: 9 * H + H / 2,
            factor: 1.6,
        },
        SurgeWindow {
            start_ms: 17 * H + H / 2,
            end_ms: 20 * H,
            factor: 1.5,
        },
    ];
    s
}

/// Early-morning arrival pulses at the two airports (red-eye landings
/// flooding JFK and LGA with pickup requests before the city wakes up).
pub fn airport_pulse() -> ScenarioSpec {
    let mut s = ScenarioSpec::plain(
        "airport-pulse",
        "extra pickups at JFK and LGA 05:30-07:00",
        BASE_ORDERS,
        BASE_DRIVERS,
    );
    s.hotspots = vec![
        HotspotInjection {
            lon: -73.790,
            lat: 40.650, // JFK
            start_ms: 5 * H + H / 2,
            end_ms: 7 * H,
            extra_orders: 500.0,
        },
        HotspotInjection {
            lon: -73.870,
            lat: 40.770, // LGA
            start_ms: 5 * H + H / 2,
            end_ms: 7 * H,
            extra_orders: 350.0,
        },
    ];
    s
}

/// All-day rain: travel speed drops to 60% of nominal, so every pickup
/// leg and ride takes ~1.7x longer against unchanged deadlines.
pub fn rain_slowdown() -> ScenarioSpec {
    let mut s = ScenarioSpec::plain(
        "rain-slowdown",
        "rain cuts travel speed to 60% all day",
        BASE_ORDERS,
        BASE_DRIVERS,
    );
    s.speed_factor = 0.6;
    s
}

/// Structural under-supply: the fleet starts at 60% of baseline and the
/// 16:00 shift change loses another third of it.
pub fn driver_shortage() -> ScenarioSpec {
    let mut s = ScenarioSpec::plain(
        "driver-shortage",
        "90 drivers, dropping to 60 at the 16:00 shift change",
        BASE_ORDERS,
        90,
    );
    s.driver_phases = vec![
        DriverPhase {
            from_ms: 0,
            drivers: 90,
        },
        DriverPhase {
            from_ms: 16 * H,
            drivers: 60,
        },
    ];
    s
}

/// A slow Sunday: the day-of-week factor shrinks demand and a smaller
/// weekend fleet works with slack deadlines (riders are less hurried).
pub fn weekend_lull() -> ScenarioSpec {
    let mut s = ScenarioSpec::plain(
        "weekend-lull",
        "Sunday demand, 110 drivers, relaxed 240s patience",
        BASE_ORDERS,
        110,
    );
    s.day = 6; // Sunday (DOW factor 0.72)
    s.sim.base_wait_ms = Some(240_000);
    s
}

/// Every built-in scenario, in presentation order.
pub fn builtins() -> Vec<ScenarioSpec> {
    vec![
        baseline_weekday(),
        rush_hour_surge(),
        airport_pulse(),
        rain_slowdown(),
        driver_shortage(),
        weekend_lull(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_validate_and_have_unique_names() {
        let all = builtins();
        assert_eq!(all.len(), 6);
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        for s in &all {
            s.validate();
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate builtin names");
    }

    #[test]
    fn every_builtin_round_trips_through_json() {
        for spec in builtins() {
            let text = serde_json::to_string_pretty(&spec.to_json()).unwrap();
            let back =
                ScenarioSpec::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(spec, back, "{} did not round-trip", spec.name);
        }
    }

    #[test]
    fn shortage_fleet_is_strictly_smaller_than_baseline() {
        let base = baseline_weekday();
        let short = driver_shortage();
        assert!(short.driver_schedule().max_drivers() < base.driver_schedule().max_drivers());
        assert!(!short.driver_schedule().is_constant());
    }
}
