//! The parallel policy × scenario sweep runner.
//!
//! Materializes every scenario once, then runs every `(scenario, policy)`
//! cell on the shared [`mrvd_stats::parallel_map`] worker pool. Results
//! come back in deterministic input order regardless of the worker count.

use mrvd_core::{DemandOracle, DispatchConfig, Ltg, Near, QueueingPolicy, Rand};
use mrvd_sim::{DispatchPolicy, SimResult, Simulator};
use mrvd_stats::parallel_map;

use crate::spec::ScenarioSpec;
use crate::workload::ScenarioWorkload;

/// A policy a sweep can run. Oracle-backed policies use the scenario's
/// *realized* counts (the real oracle), so sweeps measure dispatching,
/// not prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPolicy {
    /// Idle-ratio greedy with the real oracle (the paper's Algorithm 2).
    IrgReal,
    /// Local search with the real oracle (the paper's Algorithm 3).
    LsReal,
    /// The served-orders variant with the real oracle (Appendix C).
    ShortReal,
    /// Long-trip greedy baseline.
    Ltg,
    /// Nearest-trip greedy baseline.
    Near,
    /// Random valid assignment baseline.
    Rand,
}

impl SweepPolicy {
    /// Display label (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            SweepPolicy::IrgReal => "IRG-R",
            SweepPolicy::LsReal => "LS-R",
            SweepPolicy::ShortReal => "SHORT-R",
            SweepPolicy::Ltg => "LTG",
            SweepPolicy::Near => "NEAR",
            SweepPolicy::Rand => "RAND",
        }
    }

    /// The default comparison set: the paper's queueing policy flanked by
    /// its two strongest simple baselines.
    pub fn default_set() -> [SweepPolicy; 3] {
        [SweepPolicy::IrgReal, SweepPolicy::Ltg, SweepPolicy::Near]
    }

    /// Builds the policy against one materialized workload.
    pub fn build(&self, workload: &ScenarioWorkload) -> Box<dyn DispatchPolicy> {
        self.build_with(workload, false)
    }

    /// Like [`SweepPolicy::build`], selecting the queueing policies' rate
    /// path: `reference_rates = true` runs the verbatim eager
    /// `estimate_rates` reference instead of the incremental lazy
    /// `RateTracker` (baselines are unaffected). The equivalence battery
    /// uses it to pin the two paths byte-identical.
    pub fn build_with(
        &self,
        workload: &ScenarioWorkload,
        reference_rates: bool,
    ) -> Box<dyn DispatchPolicy> {
        let oracle = || DemandOracle::real(workload.series.clone(), 0);
        let cfg = || DispatchConfig {
            reference_rates,
            ..DispatchConfig::default()
        };
        match self {
            SweepPolicy::IrgReal => Box::new(QueueingPolicy::irg(cfg(), oracle())),
            SweepPolicy::LsReal => Box::new(QueueingPolicy::ls(cfg(), oracle())),
            SweepPolicy::ShortReal => Box::new(QueueingPolicy::short(cfg(), oracle())),
            SweepPolicy::Ltg => Box::new(Ltg::default()),
            SweepPolicy::Near => Box::new(Near::default()),
            SweepPolicy::Rand => Box::new(Rand::new(workload.spec.seed ^ 0x5EED_1E55)),
        }
    }
}

/// Runs one policy over one materialized scenario on the event core.
pub fn run_scenario(workload: &ScenarioWorkload, policy: SweepPolicy) -> SimResult {
    run_scenario_with_delta(workload, policy, None)
}

/// [`run_scenario`] with an optional batch-interval override — the
/// Δ-sensitivity sweeps rerun one materialized workload at many Δ values
/// without regenerating trips (the workload does not depend on Δ).
pub fn run_scenario_with_delta(
    workload: &ScenarioWorkload,
    policy: SweepPolicy,
    delta_ms: Option<u64>,
) -> SimResult {
    run_scenario_configured(workload, policy, delta_ms, None, None)
}

/// [`run_scenario_with_delta`] with explicit engine-layout overrides:
/// an event-queue shard count (`Some(1)` forces the single global heap,
/// `Some(0)`/`None` keep the config's sharding — `0` = auto-sized to
/// the grid) and a drain worker count (`Some(1)` forces the sequential
/// loop, `Some(0)` asks the OS, `None` keeps the config's). The scale
/// experiments use it to pin the sharded and parallel engines
/// byte-identical to the sequential single-queue layout while comparing
/// their wall times.
pub fn run_scenario_configured(
    workload: &ScenarioWorkload,
    policy: SweepPolicy,
    delta_ms: Option<u64>,
    event_shards: Option<usize>,
    workers: Option<usize>,
) -> SimResult {
    let mut config = workload.sim_config.clone();
    if let Some(delta) = delta_ms {
        config.batch_interval_ms = delta;
    }
    if let Some(shards) = event_shards {
        config.event_shards = shards;
    }
    if let Some(workers) = workers {
        config.workers = workers;
    }
    let sim = Simulator::new(config, &workload.travel, &workload.grid);
    let mut p = policy.build(workload);
    sim.run_scheduled(
        &workload.trips,
        &workload.driver_pool,
        &workload.schedule,
        p.as_mut(),
    )
}

/// Runs one policy over one materialized scenario on the legacy per-Δ
/// batch loop ([`Simulator::run_scheduled_reference`]) — the
/// differential baseline the engine-equivalence battery compares
/// [`run_scenario`] against. The queueing policies also run their
/// *reference* rate path (`reference_rates = true`), so the differential
/// covers both the engine and the rate estimator.
pub fn run_scenario_reference(workload: &ScenarioWorkload, policy: SweepPolicy) -> SimResult {
    let sim = Simulator::new(
        workload.sim_config.clone(),
        &workload.travel,
        &workload.grid,
    );
    let mut p = policy.build_with(workload, true);
    sim.run_scheduled_reference(
        &workload.trips,
        &workload.driver_pool,
        &workload.schedule,
        p.as_mut(),
    )
}

/// One `(scenario, policy)` cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// Policy label.
    pub policy: &'static str,
    /// Batch interval Δ the cell ran at, ms (the scenario's own unless a
    /// Δ-sweep overrode it).
    pub delta_ms: u64,
    /// Riders that entered the platform.
    pub total_riders: usize,
    /// Served riders.
    pub served: usize,
    /// Reneged riders.
    pub reneged: usize,
    /// Served fraction.
    pub service_rate: f64,
    /// Total revenue (seconds of ride time at α = 1).
    pub total_revenue: f64,
    /// Mean wall-clock seconds per batch *slot* inside the policy
    /// (skipped slots charged zero; [`mrvd_sim::SimResult::mean_batch_time_s`]).
    pub batch_time_s: f64,
    /// Mean wall-clock seconds per *executed* batch inside the policy
    /// ([`mrvd_sim::SimResult::mean_executed_batch_time_s`]).
    pub exec_batch_time_s: f64,
    /// Wall-clock seconds for the whole cell (simulation + policy).
    pub wall_s: f64,
    /// Batch slots in the horizon (`⌈horizon / Δ⌉`).
    pub batches: usize,
    /// Batch slots at which the policy actually ran (the event core
    /// skips quiescent slots).
    pub ticks_executed: usize,
    /// Batch slots skipped ([`mrvd_sim::SimResult::ticks_skipped`]).
    pub ticks_skipped: usize,
    /// Skipped fraction of slots ([`mrvd_sim::SimResult::skip_rate`]).
    pub skip_rate: f64,
    /// State-transition events the engine applied at true event times.
    pub events_processed: usize,
    /// Mutations applied to the live availability index
    /// ([`mrvd_sim::SimResult::index_ops`]).
    pub index_ops: usize,
    /// Regions dirtied between consecutive executed batches
    /// ([`mrvd_sim::SimResult::index_regions_dirtied`]).
    pub index_regions_dirtied: usize,
    /// Policy invocations served by the live index instead of a
    /// from-scratch candidate-index rebuild
    /// ([`mrvd_sim::SimResult::index_rebuilds_avoided`]).
    pub index_rebuilds_avoided: usize,
    /// Mutations applied to the live per-region batch-state counts
    /// ([`mrvd_sim::SimResult::counts_ops`]).
    pub counts_ops: usize,
    /// Regions whose live counts changed between consecutive executed
    /// batches ([`mrvd_sim::SimResult::counts_regions_dirtied`]).
    pub counts_regions_dirtied: usize,
    /// Mutations applied to the live batch views
    /// ([`mrvd_sim::SimResult::views_ops`]).
    pub views_ops: usize,
    /// View entries touched between consecutive executed batches
    /// ([`mrvd_sim::SimResult::views_entries_dirtied`]).
    pub views_entries_dirtied: usize,
    /// Executed batches served by the live views instead of full
    /// waiting/available/busy scans
    /// ([`mrvd_sim::SimResult::views_rebuilds_avoided`]).
    pub views_rebuilds_avoided: usize,
}

impl SweepCell {
    /// Builds a cell from one run's [`SimResult`] and wall-clock time.
    fn from_result(
        scenario: String,
        policy: SweepPolicy,
        result: &SimResult,
        wall_s: f64,
        delta_ms: u64,
    ) -> Self {
        SweepCell {
            scenario,
            policy: policy.label(),
            delta_ms,
            total_riders: result.total_riders,
            served: result.served,
            reneged: result.reneged,
            service_rate: result.service_rate(),
            total_revenue: result.total_revenue,
            batch_time_s: result.mean_batch_time_s(),
            exec_batch_time_s: result.mean_executed_batch_time_s(),
            wall_s,
            batches: result.batches,
            ticks_executed: result.ticks_executed,
            ticks_skipped: result.ticks_skipped(),
            skip_rate: result.skip_rate(),
            events_processed: result.events_processed,
            index_ops: result.index_ops,
            index_regions_dirtied: result.index_regions_dirtied,
            index_rebuilds_avoided: result.index_rebuilds_avoided,
            counts_ops: result.counts_ops,
            counts_regions_dirtied: result.counts_regions_dirtied,
            views_ops: result.views_ops,
            views_entries_dirtied: result.views_entries_dirtied,
            views_rebuilds_avoided: result.views_rebuilds_avoided,
        }
    }
}

/// Sweeps `policies` × `specs` on `threads` workers. Each scenario is
/// materialized once; cells are ordered scenario-major (`specs[0]` ×
/// every policy first), and the output order and every metric are
/// independent of `threads`.
pub fn sweep(specs: &[ScenarioSpec], policies: &[SweepPolicy], threads: usize) -> Vec<SweepCell> {
    let workloads: Vec<ScenarioWorkload> =
        parallel_map(specs.to_vec(), threads, |spec| spec.materialize());
    let jobs: Vec<(usize, SweepPolicy)> = (0..workloads.len())
        .flat_map(|w| policies.iter().map(move |&p| (w, p)))
        .collect();
    let workloads_ref = &workloads;
    parallel_map(jobs, threads, |&(w, policy)| {
        let workload = &workloads_ref[w];
        // lint:allow(D002): feeds only the wall_time_s telemetry column, never simulated results
        let t0 = std::time::Instant::now();
        let result = run_scenario(workload, policy);
        SweepCell::from_result(
            workload.spec.name.clone(),
            policy,
            &result,
            t0.elapsed().as_secs_f64(),
            workload.sim_config.batch_interval_ms,
        )
    })
}

/// The Δ-sensitivity sweep (paper Fig. 8 territory, pushed sub-second):
/// every `(scenario, policy, Δ)` cell reruns the *same* materialized
/// workload — trips, fleet, deadlines and seeds do not depend on Δ — with
/// the batch interval overridden, so differences across a row are purely
/// batching effects. Cells are ordered scenario-major, then policy, then
/// Δ in the given order; like [`sweep`], output order and every metric
/// are independent of `threads`.
pub fn sweep_deltas(
    specs: &[ScenarioSpec],
    policies: &[SweepPolicy],
    deltas_ms: &[u64],
    threads: usize,
) -> Vec<SweepCell> {
    assert!(deltas_ms.iter().all(|&d| d > 0), "Δ must be positive");
    let workloads: Vec<ScenarioWorkload> =
        parallel_map(specs.to_vec(), threads, |spec| spec.materialize());
    let jobs: Vec<(usize, SweepPolicy, u64)> = (0..workloads.len())
        .flat_map(|w| {
            policies
                .iter()
                .flat_map(move |&p| deltas_ms.iter().map(move |&delta| (w, p, delta)))
        })
        .collect();
    let workloads_ref = &workloads;
    parallel_map(jobs, threads, |&(w, policy, delta)| {
        let workload = &workloads_ref[w];
        // lint:allow(D002): feeds only the wall_time_s telemetry column, never simulated results
        let t0 = std::time::Instant::now();
        let result = run_scenario_with_delta(workload, policy, Some(delta));
        SweepCell::from_result(
            workload.spec.name.clone(),
            policy,
            &result,
            t0.elapsed().as_secs_f64(),
            delta,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SweepPolicy::IrgReal.label(), "IRG-R");
        assert_eq!(SweepPolicy::ShortReal.label(), "SHORT-R");
        assert_eq!(SweepPolicy::Ltg.label(), "LTG");
        assert_eq!(SweepPolicy::default_set().len(), 3);
    }

    #[test]
    fn sweep_preserves_scenario_major_order() {
        // Two tiny scenarios with a large batch interval keep this fast.
        let mut a = ScenarioSpec::plain("a", "", 600.0, 10);
        a.sim.batch_interval_ms = Some(60_000);
        let mut b = ScenarioSpec::plain("b", "", 600.0, 10);
        b.sim.batch_interval_ms = Some(60_000);
        let cells = sweep(&[a, b], &[SweepPolicy::Near, SweepPolicy::Ltg], 4);
        let got: Vec<(String, &str)> = cells
            .iter()
            .map(|c| (c.scenario.clone(), c.policy))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".to_string(), "NEAR"),
                ("a".to_string(), "LTG"),
                ("b".to_string(), "NEAR"),
                ("b".to_string(), "LTG"),
            ]
        );
        for c in &cells {
            assert!(c.served + c.reneged <= c.total_riders);
            assert!(c.wall_s >= 0.0);
            assert!(c.ticks_executed <= c.batches);
            assert_eq!(c.ticks_skipped, c.batches - c.ticks_executed);
            assert!((0.0..=1.0).contains(&c.skip_rate));
            assert!(
                c.events_processed >= c.total_riders,
                "every admission is an event"
            );
            assert_eq!(
                c.index_rebuilds_avoided, c.ticks_executed,
                "every executed batch is served by the live index"
            );
            assert!(c.index_ops > 0, "fleet seeding alone applies index ops");
            assert!(c.index_regions_dirtied <= c.index_ops);
            assert!(c.counts_ops > 0, "fleet seeding alone applies count ops");
            assert!(c.counts_regions_dirtied <= c.counts_ops);
            assert_eq!(
                c.views_rebuilds_avoided, c.ticks_executed,
                "every executed batch is served by the live views"
            );
            assert!(c.views_ops > 0, "fleet seeding alone applies view ops");
            assert!(c.views_entries_dirtied <= 2 * c.views_ops);
            assert_eq!(c.delta_ms, 60_000, "cell records the Δ it ran at");
        }
    }

    #[test]
    fn delta_sweep_reruns_one_workload_across_intervals() {
        let mut spec = ScenarioSpec::plain("d", "", 600.0, 10);
        spec.sim.batch_interval_ms = Some(60_000); // overridden per cell
        let cells = sweep_deltas(
            &[spec],
            &[SweepPolicy::Near, SweepPolicy::IrgReal],
            &[60_000, 20_000],
            4,
        );
        let got: Vec<(&str, u64)> = cells.iter().map(|c| (c.policy, c.delta_ms)).collect();
        assert_eq!(
            got,
            vec![
                ("NEAR", 60_000),
                ("NEAR", 20_000),
                ("IRG-R", 60_000),
                ("IRG-R", 20_000),
            ]
        );
        for pair in cells.chunks(2) {
            // Same materialized workload at both Δ: identical demand, a
            // 3× finer batch grid, and a Fig. 8-consistent direction
            // (finer batching never serves fewer riders here).
            assert_eq!(pair[0].total_riders, pair[1].total_riders);
            assert_eq!(pair[1].batches, 3 * pair[0].batches);
            assert!(pair[1].served >= pair[0].served);
        }
    }
}
