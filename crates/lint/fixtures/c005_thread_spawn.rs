//! C005 fixture: thread spawns outside the sanctioned pool module.

pub fn drain_worker_root() {
    launch();
}

fn launch() {
    std::thread::spawn(|| {});
}

fn scoped(scope: &Scope) {
    scope.spawn(|| {});
}

fn waived() {
    // lint:allow(C005): fixture waiver — demonstrates a reasoned suppression
    std::thread::spawn(|| {});
}
