//! D007 fixture: debug-formatting a hash collection into output.

use std::collections::HashMap;

fn bad_report(per_region: &HashMap<u32, f64>) {
    let per_region: HashMap<u32, f64> = per_region.clone();
    println!("per-region rates: {:?}", per_region);
}

fn bad_inline_capture(per_region: &HashMap<u32, f64>) -> String {
    let per_region: HashMap<u32, f64> = per_region.clone();
    format!("{per_region:?}")
}

fn good_report(per_region: &HashMap<u32, f64>) {
    // lint:allow(D001): entries are sorted below before formatting
    let mut entries: Vec<_> = per_region.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    println!("per-region rates: {entries:?}");
}
