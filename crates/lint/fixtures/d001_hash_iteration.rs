//! D001 fixture: iterating hash-ordered collections in non-test code.

use std::collections::{HashMap, HashSet};

fn sum_values(counts: &HashMap<u32, f64>) -> f64 {
    let counts: HashMap<u32, f64> = counts.clone();
    let mut total = 0.0;
    for v in counts.values() {
        total += v;
    }
    total
}

fn drain_set(mut seen: HashSet<u32>) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for x in &seen {
        out.push(*x);
    }
    seen.drain();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_iteration_in_tests_is_fine() {
        let m: HashMap<u32, f64> = HashMap::new();
        for _ in m.keys() {}
    }
}
