//! C004 fixture: atomic operations whose `Ordering` is not explicit at
//! the call site.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn drain_worker_root(head: &AtomicU64) -> u64 {
    let seen = head.load(Ordering::Relaxed);
    bump(head, Ordering::Relaxed);
    observe(head) + waived(head) + seen
}

fn bump(head: &AtomicU64, ord: Ordering) {
    head.fetch_add(1, ord);
}

fn observe(head: &AtomicU64) -> u64 {
    head.load(relaxed())
}

fn relaxed() -> Ordering {
    Ordering::Relaxed
}

fn waived(head: &AtomicU64) -> u64 {
    // lint:allow(C004): fixture waiver — ordering chosen by the caller, always a constant
    head.load(relaxed())
}

fn not_an_atomic(q: &Queue) -> u64 {
    q.load(relaxed())
}
