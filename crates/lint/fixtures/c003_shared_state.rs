//! C003 fixture: non-Sync interior mutability and mutable statics in a
//! file with worker-reachable functions.

use std::cell::RefCell;

static mut DRAIN_COUNT: u64 = 0;

thread_local! {
    static SCRATCH: Vec<u32> = Vec::new();
}

pub fn drain_worker_root() -> u32 {
    tally() + waived()
}

fn tally() -> u32 {
    let c = RefCell::new(0u32);
    *c.borrow_mut() += 1;
    c.into_inner()
}

fn bystander() -> u32 {
    let c = RefCell::new(7u32);
    c.into_inner()
}

fn waived() -> u32 {
    // lint:allow(C003): fixture waiver — single-threaded scratch, never crosses the pool
    let c = RefCell::new(1u32);
    c.into_inner()
}
