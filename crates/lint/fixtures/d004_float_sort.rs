//! D004 fixture: float comparator sorts without an id tie-break.

fn bad_sort(edges: &mut Vec<(f64, u32)>) {
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

fn bad_min(xs: &[(f64, u32)]) -> Option<&(f64, u32)> {
    xs.iter().min_by(|a, b| a.0.total_cmp(&b.0))
}

fn good_sort(edges: &mut Vec<(f64, u32)>) {
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
}

fn good_max(xs: &[(f64, u32)]) -> Option<&(f64, u32)> {
    xs.iter()
        .max_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
}

fn bad_key_sort(edges: &mut Vec<(f64, u32)>) {
    edges.sort_by_key(|e| e.0.to_bits());
}

fn bad_key_min(xs: &[(f64, u32)]) -> Option<&(f64, u32)> {
    xs.iter().min_by_key(|e| (e.1 as f64).to_bits() as u64)
}

fn good_key_sort(edges: &mut Vec<(f64, u32)>) {
    edges.sort_by_key(|e| (e.0.to_bits(), e.1));
}

fn good_key_int(edges: &mut Vec<(u32, u32)>) {
    edges.sort_by_key(|e| e.0);
}
