//! D005 fixture: narrowing casts in region arithmetic. Only fires when
//! analyzed under a `crates/spatial/` path.

fn bad_region_id(row: u64, cols: u64, col: u64) -> u32 {
    (row * cols + col) as u32
}

fn bad_index(id: i64) -> usize {
    id as usize
}

fn good_region_id(row: u64, cols: u64, col: u64) -> u32 {
    u32::try_from(row * cols + col).expect("caller bounds the grid")
}
