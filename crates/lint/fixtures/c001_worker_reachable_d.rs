//! C001 fixture: flat D violations escalate inside the worker-reachable
//! set (and only there).

pub fn drain_worker_root(n: u64) -> u64 {
    helper(n) + waived(n)
}

fn helper(n: u64) -> u64 {
    let t = std::time::Instant::now();
    n + t.elapsed().as_nanos() as u64
}

fn bystander() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

fn waived(n: u64) -> u64 {
    // lint:allow(C001, D002): fixture waiver — demonstrates a reasoned suppression
    let t = std::time::Instant::now();
    n + t.elapsed().as_nanos() as u64
}
