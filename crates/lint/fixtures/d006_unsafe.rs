//! D006 fixture: `unsafe` without a SAFETY comment. Fires even in tests.

fn bad_unsafe(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}

fn good_unsafe(xs: &[u32]) -> u32 {
    // SAFETY: the caller guarantees xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}
