//! D002 fixture: wall-clock reads in non-test code.

fn bad_timestamp() -> std::time::Instant {
    std::time::Instant::now()
}

fn bad_epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn allowed_with_reason() -> std::time::Instant {
    // lint:allow(D002): telemetry only, never feeds simulated state
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let _ = std::time::Instant::now();
    }
}
