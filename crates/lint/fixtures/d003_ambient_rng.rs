//! D003 fixture: ambient randomness. Fires even inside tests — a seed
//! that changes per run makes failures unreproducible everywhere.

use rand::Rng;

fn bad_sample() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn bad_shortcut() -> u32 {
    rand::random()
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    #[test]
    fn entropy_seeding_fires_even_in_tests() {
        let _rng = rand::rngs::StdRng::from_entropy();
    }
}
