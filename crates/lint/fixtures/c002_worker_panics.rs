//! C002 fixture: panic-capable operations in worker-reachable code —
//! unwrap/expect, panic-family macros, slice indexing, narrowing casts.

pub fn drain_worker_root(v: &[u32], w: usize) -> u32 {
    step(v, w)
}

fn step(v: &[u32], w: usize) -> u32 {
    let first = *v.first().unwrap();
    let second = v[w];
    let small = second as u8;
    if w > v.len() {
        panic!("worker block out of range");
    }
    // lint:allow(C002): index 0 exists — the caller rejects empty slices
    let third = v[0];
    first + second + u32::from(small) + third
}

fn bystander(v: &[u32]) -> u32 {
    v[0] + v.last().expect("nonempty")
}
