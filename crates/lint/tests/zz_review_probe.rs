#[test]
fn brace_macro_in_fn_body() {
    use mrvd_lint::parser::parse_file;
    use mrvd_lint::lexer::lex;
    let src = "fn worker() {\n    let ok = matches! { 1 };\n    after_macro();\n}\nfn tail() { other(); }\n";
    let items = parse_file(&lex(src));
    let worker = items.fns.iter().find(|f| f.name == "worker").unwrap();
    let names: Vec<&str> = worker.calls.iter().map(|c| c.name.as_str()).collect();
    eprintln!("worker end_line={} calls={:?}", worker.end_line, names);
    assert!(names.contains(&"after_macro"), "after_macro lost: {names:?}");
}
#[test]
fn module_qualified_workspace_call() {
    use mrvd_lint::callgraph::{CallGraph, FileInput};
    use mrvd_lint::parser::parse_file;
    use mrvd_lint::lexer::lex;
    let a = lex("pub fn go() {}\n");
    let b = lex("fn root_fn() { helper::go(); }\n");
    let ia = parse_file(&a); let ib = parse_file(&b);
    let inputs = vec![
        FileInput { rel: "crates/a/src/helper.rs", items: &ia, test_spans: &[], is_test_path: false },
        FileInput { rel: "crates/b/src/lib.rs", items: &ib, test_spans: &[], is_test_path: false },
    ];
    let g = CallGraph::build(&inputs);
    eprintln!("edges={:?} unresolved={:?} external={}", g.edges.len(), g.unresolved.len(), g.external_calls);
    assert!(g.edges.is_empty() && g.unresolved.is_empty() && g.external_calls == 1);
}
