//! Each C rule must fire on its violation fixture — on the violating
//! lines only, with call chains back to the declared root — and honor
//! site-level pragma waivers. The fixtures live in
//! `crates/lint/fixtures/` (skipped by the workspace walk) and are
//! scanned here under production-looking relative paths with a
//! single-root `[roots]` config.

use mrvd_lint::{Finding, Report};

const ROOTS: &str = "[roots]\nfn = \"drain_worker_root\"\n";

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Scan one fixture as the whole "workspace" with the standard root.
fn scan_fixture(name: &str, rel: &str, toml: &str) -> Report {
    let (config, errs) = mrvd_lint::config::parse(toml);
    assert!(errs.is_empty(), "{errs:?}");
    mrvd_lint::scan_sources("/fixture", &[(rel.to_string(), fixture(name))], &config).report
}

fn gating_lines(report: &Report, rule: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .map(|f| f.line)
        .collect()
}

fn suppressed_lines(report: &Report, rule: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_some())
        .map(|f| f.line)
        .collect()
}

fn chains_of<'r>(report: &'r Report, rule: &str) -> Vec<&'r Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn c001_escalates_d_rules_only_in_the_closure() {
    let r = scan_fixture(
        "c001_worker_reachable_d.rs",
        "crates/core/src/fixture.rs",
        ROOTS,
    );
    // helper (reachable via the root) escalates; bystander does not.
    assert_eq!(gating_lines(&r, "C001"), vec![9], "{:#?}", r.findings);
    assert_eq!(suppressed_lines(&r, "C001"), vec![20]);
    // The flat D002 findings remain, independent of the escalation.
    assert_eq!(gating_lines(&r, "D002"), vec![9, 14]);
    for f in chains_of(&r, "C001") {
        assert_eq!(
            f.chain.first().map(String::as_str),
            Some("drain_worker_root")
        );
    }
    // No unused pragmas, no stale roots.
    assert!(r
        .findings
        .iter()
        .all(|f| f.rule != "P002" && f.rule != "P005"));
}

#[test]
fn c001_errors_even_where_a_config_path_exemption_covers_the_d_rule() {
    // The lint.toml allow covers the D002 — but not the C001 escalation.
    let toml = format!(
        "{ROOTS}\n[[allow]]\npath = \"crates/core\"\nrule = \"D002\"\nreason = \"fixture: path-level timing exemption\"\n"
    );
    let r = scan_fixture(
        "c001_worker_reachable_d.rs",
        "crates/core/src/fixture.rs",
        &toml,
    );
    assert_eq!(gating_lines(&r, "D002"), Vec::<u32>::new());
    assert_eq!(gating_lines(&r, "C001"), vec![9], "{:#?}", r.findings);
}

#[test]
fn c002_flags_panic_capable_sites_with_chains() {
    let r = scan_fixture("c002_worker_panics.rs", "crates/core/src/fixture.rs", ROOTS);
    // unwrap, v[w], as u8, panic! — the pragma-waived v[0] and the
    // unreachable bystander stay out.
    assert_eq!(
        gating_lines(&r, "C002"),
        vec![9, 10, 11, 13],
        "{:#?}",
        r.findings
    );
    assert_eq!(suppressed_lines(&r, "C002"), vec![16]);
    for f in chains_of(&r, "C002") {
        assert_eq!(
            f.chain,
            vec!["drain_worker_root".to_string(), "step".to_string()],
            "every C002 here sits inside step()"
        );
    }
}

#[test]
fn c003_flags_interior_mutability_and_module_state() {
    let r = scan_fixture("c003_shared_state.rs", "crates/core/src/fixture.rs", ROOTS);
    // static mut (6), thread_local! (8), tally's RefCell (17); the
    // unreachable bystander's RefCell (23) is clean and waived (29) is
    // suppressed.
    assert_eq!(
        gating_lines(&r, "C003"),
        vec![6, 8, 17],
        "{:#?}",
        r.findings
    );
    assert_eq!(suppressed_lines(&r, "C003"), vec![29]);
    // Module-level findings carry no chain; fn-level ones do.
    for f in chains_of(&r, "C003") {
        if f.line == 17 {
            assert_eq!(
                f.chain,
                vec!["drain_worker_root".to_string(), "tally".to_string()]
            );
        }
    }
}

#[test]
fn c004_requires_explicit_ordering_with_atomic_evidence() {
    let r = scan_fixture("c004_atomics.rs", "crates/core/src/fixture.rs", ROOTS);
    // bump's fetch_add(1, ord) and observe's load(relaxed()) fire; the
    // documented load/store are clean, the waived load is suppressed,
    // and `q.load(…)` has no atomic receiver evidence.
    assert_eq!(gating_lines(&r, "C004"), vec![13, 17], "{:#?}", r.findings);
    assert_eq!(suppressed_lines(&r, "C004"), vec![26]);
}

#[test]
fn c005_flags_spawns_and_honors_spawn_path() {
    let r = scan_fixture("c005_thread_spawn.rs", "crates/core/src/fixture.rs", ROOTS);
    assert_eq!(gating_lines(&r, "C005"), vec![8, 12], "{:#?}", r.findings);
    assert_eq!(suppressed_lines(&r, "C005"), vec![17]);

    // Under a sanctioned spawn_path prefix the same file is clean — the
    // pragma then counts as unused (P002), proving waivers cannot rot.
    let toml = format!("{ROOTS}spawn_path = \"crates/core/src/\"\n");
    let r = scan_fixture("c005_thread_spawn.rs", "crates/core/src/fixture.rs", &toml);
    assert!(
        r.findings.iter().all(|f| f.rule != "C005"),
        "{:#?}",
        r.findings
    );
    assert_eq!(gating_lines(&r, "P002").len(), 1);
}

#[test]
fn c_rules_are_silent_without_roots() {
    for name in [
        "c001_worker_reachable_d.rs",
        "c002_worker_panics.rs",
        "c003_shared_state.rs",
        "c004_atomics.rs",
        "c005_thread_spawn.rs",
    ] {
        let r = scan_fixture(name, "crates/core/src/fixture.rs", "");
        let c: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule.starts_with('C'))
            .collect();
        assert!(c.is_empty(), "{name}: {c:?}");
    }
}

#[test]
fn c_findings_render_chains_in_both_formats() {
    let r = scan_fixture("c002_worker_panics.rs", "crates/core/src/fixture.rs", ROOTS);
    let human = r.render_human();
    assert!(
        human.contains("via drain_worker_root -> step"),
        "human rendering must show the call chain:\n{human}"
    );
    let json = r.render_json();
    assert!(json.contains("\"chain\": [\"drain_worker_root\", \"step\"]"));
    assert!(json.contains(&format!(
        "\"schema_version\": {}",
        mrvd_lint::SCHEMA_VERSION
    )));
}
