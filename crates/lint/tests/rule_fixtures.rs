//! Each determinism rule must fire on its violation fixture — and only
//! on the violating lines. The fixtures live in `crates/lint/fixtures/`
//! (skipped by the workspace walk) and are analyzed here under
//! production-looking relative paths.

use mrvd_lint::{analyze_source, apply_suppressions, FileAnalysis};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Analyze a fixture under `rel_path` and resolve pragma suppressions
/// (no config allowlist), returning the analysis.
fn analyze_fixture(name: &str, rel_path: &str) -> FileAnalysis {
    let mut analysis = analyze_source(rel_path, &fixture(name));
    let config = mrvd_lint::config::Config::default();
    apply_suppressions(&mut analysis, &config, &mut []);
    analysis
}

/// Lines on which `rule` fires unsuppressed.
fn gating_lines(analysis: &FileAnalysis, rule: &str) -> Vec<u32> {
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .map(|f| f.line)
        .collect()
}

#[test]
fn d001_fires_on_hash_iteration_only_outside_tests() {
    let a = analyze_fixture("d001_hash_iteration.rs", "crates/core/src/fixture.rs");
    let lines = gating_lines(&a, "D001");
    // counts.values(), for x in &seen, seen.drain() — the test-module
    // m.keys() must NOT fire.
    assert_eq!(lines, vec![8, 16, 19], "findings: {:#?}", a.findings);
}

#[test]
fn d002_fires_on_wall_clock_and_respects_pragma() {
    let a = analyze_fixture("d002_wall_clock.rs", "crates/core/src/fixture.rs");
    assert_eq!(gating_lines(&a, "D002"), vec![4, 8]);
    // The pragma-covered read is found but suppressed with the reason.
    let suppressed: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == "D002" && f.suppressed.is_some())
        .collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 13);
}

#[test]
fn d003_fires_everywhere_including_tests() {
    let a = analyze_fixture("d003_ambient_rng.rs", "crates/core/src/fixture.rs");
    // thread_rng, rand::random, and from_entropy inside #[cfg(test)].
    assert_eq!(gating_lines(&a, "D003"), vec![7, 12, 21]);
}

#[test]
fn d004_fires_on_untied_float_sorts_only() {
    let a = analyze_fixture("d004_float_sort.rs", "crates/core/src/fixture.rs");
    // bad_sort and bad_min fire (comparator family); bad_key_sort and
    // bad_key_min fire (by_key family, float-key evidence). good_sort /
    // good_max have `.then` tie-breaks, good_key_sort keys on a
    // `(float, id)` tuple, good_key_int keys on an integer.
    assert_eq!(
        gating_lines(&a, "D004"),
        vec![4, 8, 21, 25],
        "findings: {:#?}",
        a.findings
    );
}

#[test]
fn d005_fires_only_under_spatial_paths() {
    let a = analyze_fixture("d005_narrowing_cast.rs", "crates/spatial/src/fixture.rs");
    assert_eq!(gating_lines(&a, "D005"), vec![5, 9]);
    // The same source outside crates/spatial/ is out of scope.
    let elsewhere = analyze_fixture("d005_narrowing_cast.rs", "crates/core/src/fixture.rs");
    assert_eq!(gating_lines(&elsewhere, "D005"), Vec::<u32>::new());
}

#[test]
fn d006_fires_on_undocumented_unsafe() {
    let a = analyze_fixture("d006_unsafe.rs", "crates/core/src/fixture.rs");
    // bad_unsafe fires; good_unsafe has `// SAFETY:` directly above.
    assert_eq!(gating_lines(&a, "D006"), vec![4]);
}

#[test]
fn d007_fires_on_debug_formatted_hash_collections() {
    let a = analyze_fixture("d007_debug_output.rs", "crates/core/src/fixture.rs");
    // println with positional arg and format! with inline capture.
    assert_eq!(gating_lines(&a, "D007"), vec![7, 12]);
    // The D001 on the sorted-iteration line is pragma-suppressed.
    assert_eq!(gating_lines(&a, "D001"), Vec::<u32>::new());
}

#[test]
fn fixtures_under_test_paths_are_exempt_from_non_test_rules() {
    // The same D001 fixture under tests/ produces no D001 at all.
    let a = analyze_fixture("d001_hash_iteration.rs", "crates/core/tests/fixture.rs");
    assert!(a.findings.iter().all(|f| f.rule != "D001"));
    // …but D003 still fires under tests/ (ambient RNG is banned everywhere).
    let b = analyze_fixture("d003_ambient_rng.rs", "crates/core/tests/fixture.rs");
    assert_eq!(gating_lines(&b, "D003").len(), 3);
}

#[test]
fn config_allowlist_suppresses_by_path_prefix_and_rule() {
    let (config, errors) = mrvd_lint::config::parse(
        r#"
[[allow]]
path = "crates/core"
rule = "D002"
reason = "fixture exemption"
"#,
    );
    assert!(errors.is_empty());
    let mut analysis = analyze_source("crates/core/src/fixture.rs", &fixture("d002_wall_clock.rs"));
    let mut used = vec![false; config.allows.len()];
    apply_suppressions(&mut analysis, &config, &mut used);
    assert!(used[0], "allow entry must be marked used");
    let still_gating: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .collect();
    assert!(still_gating.is_empty(), "gating: {still_gating:#?}");
    // A D004-only allow would not have covered these D002 findings.
    let (other, _) = mrvd_lint::config::parse(
        "[[allow]]\npath = \"crates/core\"\nrule = \"D004\"\nreason = \"x\"\n",
    );
    let mut analysis2 =
        analyze_source("crates/core/src/fixture.rs", &fixture("d002_wall_clock.rs"));
    let mut used2 = vec![false; other.allows.len()];
    apply_suppressions(&mut analysis2, &other, &mut used2);
    assert!(!used2[0]);
    assert!(analysis2.findings.iter().any(|f| f.suppressed.is_none()));
}

#[test]
fn pragma_round_trip_trailing_and_standalone() {
    let src = "fn f() {\n\
               let t = std::time::Instant::now(); // lint:allow(D002): telemetry\n\
               // lint:allow(D002): second read is telemetry too\n\
               let u = std::time::Instant::now();\n\
               let v = std::time::Instant::now();\n\
               }\n";
    let mut a = analyze_source("crates/core/src/x.rs", src);
    apply_suppressions(&mut a, &mrvd_lint::config::Config::default(), &mut []);
    let gating: Vec<u32> = a
        .findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .map(|f| f.line)
        .collect();
    // Trailing pragma covers line 2, standalone covers line 4; the
    // uncovered read on line 5 still gates.
    assert_eq!(gating, vec![5]);
}
