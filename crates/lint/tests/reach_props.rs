//! Property tests for the reachability engine: the closure must be
//! monotone under edge addition (a sound over-approximation can only
//! grow when the graph grows), and every reported chain must be a real
//! root-to-site path through the graph.

use mrvd_lint::reach::closure;
use proptest::prelude::*;

const N: usize = 24;

fn adjacency(edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); N];
    for &(u, v) in edges {
        adj[u].push(v);
    }
    adj
}

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..64)
}

fn arb_roots() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..N, 1..4)
}

proptest! {
    /// Adding any edge never shrinks the reachable set.
    #[test]
    fn reachability_is_monotone_under_edge_addition(
        edges in arb_edges(),
        roots in arb_roots(),
        extra in (0..N, 0..N),
    ) {
        let before = closure(N, &adjacency(&edges), &roots);
        let mut grown = edges.clone();
        grown.push(extra);
        let after = closure(N, &adjacency(&grown), &roots);
        for v in 0..N {
            prop_assert!(
                !before.reachable[v] || after.reachable[v],
                "node {} was reachable but adding edge {:?} lost it", v, extra
            );
        }
    }

    /// Every chain starts at a root, ends at the queried node, and each
    /// hop is an actual edge of the graph.
    #[test]
    fn chains_are_real_paths_from_roots(
        edges in arb_edges(),
        roots in arb_roots(),
    ) {
        let reach = closure(N, &adjacency(&edges), &roots);
        for v in 0..N {
            let chain = reach.chain_to(v);
            if !reach.is_reachable(v) {
                prop_assert!(chain.is_empty(), "unreachable {} got chain {:?}", v, chain);
                continue;
            }
            prop_assert_eq!(*chain.last().unwrap(), v);
            prop_assert!(roots.contains(&chain[0]), "chain {:?} starts off-root", chain);
            for hop in chain.windows(2) {
                prop_assert!(
                    edges.contains(&(hop[0], hop[1])),
                    "chain hop {:?} is not an edge", hop
                );
            }
        }
    }

    /// Roots sit at depth 0 and every discovered node one past its
    /// parent — i.e. chains really are shortest paths.
    #[test]
    fn depths_are_consistent(edges in arb_edges(), roots in arb_roots()) {
        let reach = closure(N, &adjacency(&edges), &roots);
        for &r in &roots {
            prop_assert!(reach.reachable[r]);
            prop_assert_eq!(reach.depth[r], 0);
        }
        for v in 0..N {
            if let Some(p) = reach.parent[v] {
                prop_assert_eq!(reach.depth[v], reach.depth[p] + 1);
            }
        }
    }
}
