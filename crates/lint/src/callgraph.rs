//! The workspace call graph.
//!
//! Nodes are every non-test fn the parser recovered; edges come from
//! call-site resolution with heuristics tuned to this codebase:
//!
//! * **free calls** — same-file fn first, then unique workspace name;
//!   `Type::method` paths through the owner-type table; `drop(x)`
//!   special-cased to `Type::drop` when `x` has a type hint;
//! * **method calls** — receiver-type hints first (`self` → impl type,
//!   typed `let`s/params, constructor RHS inference, struct field
//!   chains incl. `Vec` indexing), then a unique-name fallback over all
//!   workspace methods — except for method names so common in std
//!   (`push`, `len`, `lock`, …) that a unique workspace homonym is more
//!   likely shadowed than called;
//! * **trait-typed receivers** — fan out to the trait's default method
//!   and every `impl Trait for Type` (conservative dynamic dispatch).
//!
//! Anything the heuristics cannot pin down is recorded as an
//! [`Unresolved`] call — reported in the report summary and
//! `LINT_callgraph.json`, never silently dropped — but *not* followed,
//! so one murky call site cannot flood the worker-reachable closure.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{indexed_elem, type_head, CallKind, CallSite, FileItems, FnDef};
use crate::reach::Reach;
use crate::report::json_str;

/// Method names too common in std for the unique-name fallback: a lone
/// workspace method with one of these names is more likely shadowed by
/// a std type than called, so an untyped receiver stays unresolved
/// (reported) instead of creating a speculative edge.
const STD_COMMON_METHODS: [&str; 60] = [
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "clear",
    "clone",
    "collect",
    "cmp",
    "contains",
    "contains_key",
    "count",
    "dedup",
    "drain",
    "entry",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "pop",
    "position",
    "push",
    "remove",
    "replace",
    "retain",
    "sort",
    "store",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "unwrap",
    "values",
    "wait",
    "write",
];

/// One file's parsed input to the graph build.
pub struct FileInput<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Parsed items.
    pub items: &'a FileItems,
    /// Inclusive test line spans (from [`crate::rules::detect_test_spans`]).
    pub test_spans: &'a [(u32, u32)],
    /// Whether the whole file is test code by path.
    pub is_test_path: bool,
}

/// One call-graph node: a non-test fn.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub fn_idx: usize,
    /// Qualified display name (`Type::method` or bare fn name).
    pub name: String,
    /// Bare fn name.
    pub bare: String,
    /// Owner type/trait, if a method.
    pub owner: Option<String>,
    /// First line of the fn.
    pub line: u32,
    /// Last line of the fn body.
    pub end_line: u32,
}

/// Edge provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Resolved to exactly one callee.
    Direct,
    /// Trait-dispatch fan-out (one of possibly several impls).
    Trait,
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Caller node id.
    pub from: usize,
    /// Callee node id.
    pub to: usize,
    /// Line of the (first) call site.
    pub line: u32,
    /// How the edge was resolved.
    pub kind: EdgeKind,
}

/// Why a call could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnresolvedKind {
    /// The callee is a local/parameter (closure or fn-pointer call).
    Dynamic,
    /// Several workspace fns match and no hint disambiguates.
    Ambiguous,
    /// A unique workspace method matches, but the name is std-common
    /// and the receiver untyped — too risky to follow.
    CommonName,
}

impl UnresolvedKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            UnresolvedKind::Dynamic => "dynamic",
            UnresolvedKind::Ambiguous => "ambiguous",
            UnresolvedKind::CommonName => "common-name",
        }
    }
}

/// A reported (never silently dropped) unresolved call.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Caller node id.
    pub from: usize,
    /// Callee name as written.
    pub name: String,
    /// Call-site line.
    pub line: u32,
    /// Why it stayed unresolved.
    pub kind: UnresolvedKind,
    /// Candidate node ids (for ambiguous/common-name calls).
    pub candidates: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Workspace-relative file paths, in scan order.
    pub files: Vec<String>,
    /// All non-test fns.
    pub nodes: Vec<Node>,
    /// Resolved edges, deduplicated by `(from, to)`.
    pub edges: Vec<Edge>,
    /// Unresolved calls.
    pub unresolved: Vec<Unresolved>,
    /// Calls resolved as external (std or out-of-workspace).
    pub external_calls: usize,
    type_methods: BTreeMap<(String, String), Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    struct_fields: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    traits: BTreeSet<String>,
    trait_impl_types: BTreeMap<String, Vec<String>>,
    workspace_types: BTreeSet<String>,
}

enum Res {
    Edges(Vec<(usize, EdgeKind)>),
    Unresolved(UnresolvedKind, Vec<usize>),
    External,
}

impl CallGraph {
    /// Build the graph over every non-test fn in `files`.
    pub fn build(files: &[FileInput<'_>]) -> CallGraph {
        let mut g = CallGraph::default();
        // Pass 1: nodes + lookup tables.
        for (fi, f) in files.iter().enumerate() {
            g.files.push(f.rel.to_string());
            for s in &f.items.structs {
                g.workspace_types.insert(s.name.clone());
                let entry = g.struct_fields.entry(s.name.clone()).or_default();
                for (fname, ty) in &s.fields {
                    entry.insert(fname.clone(), ty.clone());
                }
            }
            for t in &f.items.traits {
                g.traits.insert(t.name.clone());
            }
            for (tr, ty) in &f.items.trait_impls {
                let impls = g.trait_impl_types.entry(tr.clone()).or_default();
                if !impls.contains(ty) {
                    impls.push(ty.clone());
                }
            }
            for (idx, fun) in f.items.fns.iter().enumerate() {
                if let Some(o) = &fun.owner {
                    g.workspace_types.insert(o.clone());
                }
                if f.is_test_path || in_spans(f.test_spans, fun.line) {
                    continue;
                }
                let id = g.nodes.len();
                g.nodes.push(Node {
                    file: fi,
                    fn_idx: idx,
                    name: fun.qualified(),
                    bare: fun.name.clone(),
                    owner: fun.owner.clone(),
                    line: fun.line,
                    end_line: fun.end_line,
                });
                match &fun.owner {
                    Some(o) => {
                        g.type_methods
                            .entry((o.clone(), fun.name.clone()))
                            .or_default()
                            .push(id);
                        g.methods_by_name
                            .entry(fun.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None => g.free_by_name.entry(fun.name.clone()).or_default().push(id),
                }
            }
        }
        // Traits count as workspace types for receiver resolution.
        for t in &g.traits {
            g.workspace_types.insert(t.clone());
        }
        // Pass 2: resolve every call of every node.
        let mut seen_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for id in 0..g.nodes.len() {
            let node = g.nodes[id].clone();
            let fun = &files[node.file].items.fns[node.fn_idx];
            for call in &fun.calls {
                if call.kind == CallKind::Macro {
                    continue; // panic-capable macros are C002's business
                }
                match g.resolve(node.file, fun, call) {
                    Res::Edges(targets) => {
                        for (to, kind) in targets {
                            if seen_edges.insert((id, to)) {
                                g.edges.push(Edge {
                                    from: id,
                                    to,
                                    line: call.line,
                                    kind,
                                });
                            }
                        }
                    }
                    Res::Unresolved(kind, candidates) => g.unresolved.push(Unresolved {
                        from: id,
                        name: call.name.clone(),
                        line: call.line,
                        kind,
                        candidates,
                    }),
                    Res::External => g.external_calls += 1,
                }
            }
        }
        g
    }

    /// Node ids whose qualified (when the spec contains `::`) or bare
    /// name equals `spec`.
    pub fn match_roots(&self, spec: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                if spec.contains("::") {
                    n.name == spec
                } else {
                    n.bare == spec
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Adjacency lists over resolved edges (input to [`crate::reach`]).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.from].push(e.to);
        }
        adj
    }

    /// The receiver's resolved type name for a method call, if the
    /// hints pin one down.
    fn receiver_type(&self, fun: &FnDef, call: &CallSite) -> Option<String> {
        let chain = &call.receiver.chain;
        let first = chain.first()?;
        let mut ty: Vec<String> = if first.name == "self" {
            vec![fun.owner.clone()?]
        } else {
            fun.binding_type(&first.name, call.at)?.to_vec()
        };
        if first.indexed {
            ty = indexed_elem(&ty)?;
        }
        let mut cur = type_head(&ty)?.to_string();
        for link in &chain[1..] {
            let mut fty = self
                .struct_fields
                .get(&cur)
                .and_then(|fields| fields.get(&link.name))?
                .clone();
            if link.indexed {
                fty = indexed_elem(&fty)?;
            }
            cur = type_head(&fty)?.to_string();
        }
        Some(cur)
    }

    fn resolve(&self, file: usize, fun: &FnDef, call: &CallSite) -> Res {
        match call.kind {
            CallKind::Method => self.resolve_method(fun, call),
            CallKind::Free => self.resolve_free(file, fun, call),
            CallKind::Macro => Res::External,
        }
    }

    fn resolve_method(&self, fun: &FnDef, call: &CallSite) -> Res {
        if let Some(ty) = self.receiver_type(fun, call) {
            // Trait-typed receivers fan out to every impl (checked before
            // the direct table: the trait's own signature node would
            // otherwise shadow the dispatch).
            if self.traits.contains(&ty) {
                return self.trait_dispatch(&ty, &call.name);
            }
            if let Some(ids) = self.type_methods.get(&(ty.clone(), call.name.clone())) {
                return if ids.len() == 1 {
                    Res::Edges(vec![(ids[0], EdgeKind::Direct)])
                } else {
                    Res::Unresolved(UnresolvedKind::Ambiguous, ids.clone())
                };
            }
            // A known type (workspace or std) without that method in
            // the workspace: derived/std trait method — external.
            return Res::External;
        }
        // Untyped receiver: unique-name fallback over workspace methods.
        match self.methods_by_name.get(&call.name) {
            None => Res::External,
            Some(ids) if ids.len() == 1 => {
                if STD_COMMON_METHODS.contains(&call.name.as_str()) {
                    Res::Unresolved(UnresolvedKind::CommonName, ids.clone())
                } else {
                    Res::Edges(vec![(ids[0], EdgeKind::Direct)])
                }
            }
            Some(ids) => Res::Unresolved(UnresolvedKind::Ambiguous, ids.clone()),
        }
    }

    /// Trait-typed receiver: default method + every impl's method.
    fn trait_dispatch(&self, tr: &str, method: &str) -> Res {
        let mut targets: Vec<usize> = Vec::new();
        if let Some(ids) = self.type_methods.get(&(tr.to_string(), method.to_string())) {
            targets.extend_from_slice(ids);
        }
        if let Some(types) = self.trait_impl_types.get(tr) {
            for ty in types {
                if let Some(ids) = self.type_methods.get(&(ty.clone(), method.to_string())) {
                    targets.extend_from_slice(ids);
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            Res::External
        } else {
            Res::Edges(targets.into_iter().map(|t| (t, EdgeKind::Trait)).collect())
        }
    }

    fn resolve_free(&self, file: usize, fun: &FnDef, call: &CallSite) -> Res {
        // A call through a local/param (closure, fn pointer) is dynamic.
        if call.qualifier.is_none() && fun.binds(&call.name) {
            return Res::Unresolved(UnresolvedKind::Dynamic, Vec::new());
        }
        // `drop(x)` runs `Type::drop` when `x`'s type is hinted.
        if call.qualifier.is_none() && call.name == "drop" {
            if let Some(arg) = &call.arg_ident {
                if let Some(ty) = fun
                    .binding_type(arg, call.at)
                    .and_then(|t| type_head(t).map(str::to_string))
                {
                    if let Some(ids) = self.type_methods.get(&(ty, "drop".to_string())) {
                        if ids.len() == 1 {
                            return Res::Edges(vec![(ids[0], EdgeKind::Direct)]);
                        }
                        return Res::Unresolved(UnresolvedKind::Ambiguous, ids.clone());
                    }
                }
            }
            return Res::External;
        }
        match call.qualifier.as_deref() {
            // `crate::foo(…)` / `super::foo(…)`: plain free resolution.
            Some("crate") | Some("super") | Some("self") | None => {}
            Some("Self") => {
                let Some(owner) = &fun.owner else {
                    return Res::External;
                };
                return self.qualified_lookup(owner, &call.name);
            }
            Some(q) if self.workspace_types.contains(q) => {
                return self.qualified_lookup(q, &call.name);
            }
            // std module paths (`mem::take`, `thread::spawn`, …).
            Some(_) => return Res::External,
        }
        // Bare free call: same-file fn first, then unique workspace name.
        match self.free_by_name.get(&call.name) {
            None => Res::External,
            Some(ids) => {
                let same_file: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| self.nodes[id].file == file)
                    .collect();
                if same_file.len() == 1 {
                    return Res::Edges(vec![(same_file[0], EdgeKind::Direct)]);
                }
                if ids.len() == 1 {
                    return Res::Edges(vec![(ids[0], EdgeKind::Direct)]);
                }
                Res::Unresolved(UnresolvedKind::Ambiguous, ids.clone())
            }
        }
    }

    /// `Type::name(…)` / `Trait::name(…)` lookup.
    fn qualified_lookup(&self, owner: &str, name: &str) -> Res {
        if let Some(ids) = self
            .type_methods
            .get(&(owner.to_string(), name.to_string()))
        {
            return if ids.len() == 1 {
                Res::Edges(vec![(ids[0], EdgeKind::Direct)])
            } else {
                Res::Unresolved(UnresolvedKind::Ambiguous, ids.clone())
            };
        }
        Res::External
    }

    /// Render the graph + reachability result as `LINT_callgraph.json`
    /// (schema version 1).
    pub fn render_json(&self, reach: &Reach, roots: &[usize], root_display: &str) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(root_display)));
        out.push_str("  \"roots\": [");
        for (i, &r) in roots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(&self.nodes[r].name));
        }
        out.push_str("],\n");
        let trait_edges = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Trait)
            .count();
        let count_kind = |k: UnresolvedKind| self.unresolved.iter().filter(|u| u.kind == k).count();
        let reachable_ids: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| reach.is_reachable(i))
            .collect();
        out.push_str("  \"summary\": {");
        out.push_str(&format!("\"fns\": {}, ", self.nodes.len()));
        out.push_str(&format!("\"edges\": {}, ", self.edges.len()));
        out.push_str(&format!("\"trait_edges\": {trait_edges}, "));
        out.push_str(&format!("\"external_calls\": {}, ", self.external_calls));
        out.push_str(&format!(
            "\"unresolved_dynamic\": {}, ",
            count_kind(UnresolvedKind::Dynamic)
        ));
        out.push_str(&format!(
            "\"unresolved_ambiguous\": {}, ",
            count_kind(UnresolvedKind::Ambiguous)
        ));
        out.push_str(&format!(
            "\"unresolved_common_name\": {}, ",
            count_kind(UnresolvedKind::CommonName)
        ));
        out.push_str(&format!("\"reachable\": {}}},\n", reachable_ids.len()));
        // Reachable set with call chains.
        out.push_str("  \"reachable\": [");
        for (i, &id) in reachable_ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let n = &self.nodes[id];
            out.push_str("\n    {");
            out.push_str(&format!("\"fn\": {}, ", json_str(&n.name)));
            out.push_str(&format!("\"file\": {}, ", json_str(&self.files[n.file])));
            out.push_str(&format!("\"line\": {}, ", n.line));
            out.push_str("\"chain\": [");
            for (j, &c) in reach.chain_to(id).iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(&self.nodes[c].name));
            }
            out.push_str("]}");
        }
        out.push_str(if reachable_ids.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        // Full node + edge lists.
        out.push_str("  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": {i}, \"fn\": {}, \"file\": {}, \"line\": {}, \
                 \"reachable\": {}}}",
                json_str(&n.name),
                json_str(&self.files[n.file]),
                n.line,
                reach.is_reachable(i)
            ));
        }
        out.push_str(if self.nodes.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = match e.kind {
                EdgeKind::Direct => "direct",
                EdgeKind::Trait => "trait",
            };
            out.push_str(&format!(
                "\n    {{\"from\": {}, \"to\": {}, \"line\": {}, \"kind\": \"{kind}\"}}",
                e.from, e.to, e.line
            ));
        }
        out.push_str(if self.edges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        // Unresolved calls whose *caller* is worker-reachable: these are
        // the ones that could hide a closure escape — list them in full.
        let hot: Vec<&Unresolved> = self
            .unresolved
            .iter()
            .filter(|u| reach.is_reachable(u.from))
            .collect();
        out.push_str("  \"unresolved_from_reachable\": [");
        for (i, u) in hot.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let n = &self.nodes[u.from];
            out.push_str("\n    {");
            out.push_str(&format!("\"from\": {}, ", json_str(&n.name)));
            out.push_str(&format!("\"file\": {}, ", json_str(&self.files[n.file])));
            out.push_str(&format!("\"line\": {}, ", u.line));
            out.push_str(&format!("\"call\": {}, ", json_str(&u.name)));
            out.push_str(&format!("\"kind\": \"{}\", ", u.kind.label()));
            out.push_str("\"candidates\": [");
            for (j, &c) in u.candidates.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(&self.nodes[c].name));
            }
            out.push_str("]}");
        }
        out.push_str(if hot.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out.push('\n');
        out
    }
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::reach;
    use crate::rules::detect_test_spans;

    struct Parsed {
        rel: String,
        items: FileItems,
        spans: Vec<(u32, u32)>,
    }

    fn parse_all(files: &[(&str, &str)]) -> Vec<Parsed> {
        files
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                Parsed {
                    rel: rel.to_string(),
                    spans: detect_test_spans(&lexed),
                    items: parse_file(&lexed),
                }
            })
            .collect()
    }

    fn build(parsed: &[Parsed]) -> CallGraph {
        let inputs: Vec<FileInput<'_>> = parsed
            .iter()
            .map(|p| FileInput {
                rel: &p.rel,
                items: &p.items,
                test_spans: &p.spans,
                is_test_path: crate::walk::is_test_path(&p.rel),
            })
            .collect();
        CallGraph::build(&inputs)
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.nodes[e.from].name.clone(), g.nodes[e.to].name.clone()))
            .collect()
    }

    #[test]
    fn resolves_self_methods_and_field_chains() {
        let src = "\
            struct Pool { n: usize }\n\
            impl Pool { fn run(&self) {} }\n\
            struct Queue { pool: Pool }\n\
            impl Queue {\n\
                fn drain(&self) { self.pool.run(); self.helper(); }\n\
                fn helper(&self) {}\n\
            }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("Queue::drain".into(), "Pool::run".into())),
            "{edges:?}"
        );
        assert!(edges.contains(&("Queue::drain".into(), "Queue::helper".into())));
    }

    #[test]
    fn resolves_indexed_vec_fields() {
        let src = "\
            struct Shard { v: u32 }\n\
            impl Shard { fn pop_due(&self) {} }\n\
            struct Slots { shards: Vec<Shard> }\n\
            impl Slots {\n\
                fn drain(&self, s: usize) { self.shards[s].pop_due(); }\n\
            }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        assert!(edge_names(&g).contains(&("Slots::drain".into(), "Shard::pop_due".into())));
    }

    #[test]
    fn same_file_free_fn_beats_same_named_fn_elsewhere() {
        let a = "fn relock() {}\nfn caller() { relock(); }\n";
        let b = "fn relock() {}\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]);
        let g = build(&parsed);
        let edges: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        let caller = g.match_roots("caller")[0];
        let local_relock = g
            .nodes
            .iter()
            .position(|n| n.bare == "relock" && g.files[n.file].starts_with("crates/a"))
            .expect("node");
        assert_eq!(edges, vec![(caller, local_relock)]);
    }

    #[test]
    fn trait_receivers_fan_out_to_impls() {
        let src = "\
            trait Policy { fn apply(&self); fn doc(&self) { self.apply(); } }\n\
            struct A; struct B;\n\
            impl Policy for A { fn apply(&self) {} }\n\
            impl Policy for B { fn apply(&self) {} }\n\
            fn run(p: &dyn Policy) { p.apply(); }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("run".into(), "A::apply".into())),
            "{edges:?}"
        );
        assert!(edges.contains(&("run".into(), "B::apply".into())));
        // The trait's own default method dispatches too.
        assert!(edges.contains(&("Policy::doc".into(), "A::apply".into())));
    }

    #[test]
    fn untyped_receivers_use_unique_name_fallback_but_not_std_common() {
        let src = "\
            struct S { n: u32 }\n\
            impl S { fn drain_due(&self) {} fn push(&self, _x: u32) {} }\n\
            fn f(maker: fn() -> u32) {\n\
                let q = opaque();\n\
                q.drain_due();\n\
                q.push(maker());\n\
            }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("f".into(), "S::drain_due".into())),
            "{edges:?}"
        );
        // `push` is std-common: unique homonym reported, not followed.
        assert!(!edges.iter().any(|(_, to)| to == "S::push"));
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.name == "push" && u.kind == UnresolvedKind::CommonName));
    }

    #[test]
    fn dynamic_and_ambiguous_calls_are_reported_not_dropped() {
        let a = "fn job(f: fn(u32)) { f(1); }\nfn dup() {}\n";
        let b = "fn dup() {}\nfn caller() { dup(); }\n";
        let c = "fn other() { dup(); }\n";
        let parsed = parse_all(&[
            ("crates/a/src/lib.rs", a),
            ("crates/b/src/lib.rs", b),
            ("crates/c/src/lib.rs", c),
        ]);
        let g = build(&parsed);
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.name == "f" && u.kind == UnresolvedKind::Dynamic));
        // b::caller resolves same-file; c::other is ambiguous between the two.
        let amb: Vec<_> = g
            .unresolved
            .iter()
            .filter(|u| u.name == "dup" && u.kind == UnresolvedKind::Ambiguous)
            .collect();
        assert_eq!(amb.len(), 1);
        assert_eq!(amb[0].candidates.len(), 2);
        assert!(edge_names(&g).contains(&("caller".into(), "dup".into())));
    }

    #[test]
    fn drop_calls_resolve_to_drop_impls() {
        let src = "\
            struct Guard { n: u32 }\n\
            impl Drop for Guard { fn drop(&mut self) {} }\n\
            fn f() { let guard = Guard { n: 1 }; drop(guard); }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        assert!(edge_names(&g).contains(&("f".into(), "Guard::drop".into())));
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let src = "\
            fn live() {}\n\
            #[cfg(test)]\n\
            mod tests {\n\
                #[test]\n\
                fn case() { crate::live(); }\n\
            }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "live");
    }

    #[test]
    fn closure_calls_attribute_to_enclosing_fn_for_reachability() {
        let src = "\
            struct Slots { n: u32 }\n\
            impl Slots { fn drain_worker(&self, _w: usize) { helper(); } }\n\
            fn helper() {}\n\
            fn build_pool() {\n\
                let slots = Slots { n: 1 };\n\
                let job = move |w: usize| { slots.drain_worker(w); };\n\
                job(0);\n\
            }\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        let roots = g.match_roots("Slots::drain_worker");
        assert_eq!(roots.len(), 1);
        let r = reach::closure(g.nodes.len(), &g.adjacency(), &roots);
        let reachable: Vec<&str> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| r.is_reachable(*i))
            .map(|(_, n)| n.name.as_str())
            .collect();
        assert_eq!(reachable, ["Slots::drain_worker", "helper"]);
        let helper = g.match_roots("helper")[0];
        let chain: Vec<&str> = r
            .chain_to(helper)
            .into_iter()
            .map(|i| g.nodes[i].name.as_str())
            .collect();
        assert_eq!(chain, ["Slots::drain_worker", "helper"]);
    }

    #[test]
    fn callgraph_json_is_balanced_and_versioned() {
        let src = "fn a() { b(); }\nfn b() {}\n";
        let parsed = parse_all(&[("crates/a/src/lib.rs", src)]);
        let g = build(&parsed);
        let roots = g.match_roots("a");
        let r = reach::closure(g.nodes.len(), &g.adjacency(), &roots);
        let j = g.render_json(&r, &roots, "/w");
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"reachable\": 2"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
