//! The determinism rules.
//!
//! Each rule encodes a bug class that has actually bitten this repo (or
//! was hand-fixed policy-by-policy in a previous PR) — see the README's
//! "Determinism lints" catalog. Rules operate on the lexed token stream
//! of one file; they are deliberately heuristic pattern matchers, with
//! explicit, reasoned suppression (`// lint:allow(rule): reason` or a
//! `lint.toml` entry) as the escape hatch for false positives.

use crate::lexer::{Lexed, Token, TokenKind};

/// All rule identifiers, in catalog order. `D` rules are flat token
/// checks; `C` rules ([`crate::crules`]) run over the worker-reachable
/// set of the workspace call graph.
pub const RULES: [&str; 12] = [
    "D001", "D002", "D003", "D004", "D005", "D006", "D007", "C001", "C002", "C003", "C004", "C005",
];

/// One-line summary of a rule, for reports.
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "D001" => "hash-order iteration (HashMap/HashSet) in non-test code",
        "D002" => "wall-clock read (Instant::now/SystemTime::now) in non-test code",
        "D003" => "ambient RNG (thread_rng/rand::random/from_entropy)",
        "D004" => "float comparator sort without an id tie-break",
        "D005" => "narrowing `as u32`/`as usize` cast in spatial region arithmetic",
        "D006" => "`unsafe` without a `// SAFETY:` comment",
        "D007" => "{:?}-formatting a hash collection into output",
        "C001" => "determinism violation (D001/D002/D003/D007) in worker-reachable code",
        "C002" => "panic-capable operation in worker-reachable code",
        "C003" => "non-Sync interior mutability or mutable static in worker-reachable code",
        "C004" => "atomic operation without an explicit Ordering in worker-reachable code",
        "C005" => "thread spawn outside the sanctioned BroadcastPool",
        _ => "meta finding",
    }
}

/// Whether `rule` is a known determinism rule id.
pub fn is_known_rule(rule: &str) -> bool {
    RULES.contains(&rule)
}

/// Whether `rule` is a call-graph (worker-reachability) rule. These may
/// only be suppressed by an inline pragma at the site — a `lint.toml`
/// path prefix is too blunt for code that runs inside workers.
pub fn is_reach_rule(rule: &str) -> bool {
    rule.starts_with('C')
}

/// A rule hit before suppression is applied.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id (`D001` … `D007`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the concrete hit.
    pub message: String,
}

/// Analysis context for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Lexed source.
    pub lexed: &'a Lexed,
    /// Inclusive line spans of `#[cfg(test)]` modules and `#[test]` fns.
    pub test_spans: &'a [(u32, u32)],
    /// Whether the whole file is test/bench code by path
    /// (`tests/`, `benches/` directory components).
    pub is_test_path: bool,
}

impl FileCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.is_test_path || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Detects `#[cfg(test)]`-gated items and `#[test]` functions as inclusive
/// line spans. The span is the attribute line through the closing brace of
/// the next braced item — a heuristic that is exact for the idiomatic
/// `#[cfg(test)] mod tests { … }` / `#[test] fn case() { … }` layouts.
pub fn detect_test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if !(toks[i].is_punct("#") && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        // Collect the attribute's bracket span.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        let mut saw_not = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
            } else if toks[j].kind == TokenKind::Ident {
                if toks[j].text == "cfg" {
                    saw_cfg = true;
                } else if toks[j].text == "not" {
                    saw_not = true;
                } else if toks[j].text == "test" && (saw_cfg || j == i + 2) {
                    // `#[cfg(test)]` / `#[cfg(all(test, …))]` / bare `#[test]`.
                    is_test_attr = true;
                }
            }
            j += 1;
        }
        // `#[cfg(not(test))]` gates *non*-test code — never a test span.
        if saw_not {
            is_test_attr = false;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then span the next braced item.
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            let mut d = 1i32;
            let mut k = j + 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct("[") {
                    d += 1;
                } else if toks[k].is_punct("]") {
                    d -= 1;
                }
                k += 1;
            }
            j = k;
        }
        let mut brace = j;
        while brace < toks.len() && !toks[brace].is_punct("{") {
            // An un-braced gated item (e.g. `#[cfg(test)] use …;`) ends at
            // the `;` — span just those lines.
            if toks[brace].is_punct(";") {
                break;
            }
            brace += 1;
        }
        if brace >= toks.len() {
            spans.push((toks[attr_start].line, u32::MAX));
            break;
        }
        if toks[brace].is_punct(";") {
            spans.push((toks[attr_start].line, toks[brace].line));
            i = brace + 1;
            continue;
        }
        let mut d = 1i32;
        let mut k = brace + 1;
        while k < toks.len() && d > 0 {
            if toks[k].is_punct("{") {
                d += 1;
            } else if toks[k].is_punct("}") {
                d -= 1;
            }
            k += 1;
        }
        let end_line = if d == 0 {
            toks[k - 1].line
        } else {
            u32::MAX // unterminated: treat the rest of the file as gated
        };
        spans.push((toks[attr_start].line, end_line));
        i = k;
    }
    spans
}

/// Methods whose call on a hash collection iterates it in hash order.
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Macros whose output reaches a human or a file (D007 scope). Panic and
/// assertion messages are excluded: they abort the run rather than feed
/// persisted results.
const OUTPUT_MACROS: [&str; 7] = [
    "format", "print", "println", "eprint", "eprintln", "write", "writeln",
];

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: let
/// bindings and typed fields/params (`name: …HashMap<…>`) and direct
/// constructions (`name = HashMap::new()`). Heuristic by design — the
/// engine has no type inference — but it is exactly the shape every
/// hash-typed binding in this workspace takes.
fn collect_hash_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk backward over the type/path tokens to the `:` or `=` that
        // introduced this binding, then take the identifier before it.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 12 {
            j -= 1;
            steps += 1;
            let tj = &toks[j];
            if tj.is_punct(";") || tj.is_punct("{") || tj.is_punct("}") || tj.is_punct(",") {
                break;
            }
            if tj.is_punct(":") || tj.is_punct("=") {
                if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                    let name = toks[j - 1].text.clone();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                break;
            }
        }
    }
    names
}

/// D001 — iteration over a hash-ordered collection in non-test code.
fn check_d001(ctx: &FileCtx<'_>, names: &[String], out: &mut Vec<RawFinding>) {
    if ctx.is_test_path {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        // `name.iter()` / `.keys()` / … with a hash-typed receiver.
        if toks[i].is_punct(".")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && HASH_ITER_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct("(")
            && i > 0
            && toks[i - 1].kind == TokenKind::Ident
            && names.iter().any(|n| n == &toks[i - 1].text)
            && !ctx.in_test(toks[i + 1].line)
        {
            out.push(RawFinding {
                rule: "D001",
                line: toks[i + 1].line,
                message: format!(
                    "`{}.{}()` iterates a hash-ordered collection; convert to \
                     BTreeMap/sorted iteration or justify",
                    toks[i - 1].text,
                    toks[i + 1].text
                ),
            });
        }
        // `for … in &name {` over a hash-typed name.
        if toks[i].is_ident("in") {
            let preceded_by_for = (i.saturating_sub(12)..i).any(|k| toks[k].is_ident("for"));
            if !preceded_by_for {
                continue;
            }
            let mut j = i + 1;
            while j < toks.len() && (toks[j].is_punct("&") || toks[j].is_ident("mut")) {
                j += 1;
            }
            if j + 1 < toks.len()
                && toks[j].kind == TokenKind::Ident
                && names.iter().any(|n| n == &toks[j].text)
                && toks[j + 1].is_punct("{")
                && !ctx.in_test(toks[j].line)
            {
                out.push(RawFinding {
                    rule: "D001",
                    line: toks[j].line,
                    message: format!(
                        "`for … in &{}` iterates a hash-ordered collection; convert to \
                         BTreeMap/sorted iteration or justify",
                        toks[j].text
                    ),
                });
            }
        }
    }
}

/// D002 — wall-clock reads in non-test code.
fn check_d002(ctx: &FileCtx<'_>, out: &mut Vec<RawFinding>) {
    if ctx.is_test_path {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len().saturating_sub(2) {
        let clock = toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime");
        if clock
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("now")
            && !ctx.in_test(toks[i].line)
        {
            out.push(RawFinding {
                rule: "D002",
                line: toks[i].line,
                message: format!(
                    "`{}::now()` reads the wall clock; simulation state must come \
                     from event time",
                    toks[i].text
                ),
            });
        }
    }
}

/// D003 — ambient (entropy-seeded) randomness, anywhere incl. tests.
fn check_d003(ctx: &FileCtx<'_>, out: &mut Vec<RawFinding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let hit = if toks[i].is_ident("thread_rng") || toks[i].is_ident("from_entropy") {
            Some(toks[i].text.clone())
        } else if toks[i].is_ident("rand")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("random")
        {
            Some("rand::random".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                rule: "D003",
                line: toks[i].line,
                message: format!("`{what}` is ambient randomness; use an explicit seeded RNG"),
            });
        }
    }
}

/// D004 — float comparator sorts without an id tie-break. Covers both
/// the comparator family (`sort_by` & friends: float evidence is a
/// `partial_cmp`/`total_cmp` call without `.then(…)`) and the key family
/// (`sort_by_key` & friends: float evidence is a float-typed key —
/// `f32`/`f64` casts, `to_bits`, `OrderedFloat` — without a tuple key
/// `(float_key, id)` to break ties).
fn check_d004(ctx: &FileCtx<'_>, out: &mut Vec<RawFinding>) {
    if ctx.is_test_path {
        return;
    }
    let toks = &ctx.lexed.tokens;
    const SORTS: [&str; 4] = ["sort_by", "sort_unstable_by", "min_by", "max_by"];
    const KEY_SORTS: [&str; 4] = [
        "sort_by_key",
        "sort_unstable_by_key",
        "min_by_key",
        "max_by_key",
    ];
    const FLOAT_KEY_EVIDENCE: [&str; 6] = [
        "f32",
        "f64",
        "to_bits",
        "total_cmp",
        "partial_cmp",
        "OrderedFloat",
    ];
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let by_key = KEY_SORTS.contains(&toks[i].text.as_str());
        if !by_key && !SORTS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if ctx.in_test(toks[i].line) {
            continue;
        }
        let Some(open) = toks.get(i + 1) else {
            continue;
        };
        if !open.is_punct("(") {
            continue;
        }
        // Span the call's argument list.
        let mut depth = 1i32;
        let mut j = i + 2;
        let mut float_cmp = false;
        let mut tie_break = false;
        let arg_start = j;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("(") {
                depth += 1;
            } else if toks[j].is_punct(")") {
                depth -= 1;
            } else if toks[j].kind == TokenKind::Ident {
                let evidence = if by_key {
                    FLOAT_KEY_EVIDENCE.contains(&toks[j].text.as_str())
                } else {
                    toks[j].text == "partial_cmp" || toks[j].text == "total_cmp"
                };
                if evidence {
                    float_cmp = true;
                } else if toks[j].text == "then" || toks[j].text == "then_with" {
                    tie_break = true;
                }
            }
            j += 1;
        }
        if by_key && tuple_key_tie_break(toks, arg_start, j) {
            tie_break = true;
        }
        if float_cmp && !tie_break {
            let fix = if by_key {
                "a tuple key `(float_key, id)`"
            } else {
                "a `.then(…)` id tie-break"
            };
            out.push(RawFinding {
                rule: "D004",
                line: toks[i].line,
                message: format!(
                    "`{}` keys on floats without {fix}; equal keys will order by input \
                     permutation",
                    toks[i].text
                ),
            });
        }
    }
}

/// Whether a `*_by_key` argument list in `toks[start..end]` is a closure
/// returning a tuple — the `(key, id)` tie-break idiom. Looks for the
/// closure's closing `|` followed by `(` with a comma at that paren's
/// top level.
fn tuple_key_tie_break(toks: &[Token], start: usize, end: usize) -> bool {
    let end = end.min(toks.len());
    let mut bars = 0usize;
    let mut i = start;
    while i < end && bars < 2 {
        if toks[i].is_punct("|") {
            bars += 1;
        }
        i += 1;
    }
    if bars < 2 || i >= end || !toks[i].is_punct("(") {
        return false;
    }
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < end && depth > 0 {
        if toks[j].is_punct("(") || toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct(")") || toks[j].is_punct("]") {
            depth -= 1;
        } else if toks[j].is_punct(",") && depth == 1 {
            return true;
        }
        j += 1;
    }
    false
}

/// D005 — `as u32` / `as usize` in the spatial crate's region arithmetic.
fn check_d005(ctx: &FileCtx<'_>, out: &mut Vec<RawFinding>) {
    if ctx.is_test_path || !ctx.rel_path.starts_with("crates/spatial/") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("as")
            && (toks[i + 1].is_ident("u32") || toks[i + 1].is_ident("usize"))
            && !ctx.in_test(toks[i].line)
        {
            out.push(RawFinding {
                rule: "D005",
                line: toks[i].line,
                message: format!(
                    "`as {}` in region arithmetic can truncate silently; use a checked \
                     cast (`try_from`) or justify the range",
                    toks[i + 1].text
                ),
            });
        }
    }
}

/// D006 — `unsafe` without a `// SAFETY:` comment, anywhere incl. tests.
fn check_d006(ctx: &FileCtx<'_>, out: &mut Vec<RawFinding>) {
    let toks = &ctx.lexed.tokens;
    for t in toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let documented = ctx
            .lexed
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !documented {
            out.push(RawFinding {
                rule: "D006",
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above".into(),
            });
        }
    }
}

/// D007 — `{:?}`-formatting a hash collection through an output macro.
fn check_d007(ctx: &FileCtx<'_>, names: &[String], out: &mut Vec<RawFinding>) {
    if ctx.is_test_path {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || !OUTPUT_MACROS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if !(i + 2 < toks.len() && toks[i + 1].is_punct("!") && toks[i + 2].is_punct("(")) {
            continue;
        }
        if ctx.in_test(toks[i].line) {
            continue;
        }
        // Span the macro call.
        let mut depth = 1i32;
        let mut j = i + 3;
        let mut debug_fmt = false;
        let mut culprit: Option<String> = None;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("(") {
                depth += 1;
            } else if toks[j].is_punct(")") {
                depth -= 1;
            } else if toks[j].kind == TokenKind::Str {
                let s = &toks[j].text;
                if s.contains(":?") || s.contains(":#?") {
                    debug_fmt = true;
                    // Inline captures: `{name:?}`.
                    if let Some(name) = inline_debug_capture(s, names) {
                        culprit = Some(name);
                    }
                }
            } else if debug_fmt
                && toks[j].kind == TokenKind::Ident
                && names.iter().any(|n| n == &toks[j].text)
            {
                culprit = Some(toks[j].text.clone());
            }
            j += 1;
        }
        if let Some(name) = culprit {
            out.push(RawFinding {
                rule: "D007",
                line: toks[i].line,
                message: format!(
                    "`{}!` debug-formats hash collection `{}`; its entry order is \
                     nondeterministic — emit sorted entries instead",
                    toks[i].text, name
                ),
            });
        }
    }
}

/// Finds an inline `{name:?}` / `{name:#?}` capture whose `name` is a
/// known hash-typed binding.
fn inline_debug_capture(s: &str, names: &[String]) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '{' {
            let mut j = i + 1;
            let mut name = String::new();
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            let rest: String = chars[j..].iter().take(3).collect();
            if !name.is_empty()
                && (rest.starts_with(":?") || rest.starts_with(":#?"))
                && names.iter().any(|n| n == &name)
            {
                return Some(name);
            }
        }
        i += 1;
    }
    None
}

/// Runs every rule over one file.
pub fn check_all(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let names = collect_hash_names(&ctx.lexed.tokens);
    let mut out = Vec::new();
    check_d001(ctx, &names, &mut out);
    check_d002(ctx, &mut out);
    check_d003(ctx, &mut out);
    check_d004(ctx, &mut out);
    check_d005(ctx, &mut out);
    check_d006(ctx, &mut out);
    check_d007(ctx, &names, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let spans = detect_test_spans(&lexed);
        check_all(&FileCtx {
            rel_path: path,
            lexed: &lexed,
            test_spans: &spans,
            is_test_path: path.starts_with("tests/"),
        })
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn after() {}\n";
        let spans = detect_test_spans(&lex(src));
        assert_eq!(spans, vec![(2, 5)]);
    }

    #[test]
    fn test_spans_cover_test_fns_and_extra_attrs() {
        let src = "#[test]\n#[ignore]\nfn case() {\n  body();\n}\n";
        let spans = detect_test_spans(&lex(src));
        assert_eq!(spans, vec![(1, 5)]);
    }

    #[test]
    fn d001_fires_on_map_iteration_and_for_loops() {
        let src = "fn f() {\n  let m: std::collections::HashMap<u32, u32> = Default::default();\n  for v in m.values() { let _ = v; }\n  for (k, v) in &m { let _ = (k, v); }\n}\n";
        let hits = run("crates/x/src/a.rs", src);
        let d001: Vec<_> = hits.iter().filter(|f| f.rule == "D001").collect();
        assert_eq!(d001.len(), 2, "{hits:?}");
        assert_eq!(d001[0].line, 3);
        assert_eq!(d001[1].line, 4);
    }

    #[test]
    fn d001_ignores_lookups_vecs_and_test_code() {
        // get()/insert() are order-free; Vec::iter is not hash-ordered.
        let src = "fn f() {\n  let m: std::collections::HashMap<u32, u32> = Default::default();\n  let _ = m.get(&1);\n  let v: Vec<u32> = vec![];\n  for x in v.iter() { let _ = x; }\n}\n#[cfg(test)]\nmod tests {\n  fn g() {\n    let m: std::collections::HashSet<u32> = Default::default();\n    for x in m.iter() { let _ = x; }\n  }\n}\n";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn d002_fires_outside_tests_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n#[cfg(test)]\nmod tests { fn g() { let t = std::time::Instant::now(); } }\n";
        let hits = run("crates/x/src/a.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D002");
        assert_eq!(hits[0].line, 1);
        assert!(run("tests/a.rs", src).is_empty());
    }

    #[test]
    fn d003_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests { fn g() { let r = thread_rng(); let x: u8 = rand::random(); } }\n";
        let hits = run("crates/x/src/a.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.rule == "D003"));
    }

    #[test]
    fn d004_requires_a_tie_break() {
        let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let hits = run("crates/x/src/a.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D004");
        let good = "fn f(v: &mut Vec<(f64, u32)>) { v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))); }\n";
        assert!(run("crates/x/src/a.rs", good).is_empty());
        let keyed = "fn f(v: &mut Vec<u32>) { v.sort_by(|a, b| a.cmp(b)); }\n";
        assert!(run("crates/x/src/a.rs", keyed).is_empty());
    }

    #[test]
    fn d004_covers_by_key_float_keys() {
        // Float key without a tie-break: fires for every by_key variant.
        for m in [
            "sort_by_key",
            "sort_unstable_by_key",
            "min_by_key",
            "max_by_key",
        ] {
            let bad = format!("fn f(v: &mut Vec<Trip>) {{ v.{m}(|t| t.cost().to_bits()); }}\n");
            let hits = run("crates/x/src/a.rs", &bad);
            assert_eq!(hits.len(), 1, "{m}: {hits:?}");
            assert_eq!(hits[0].rule, "D004");
        }
        // `as f64` cast evidence also counts.
        let cast = "fn f(v: &mut Vec<Trip>) { v.sort_by_key(|t| (t.len as f64).to_bits()); }\n";
        assert_eq!(run("crates/x/src/a.rs", cast).len(), 1);
        // Tuple key `(float, id)` is the sanctioned tie-break idiom.
        let tuple = "fn f(v: &mut Vec<Trip>) { v.sort_by_key(|t| (t.cost().to_bits(), t.id)); }\n";
        assert!(run("crates/x/src/a.rs", tuple).is_empty());
        // Integer keys are not D004's business.
        let int = "fn f(v: &mut Vec<Trip>) { v.sort_by_key(|t| t.id); }\n";
        assert!(run("crates/x/src/a.rs", int).is_empty());
        // A comma nested inside a call is not a tuple key.
        let nested = "fn f(v: &mut Vec<Trip>) { v.sort_by_key(|t| (t.cost(a, b)).to_bits()); }\n";
        assert_eq!(run("crates/x/src/a.rs", nested).len(), 1);
    }

    #[test]
    fn d005_fires_only_in_spatial() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\n";
        let hits = run("crates/spatial/src/grid.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D005");
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn d006_accepts_a_safety_comment() {
        let bad = "fn f() { let p = 0 as *const u8; let _ = p; unsafe { core::ptr::read(p) }; }\n";
        let hits = run("crates/x/src/a.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D006");
        let good = "fn f(p: *const u8) {\n  // SAFETY: p is valid for reads by contract.\n  unsafe { core::ptr::read(p) };\n}\n";
        assert!(run("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn d007_fires_on_debug_formatted_hash_collections() {
        let src = "fn f() {\n  let m: std::collections::HashMap<u32, u32> = Default::default();\n  println!(\"{:?}\", m);\n  println!(\"{m:?}\");\n  println!(\"{}\", m.len());\n  panic!(\"{:?}\", m);\n}\n";
        let hits = run("crates/x/src/a.rs", src);
        let d007: Vec<_> = hits.iter().filter(|f| f.rule == "D007").collect();
        assert_eq!(d007.len(), 2, "{hits:?}");
        assert_eq!(d007[0].line, 3);
        assert_eq!(d007[1].line, 4);
    }

    #[test]
    fn hash_names_cover_fields_params_and_constructions() {
        let src = "struct S { flows: Vec<HashMap<(u32, u32), f64>> }\nfn f(seen: &mut HashSet<u32>) { let direct = HashMap::new(); }\n";
        let names = collect_hash_names(&lex(src).tokens);
        assert!(names.contains(&"flows".to_string()));
        assert!(names.contains(&"seen".to_string()));
        assert!(names.contains(&"direct".to_string()));
    }
}
