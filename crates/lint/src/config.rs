//! The checked-in `lint.toml`: path allowlist plus parallel roots.
//!
//! A tiny, dependency-free parser for exactly the shapes the file uses —
//! `#` comments, repeated `[[allow]]` tables of string keys, and one
//! `[roots]` section with repeated `fn` / `spawn_path` keys:
//!
//! ```toml
//! [[allow]]
//! path = "crates/experiments"
//! rule = "D002"
//! reason = "subcommand timing tables; never feeds simulation state"
//!
//! [roots]
//! fn = "ShardSlots::drain_worker"
//! spawn_path = "crates/stats/src/parallel.rs"
//! ```
//!
//! `path` is a workspace-relative prefix (forward slashes); `rule` is one
//! of the determinism rule ids; `reason` is mandatory and non-empty.
//! Entries that match no finding are reported as unused — the allowlist
//! must shrink when the code it excuses is fixed. C rules cannot appear
//! in `[[allow]]` at all: worker-reachable findings are only waivable by
//! an inline pragma at the exact site. Each `[roots]` `fn` names a
//! parallel entry point (`Type::method` or a bare fn name) whose
//! transitive callees the C rules audit; `spawn_path` marks the file(s)
//! allowed to call `thread::spawn`/`scope.spawn` (C005).

use crate::rules::{is_known_rule, is_reach_rule};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative path prefix the entry covers.
    pub path: String,
    /// Rule id it suppresses.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the `[[allow]]` header, for error messages.
    pub line: u32,
}

impl Allow {
    /// Whether this entry covers `(path, rule)`.
    pub fn covers(&self, path: &str, rule: &str) -> bool {
        self.rule == rule && path.starts_with(&self.path)
    }
}

/// One `[roots]` `fn = "…"` entry: a declared parallel entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootSpec {
    /// `Type::method` or bare fn name to match against the call graph.
    pub name: String,
    /// Line of the entry, for P005 messages.
    pub line: u32,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Config {
    /// All `[[allow]]` entries, in file order.
    pub allows: Vec<Allow>,
    /// Declared parallel roots, in file order.
    pub roots: Vec<RootSpec>,
    /// Path prefixes where `thread::spawn` is sanctioned (C005).
    pub spawn_ok: Vec<String>,
}

/// Parses `lint.toml` text. Returns the config plus any validation
/// errors (which the engine reports as findings — a broken allowlist
/// must not silently allow anything).
pub fn parse(text: &str) -> (Config, Vec<String>) {
    let mut cfg = Config::default();
    let mut errors = Vec::new();
    let mut current: Option<(Allow, u32)> = None;
    let mut in_roots = false;

    let finish = |entry: Option<(Allow, u32)>, errors: &mut Vec<String>| {
        let (a, line) = entry?;
        if a.path.is_empty() {
            errors.push(format!(
                "lint.toml:{line}: [[allow]] entry is missing `path`"
            ));
        } else if a.rule.is_empty() {
            errors.push(format!(
                "lint.toml:{line}: [[allow]] entry is missing `rule`"
            ));
        } else if !is_known_rule(&a.rule) {
            errors.push(format!("lint.toml:{line}: unknown rule `{}`", a.rule));
        } else if is_reach_rule(&a.rule) {
            errors.push(format!(
                "lint.toml:{line}: rule `{}` is a worker-reachability rule and cannot be \
                 path-allowlisted — suppress it with an inline pragma at the site",
                a.rule
            ));
        } else if a.reason.trim().is_empty() {
            errors.push(format!(
                "lint.toml:{line}: [[allow]] for `{}` has no `reason` — every \
                 suppression needs one",
                a.path
            ));
        } else {
            return Some(a);
        }
        None
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(a) = finish(current.take(), &mut errors) {
                cfg.allows.push(a);
            }
            in_roots = false;
            current = Some((
                Allow {
                    path: String::new(),
                    rule: String::new(),
                    reason: String::new(),
                    line: lineno,
                },
                lineno,
            ));
            continue;
        }
        if line == "[roots]" {
            if let Some(a) = finish(current.take(), &mut errors) {
                cfg.allows.push(a);
            }
            in_roots = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(format!("lint.toml:{lineno}: unrecognized line `{line}`"));
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            errors.push(format!(
                "lint.toml:{lineno}: value for `{key}` must be a double-quoted string"
            ));
            continue;
        };
        if in_roots {
            match key {
                "fn" if value.trim().is_empty() => {
                    errors.push(format!("lint.toml:{lineno}: empty `fn` root"));
                }
                "fn" => cfg.roots.push(RootSpec {
                    name: value.to_string(),
                    line: lineno,
                }),
                "spawn_path" => cfg.spawn_ok.push(value.replace('\\', "/")),
                other => errors.push(format!(
                    "lint.toml:{lineno}: unknown key `{other}` in [roots]"
                )),
            }
            continue;
        }
        let Some((entry, _)) = current.as_mut() else {
            errors.push(format!(
                "lint.toml:{lineno}: `{key}` outside an [[allow]] table"
            ));
            continue;
        };
        match key {
            "path" => entry.path = value.replace('\\', "/"),
            "rule" => entry.rule = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => errors.push(format!("lint.toml:{lineno}: unknown key `{other}`")),
        }
    }
    if let Some(a) = finish(current.take(), &mut errors) {
        cfg.allows.push(a);
    }
    (cfg, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_prefix_matching() {
        let (cfg, errs) = parse(
            "# allowlist\n[[allow]]\npath = \"crates/experiments\"\nrule = \"D002\"\nreason = \"timing tables\"\n\n[[allow]]\npath = \"examples\"\nrule = \"D002\"\nreason = \"demo printouts\"\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.allows[0].covers("crates/experiments/src/delta.rs", "D002"));
        assert!(!cfg.allows[0].covers("crates/experiments/src/delta.rs", "D001"));
        assert!(!cfg.allows[0].covers("crates/sim/src/engine.rs", "D002"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (cfg, errs) = parse("[[allow]]\npath = \"x\"\nrule = \"D001\"\n");
        assert!(cfg.allows.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("reason"));
    }

    #[test]
    fn unknown_rule_and_bad_lines_are_errors() {
        let (_, errs) =
            parse("[[allow]]\npath = \"x\"\nrule = \"D999\"\nreason = \"r\"\nwhat is this\n");
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let (_, errs) = parse("[[allow]]\npath = x\nrule = \"D001\"\nreason = \"r\"\n");
        assert!(!errs.is_empty());
    }

    #[test]
    fn roots_section_parses_fns_and_spawn_paths() {
        let (cfg, errs) = parse(
            "[roots]\nfn = \"ShardSlots::drain_worker\"\nfn = \"BroadcastPool::run\"\nspawn_path = \"crates/stats/src/parallel.rs\"\n\n[[allow]]\npath = \"x\"\nrule = \"D002\"\nreason = \"r\"\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(cfg.roots.len(), 2);
        assert_eq!(cfg.roots[0].name, "ShardSlots::drain_worker");
        assert_eq!(cfg.spawn_ok, vec!["crates/stats/src/parallel.rs"]);
        assert_eq!(cfg.allows.len(), 1);
    }

    #[test]
    fn c_rules_cannot_be_path_allowlisted() {
        let (cfg, errs) = parse("[[allow]]\npath = \"x\"\nrule = \"C002\"\nreason = \"r\"\n");
        assert!(cfg.allows.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("inline pragma"), "{errs:?}");
    }

    #[test]
    fn unknown_roots_key_and_empty_fn_are_errors() {
        let (cfg, errs) = parse("[roots]\nfn = \"\"\nwhatever = \"x\"\n");
        assert!(cfg.roots.is_empty());
        assert_eq!(errs.len(), 2, "{errs:?}");
    }
}
