//! The checked-in `lint.toml` path allowlist.
//!
//! A tiny, dependency-free parser for exactly the shape the allowlist
//! uses — `#` comments and repeated `[[allow]]` tables of string keys:
//!
//! ```toml
//! [[allow]]
//! path = "crates/experiments"
//! rule = "D002"
//! reason = "subcommand timing tables; never feeds simulation state"
//! ```
//!
//! `path` is a workspace-relative prefix (forward slashes); `rule` is one
//! of the determinism rule ids; `reason` is mandatory and non-empty.
//! Entries that match no finding are reported as unused — the allowlist
//! must shrink when the code it excuses is fixed.

use crate::rules::is_known_rule;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative path prefix the entry covers.
    pub path: String,
    /// Rule id it suppresses.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the `[[allow]]` header, for error messages.
    pub line: u32,
}

impl Allow {
    /// Whether this entry covers `(path, rule)`.
    pub fn covers(&self, path: &str, rule: &str) -> bool {
        self.rule == rule && path.starts_with(&self.path)
    }
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Config {
    /// All `[[allow]]` entries, in file order.
    pub allows: Vec<Allow>,
}

/// Parses `lint.toml` text. Returns the config plus any validation
/// errors (which the engine reports as findings — a broken allowlist
/// must not silently allow anything).
pub fn parse(text: &str) -> (Config, Vec<String>) {
    let mut cfg = Config::default();
    let mut errors = Vec::new();
    let mut current: Option<(Allow, u32)> = None;

    let finish = |entry: Option<(Allow, u32)>, errors: &mut Vec<String>| {
        let (a, line) = entry?;
        if a.path.is_empty() {
            errors.push(format!(
                "lint.toml:{line}: [[allow]] entry is missing `path`"
            ));
        } else if a.rule.is_empty() {
            errors.push(format!(
                "lint.toml:{line}: [[allow]] entry is missing `rule`"
            ));
        } else if !is_known_rule(&a.rule) {
            errors.push(format!("lint.toml:{line}: unknown rule `{}`", a.rule));
        } else if a.reason.trim().is_empty() {
            errors.push(format!(
                "lint.toml:{line}: [[allow]] for `{}` has no `reason` — every \
                 suppression needs one",
                a.path
            ));
        } else {
            return Some(a);
        }
        None
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(a) = finish(current.take(), &mut errors) {
                cfg.allows.push(a);
            }
            current = Some((
                Allow {
                    path: String::new(),
                    rule: String::new(),
                    reason: String::new(),
                    line: lineno,
                },
                lineno,
            ));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(format!("lint.toml:{lineno}: unrecognized line `{line}`"));
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            errors.push(format!(
                "lint.toml:{lineno}: value for `{key}` must be a double-quoted string"
            ));
            continue;
        };
        let Some((entry, _)) = current.as_mut() else {
            errors.push(format!(
                "lint.toml:{lineno}: `{key}` outside an [[allow]] table"
            ));
            continue;
        };
        match key {
            "path" => entry.path = value.replace('\\', "/"),
            "rule" => entry.rule = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => errors.push(format!("lint.toml:{lineno}: unknown key `{other}`")),
        }
    }
    if let Some(a) = finish(current.take(), &mut errors) {
        cfg.allows.push(a);
    }
    (cfg, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_prefix_matching() {
        let (cfg, errs) = parse(
            "# allowlist\n[[allow]]\npath = \"crates/experiments\"\nrule = \"D002\"\nreason = \"timing tables\"\n\n[[allow]]\npath = \"examples\"\nrule = \"D002\"\nreason = \"demo printouts\"\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.allows[0].covers("crates/experiments/src/delta.rs", "D002"));
        assert!(!cfg.allows[0].covers("crates/experiments/src/delta.rs", "D001"));
        assert!(!cfg.allows[0].covers("crates/sim/src/engine.rs", "D002"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (cfg, errs) = parse("[[allow]]\npath = \"x\"\nrule = \"D001\"\n");
        assert!(cfg.allows.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("reason"));
    }

    #[test]
    fn unknown_rule_and_bad_lines_are_errors() {
        let (_, errs) =
            parse("[[allow]]\npath = \"x\"\nrule = \"D999\"\nreason = \"r\"\nwhat is this\n");
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let (_, errs) = parse("[[allow]]\npath = x\nrule = \"D001\"\nreason = \"r\"\n");
        assert!(!errs.is_empty());
    }
}
